"""Shared benchmark fixtures.

Every ``benchmarks/test_tableNN_*.py`` regenerates one table or figure of
the paper on the synthetic suite.  The suite scale comes from the
``REPRO_BENCH_SCALE`` environment variable (``tiny`` / ``small`` /
``medium``; default ``small``).  Rendered tables are printed to stdout
(run with ``-s`` to see them live) and written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be refreshed from
a benchmark run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.tables import TableRunner

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> TableRunner:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return TableRunner(scale=scale, num_bc_sources=3)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an expensive table-regeneration exactly once under timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
