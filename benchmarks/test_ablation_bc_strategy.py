"""Ablation: inner- vs outer-parallel BC (the §2 parallelization choice).

The paper: "We pursue the inner parallel strategy ... each of the
computation steps is executed in parallel for a single source, and
different sources are processed in sequence."  The alternative — batching
all sources' level-d frontiers into one launch — yields identical scores
with fuller warps; this bench quantifies what the choice costs under our
model (the paper's motivation for inner, per-source memory footprint, is
not modeled, so outer wins here).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bc import betweenness_centrality, pick_sources
from repro.eval.reporting import format_table

from conftest import run_once


def test_ablation_bc_strategy(benchmark, runner, emit):
    rows = []

    def sweep():
        for name in ("rmat", "usa-road"):
            g = runner.suite[name]
            srcs = pick_sources(g.num_nodes, 4, seed=2)
            inner = betweenness_centrality(g, sources=srcs, strategy="inner")
            outer = betweenness_centrality(g, sources=srcs, strategy="outer")
            assert np.allclose(inner.values, outer.values)
            rows.append(
                {
                    "graph": name,
                    "inner_cycles": inner.cycles,
                    "outer_cycles": outer.cycles,
                    "outer_speedup": inner.cycles / outer.cycles,
                }
            )
        return rows

    run_once(benchmark, sweep)
    emit(
        "ablation_bc_strategy",
        format_table(
            rows,
            ["graph", "inner_cycles", "outer_cycles", "outer_speedup"],
            title="Ablation: inner vs outer parallel BC (4 sources)",
            floatfmt="{:,.2f}",
        ),
    )
    assert all(r["outer_speedup"] > 1.0 for r in rows)
