"""Ablation: device-parameter sensitivity of the technique speedups.

The paper evaluates on one device (K40C).  The cost model makes the
device a parameter, so we can ask what the paper could not: how do the
technique gains move with warp width and transaction size?  Expectations
encoded below: the coalescing transform's benefit needs multi-word
transaction segments (line_words=1 kills it), and divergence padding only
matters when warps are wide.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp import sssp
from repro.core.pipeline import build_plan
from repro.eval.reporting import format_table
from repro.gpusim.device import DeviceConfig

from conftest import run_once


def test_ablation_device_sensitivity(benchmark, runner, emit):
    g = runner.suite["rmat"]
    src = int(np.argmax(g.out_degrees()))

    configs = {
        "k40c (32-lane, 16-word)": DeviceConfig(),
        "narrow warps (8-lane)": DeviceConfig(warp_size=8),
        "single-word lines": DeviceConfig(line_words=1),
        "wide lines (32-word)": DeviceConfig(line_words=32),
        "flat memory (no latency gap)": DeviceConfig(
            global_latency=6, edge_latency=6, shared_latency=6
        ),
    }

    def sweep():
        rows = []
        for label, device in configs.items():
            exact = sssp(g, src, device=device)
            for technique in ("coalescing", "shmem", "divergence"):
                plan = build_plan(g, technique, device=device)
                approx = sssp(plan, src, device=device)
                rows.append(
                    {
                        "device": label,
                        "technique": technique,
                        "speedup": exact.cycles / approx.cycles,
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_device_sensitivity",
        format_table(
            rows,
            ["device", "technique", "speedup"],
            title="Ablation: device-parameter sensitivity (SSSP, rmat)",
        ),
    )

    def speedup(device: str, technique: str) -> float:
        return next(
            r["speedup"]
            for r in rows
            if r["device"] == device and r["technique"] == technique
        )

    # no transaction segments -> nothing for the coalescing layout to win
    assert speedup("single-word lines", "coalescing") <= speedup(
        "k40c (32-lane, 16-word)", "coalescing"
    ) + 0.05
    # no global/shared latency gap -> the shmem pinning buys nothing
    assert speedup("flat memory (no latency gap)", "shmem") <= speedup(
        "k40c (32-lane, 16-word)", "shmem"
    ) + 0.05
