"""Ablation: Graffix renumbering vs. the reordering literature.

The paper's §2.2 argument — classic locality renumbering "is ineffective
when applied directly to improve coalescing" — and its §6 comparisons to
RCM and degree sorting (RADAR), measured head-to-head: every competitor
ordering is pushed through the same cost model on a full SSSP run, plus
Graffix's exact (no-replication) transform and the full approximate one.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp import sssp
from repro.core.knobs import CoalescingKnobs
from repro.core.pipeline import ExecutionPlan, build_plan
from repro.core.coalesce import transform_graph
from repro.eval.reporting import format_table
from repro.graphs.reorder import REORDERINGS, apply_reordering, random_order

from conftest import run_once


def test_ablation_reordering(benchmark, runner, emit):
    g = runner.suite["usa-road"]
    src = int(np.argmax(g.out_degrees()))
    baseline = sssp(g, src)

    def sweep():
        rows = []
        orders = dict(REORDERINGS)
        orders["random"] = lambda gr: random_order(gr, seed=1)
        for name, fn in orders.items():
            relabelled = apply_reordering(g, fn(g))
            res = sssp(relabelled, int(fn(g)[src]))
            rows.append(
                {
                    "ordering": name,
                    "speedup_vs_input": baseline.cycles / res.cycles,
                    "attr_transactions": res.metrics.total.attr_global_transactions,
                }
            )
        # Graffix exact part only (renumber, no replication)
        gg = transform_graph(g, CoalescingKnobs(connectedness_threshold=1.0))
        plan = ExecutionPlan(
            technique="coalescing",
            graph=gg.graph,
            num_original=g.num_nodes,
            graffix=gg,
        )
        res = sssp(plan, src)
        rows.append(
            {
                "ordering": "graffix (exact renumber)",
                "speedup_vs_input": baseline.cycles / res.cycles,
                "attr_transactions": res.metrics.total.attr_global_transactions,
            }
        )
        # the full approximate transform
        full = build_plan(g, "coalescing",
                          coalescing=CoalescingKnobs(connectedness_threshold=0.4))
        res = sssp(full, src)
        rows.append(
            {
                "ordering": "graffix (with replication)",
                "speedup_vs_input": baseline.cycles / res.cycles,
                "attr_transactions": res.metrics.total.attr_global_transactions,
            }
        )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_reordering",
        format_table(
            rows,
            ["ordering", "speedup_vs_input", "attr_transactions"],
            title="Ablation: vertex orderings under the same cost model "
            "(SSSP, usa-road)",
        ),
    )
    by_name = {r["ordering"]: r for r in rows}
    # random labeling must be the worst ordering
    assert all(
        by_name["random"]["speedup_vs_input"] <= r["speedup_vs_input"] + 1e-9
        for r in rows
    )
    # the Graffix renumbering must beat the plain BFS order it extends
    assert (
        by_name["graffix (exact renumber)"]["speedup_vs_input"]
        > by_name["random"]["speedup_vs_input"]
    )
