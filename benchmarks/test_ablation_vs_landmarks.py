"""Ablation: Graffix vs the cited algorithm-specific approximation.

The paper positions Graffix against approximations like Gubichev et
al.'s landmark distances (§6): both precompute, both trade accuracy for
query speed, but landmarks answer *only* distance queries while one
Graffix transform accelerates every vertex-centric algorithm.

This bench runs the amortized-SSSP workload (the Steiner-tree scenario
of §1: many sources on one graph) under both methods and reports, per
method: preprocessing cycles, per-query cycles, and the paper's SSSP
inaccuracy metric.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp import sssp
from repro.core.knobs import CoalescingKnobs
from repro.core.pipeline import build_plan
from repro.eval.accuracy import attribute_inaccuracy
from repro.eval.reporting import format_table
from repro.related.landmarks import build_landmark_index

from conftest import run_once

NUM_QUERIES = 6


def test_ablation_vs_landmarks(benchmark, runner, emit):
    g = runner.suite["livejournal"]
    rng = np.random.default_rng(3)
    sources = rng.choice(g.num_nodes, size=NUM_QUERIES, replace=False)

    def sweep():
        exact_cycles = 0.0
        exact_vals = {}
        for s in sources:
            res = sssp(g, int(s))
            exact_cycles += res.cycles
            exact_vals[int(s)] = res.values

        rows = [
            {
                "method": "exact",
                "preprocess_cycles": 0.0,
                "query_cycles": exact_cycles / NUM_QUERIES,
                "inaccuracy_percent": 0.0,
            }
        ]

        plan = build_plan(
            g, "coalescing",
            coalescing=CoalescingKnobs(connectedness_threshold=0.4),
        )
        graffix_cycles, graffix_inacc = 0.0, []
        for s in sources:
            res = sssp(plan, int(s))
            graffix_cycles += res.cycles
            graffix_inacc.append(
                attribute_inaccuracy(exact_vals[int(s)], res.values)
            )
        rows.append(
            {
                "method": "graffix coalescing",
                "preprocess_cycles": 0.0,  # CPU-side transform; Table 5 time
                "query_cycles": graffix_cycles / NUM_QUERIES,
                "inaccuracy_percent": float(np.mean(graffix_inacc)),
            }
        )

        index = build_landmark_index(g, num_landmarks=8)
        lm_inacc = [
            attribute_inaccuracy(
                exact_vals[int(s)], index.estimate_from(int(s))
            )
            for s in sources
        ]
        rows.append(
            {
                "method": "landmarks (8)",
                "preprocess_cycles": index.preprocess_metrics.cycles,
                "query_cycles": 0.0,  # pure arithmetic, no kernel traversal
                "inaccuracy_percent": float(np.mean(lm_inacc)),
            }
        )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_vs_landmarks",
        format_table(
            rows,
            ["method", "preprocess_cycles", "query_cycles", "inaccuracy_percent"],
            title=f"Ablation: Graffix vs landmark SSSP "
            f"({NUM_QUERIES} sources, livejournal)",
            floatfmt="{:,.2f}",
        ),
    )
    by = {r["method"]: r for r in rows}
    # landmarks: free queries but visibly worse accuracy than graffix
    assert (
        by["landmarks (8)"]["inaccuracy_percent"]
        >= by["graffix coalescing"]["inaccuracy_percent"]
    )
    # graffix queries cost less than exact ones
    assert by["graffix coalescing"]["query_cycles"] < by["exact"]["query_cycles"] * 1.2
