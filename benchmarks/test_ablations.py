"""Ablation benches for the design decisions DESIGN.md calls out.

D1 — confluence operator: the paper defaults to the algorithm-agnostic
     arithmetic mean; algorithm-aware ``min`` removes all SSSP drift.
D2 — level alignment k: the hole volume and the coalescing benefit both
     scale with the chunk size; k = warp line size is the sweet spot.
D3 — 2-hop edge targets: padding with random-target edges instead of
     2-hop neighbours destroys accuracy for the same speedup.
D4 — shared-memory iteration count t: the paper's t ~ 2 x diameter
     recommendation against under- and over-iterating.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import pagerank, sssp
from repro.core.knobs import CoalescingKnobs, SharedMemoryKnobs
from repro.core.pipeline import build_plan
from repro.eval.accuracy import attribute_inaccuracy
from repro.eval.reporting import format_table

from conftest import run_once


def test_ablation_d1_confluence_operator(benchmark, runner, emit):
    """Mean vs min confluence for SSSP on the social graph."""
    g = runner.suite["livejournal"]
    src = int(np.argmax(g.out_degrees()))
    exact = sssp(g, src)

    def sweep():
        rows = []
        for op in ("mean", "min", "max"):
            plan = build_plan(
                g,
                "coalescing",
                coalescing=CoalescingKnobs(connectedness_threshold=0.4),
                confluence_operator=op,
            )
            approx = sssp(plan, src)
            rows.append(
                {
                    "operator": op,
                    "speedup": exact.cycles / approx.cycles,
                    "inaccuracy_percent": attribute_inaccuracy(
                        exact.values, approx.values
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_d1_confluence",
        format_table(
            rows,
            ["operator", "speedup", "inaccuracy_percent"],
            title="Ablation D1: confluence operator (SSSP, livejournal)",
        ),
    )
    by_op = {r["operator"]: r for r in rows}
    # algorithm-aware min must be at least as accurate as generic mean
    assert (
        by_op["min"]["inaccuracy_percent"]
        <= by_op["mean"]["inaccuracy_percent"] + 1e-9
    )


def test_ablation_d2_chunk_size(benchmark, runner, emit):
    """Sweep the level-alignment chunk size k (paper uses 16)."""
    g = runner.suite["rmat"]
    src = int(np.argmax(g.out_degrees()))
    exact = sssp(g, src)

    def sweep():
        rows = []
        for k in (1, 4, 16, 32):
            plan = build_plan(
                g, "coalescing", coalescing=CoalescingKnobs(chunk_size=k)
            )
            approx = sssp(plan, src)
            rows.append(
                {
                    "k": k,
                    "holes": plan.graffix.num_holes,
                    "replicas": plan.graffix.num_replicas,
                    "speedup": exact.cycles / approx.cycles,
                    "inaccuracy_percent": attribute_inaccuracy(
                        exact.values, approx.values
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_d2_chunk_size",
        format_table(
            rows,
            ["k", "holes", "replicas", "speedup", "inaccuracy_percent"],
            title="Ablation D2: chunk size k (SSSP, rmat)",
        ),
    )
    # k=1 creates no holes (and thus no replicas)
    assert rows[0]["holes"] == 0


def test_ablation_d3_random_vs_two_hop_targets(benchmark, runner, emit):
    """Padding with random-target edges instead of 2-hop neighbours.

    2-hop path-sum edges are value-preserving for SSSP; random edges with
    the same weights create shortcuts and wreck accuracy — the reason the
    paper routes every added edge through 2-hop neighbours.
    """
    from repro.core.divergence import normalize_degrees
    from repro.core.knobs import DivergenceKnobs
    from repro.core.pipeline import ExecutionPlan

    g = runner.suite["rmat"]
    src = int(np.argmax(g.out_degrees()))
    exact = sssp(g, src)
    knobs = DivergenceKnobs(degree_sim_threshold=0.5)

    def sweep():
        plan2 = normalize_degrees(g, knobs)
        two_hop = ExecutionPlan(
            technique="divergence",
            graph=plan2.graph,
            num_original=g.num_nodes,
            order=plan2.order,
        )
        # random variant: same edge count, uniformly random targets
        rng = np.random.default_rng(0)
        extra = plan2.graph.num_edges - g.num_edges
        rand_src = rng.integers(0, g.num_nodes, size=extra)
        rand_dst = rng.integers(0, g.num_nodes, size=extra)
        rand_w = rng.choice(g.weights, size=extra)
        from repro.graphs.csr import CSRGraph

        rand_graph = CSRGraph.from_edges(
            g.num_nodes,
            np.concatenate([g.edge_sources().astype(np.int64), rand_src]),
            np.concatenate([g.indices.astype(np.int64), rand_dst]),
            np.concatenate([g.weights, rand_w]),
        )
        random_plan = ExecutionPlan(
            technique="divergence",
            graph=rand_graph,
            num_original=g.num_nodes,
            order=plan2.order,
        )
        rows = []
        for label, plan in (("2-hop", two_hop), ("random", random_plan)):
            approx = sssp(plan, src)
            rows.append(
                {
                    "targets": label,
                    "speedup": exact.cycles / approx.cycles,
                    "inaccuracy_percent": attribute_inaccuracy(
                        exact.values, approx.values
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_d3_edge_targets",
        format_table(
            rows,
            ["targets", "speedup", "inaccuracy_percent"],
            title="Ablation D3: 2-hop vs random edge targets (SSSP, rmat)",
        ),
    )
    assert rows[0]["inaccuracy_percent"] <= rows[1]["inaccuracy_percent"] + 1e-9


def test_ablation_d4_cluster_iterations(benchmark, runner, emit):
    """Sweep the shared-memory local iteration factor (paper: t ~ 2 x d)."""
    g = runner.suite["rmat"]
    exact = pagerank(g)

    def sweep():
        rows = []
        for factor in (0.5, 1.0, 2.0, 4.0):
            plan = build_plan(
                g,
                "shmem",
                shmem=SharedMemoryKnobs(iterations_factor=factor),
            )
            approx = pagerank(plan)
            rows.append(
                {
                    "iterations_factor": factor,
                    "t": plan.local_iterations,
                    "speedup": exact.cycles / approx.cycles,
                    "inaccuracy_percent": attribute_inaccuracy(
                        exact.values, approx.values
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_d4_cluster_iterations",
        format_table(
            rows,
            ["iterations_factor", "t", "speedup", "inaccuracy_percent"],
            title="Ablation D4: shared-memory iteration factor (PR, rmat)",
        ),
    )
    assert all(r["speedup"] > 0.5 for r in rows)
