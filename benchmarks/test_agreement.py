"""Capstone bench: computed agreement with the paper across Tables 6-14.

Runs all nine technique tables, scores each against the transcribed paper
numbers (direction agreement, Spearman rank correlation of speedups,
geomean ratio), and verifies the cross-table ordering claims.  The
rendered report is the quantitative heart of EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.eval import tables
from repro.eval.agreement import agreement_report, score_table

from conftest import run_once

TABLE_FNS = {
    "table6": tables.table6_coalescing,
    "table7": tables.table7_shmem,
    "table8": tables.table8_divergence,
    "table9": tables.table9_coalescing_vs_tigr,
    "table10": tables.table10_shmem_vs_tigr,
    "table11": tables.table11_divergence_vs_tigr,
    "table12": tables.table12_coalescing_vs_gunrock,
    "table13": tables.table13_shmem_vs_gunrock,
    "table14": tables.table14_divergence_vs_gunrock,
}


def test_agreement_with_paper(benchmark, runner, emit):
    def sweep():
        return {name: fn(runner)[0] for name, fn in TABLE_FNS.items()}

    results = run_once(benchmark, sweep)
    report = agreement_report(results)
    emit("agreement_with_paper", report)

    # quantitative floor for the reproduction: most cells land on the
    # paper's side of 1.0 in the Baseline-I tables
    for name in ("table6", "table7", "table8"):
        agreement = score_table(name, results[name])
        assert agreement.direction_agreement >= 0.5, name
        assert 0.5 < agreement.geomean_ratio < 2.0, name
