"""Extension bench: the combined transform across the full suite.

No paper counterpart — §1 only states that the techniques "can be
combined for improved benefits".  This bench quantifies it: the combined
plan (divergence padding -> shared-memory clusters -> coalescing
transform, composed in slot space) against Baseline-I for all five
algorithms.
"""

from repro.eval.reporting import geomean
from repro.eval.tables import table6_coalescing, table7_shmem, table8_divergence, table_combined

from conftest import run_once


def test_extension_combined(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table_combined(runner))
    emit("extension_combined", text)
    combined_gm = geomean([r["speedup"] for r in rows])
    singles = [
        geomean([r["speedup"] for r in fn(runner)[0]])
        for fn in (table6_coalescing, table7_shmem, table8_divergence)
    ]
    # composition at least matches the weakest single technique overall
    assert combined_gm > min(singles) - 0.05
    assert combined_gm > 1.0
