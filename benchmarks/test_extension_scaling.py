"""Extension bench: technique gains across input scales.

The paper evaluates at one (very large) scale; our suite is synthetic,
so we can ask how the technique speedups move as the inputs grow.  The
expectation encoded: the coalescing gain does not evaporate with size —
it is a per-sweep structural property, not a small-graph artifact (it
mildly *grows* as warps fill with more same-level nodes).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp import sssp
from repro.core.pipeline import build_plan
from repro.eval.reporting import format_table
from repro.graphs.generators import paper_suite

from conftest import run_once


def test_extension_scaling(benchmark, runner, emit):
    def sweep():
        rows = []
        for scale in ("tiny", "small"):
            suite = paper_suite(scale, seed=7)
            for name in ("rmat", "usa-road"):
                g = suite[name]
                src = int(np.argmax(g.out_degrees()))
                exact = sssp(g, src)
                plan = build_plan(g, "coalescing")
                approx = sssp(plan, src)
                rows.append(
                    {
                        "scale": scale,
                        "graph": name,
                        "nodes": g.num_nodes,
                        "edges": g.num_edges,
                        "speedup": exact.cycles / approx.cycles,
                    }
                )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "extension_scaling",
        format_table(
            rows,
            ["scale", "graph", "nodes", "edges", "speedup"],
            title="Extension: coalescing SSSP speedup across input scales",
        ),
    )
    by = {(r["scale"], r["graph"]): r["speedup"] for r in rows}
    # the gain survives scaling up (within a generous tolerance)
    for name in ("rmat", "usa-road"):
        assert by[("small", name)] > by[("tiny", name)] * 0.7
