"""Bench: regenerate Figure 7 (connectedness-threshold sweep).

Paper shape: inaccuracy falls monotonically as the threshold rises
(fewer replicas, fewer added edges); speedup rises to a peak around the
per-graph guideline value and flattens/declines past it.
"""

from repro.eval.figures import figure7_connectedness

from conftest import run_once


def test_figure7(benchmark, runner, emit):
    # the social graph has the richest replication behaviour in the suite
    g = runner.suite["livejournal"]
    points, text = run_once(
        benchmark, lambda: figure7_connectedness(g)
    )
    from repro.eval.plots import ascii_figure

    emit("figure07_connectedness_sweep", text + "\n\n" + ascii_figure(points, title="shape"))
    assert points[0].inaccuracy_percent >= points[-1].inaccuracy_percent - 1e-9
    assert points[0].edges_added >= points[-1].edges_added
