"""Bench: regenerate Figure 8 (clustering-coefficient threshold sweep).

Paper shape: speedup grows with the threshold while clusters stay
populated and dips as the threshold approaches 1 (few qualifying nodes);
inaccuracy rises into the boost band and falls past ~0.8.
"""

from repro.eval.figures import figure8_cc_threshold

from conftest import run_once


def test_figure8(benchmark, runner, emit):
    g = runner.suite["rmat"]
    points, text = run_once(benchmark, lambda: figure8_cc_threshold(g))
    from repro.eval.plots import ascii_figure

    emit("figure08_cc_threshold_sweep", text + "\n\n" + ascii_figure(points, title="shape"))
    assert all(p.speedup > 0.5 for p in points)
