"""Bench: regenerate Figure 9 (degreeSim threshold sweep).

Paper shape: inaccuracy rises monotonically with the threshold (more
padding edges); speedup peaks near 0.3 and drops as the added edge volume
begins to dominate.
"""

from repro.eval.figures import figure9_degree_sim

from conftest import run_once


def test_figure9(benchmark, runner, emit):
    g = runner.suite["rmat"]
    points, text = run_once(benchmark, lambda: figure9_degree_sim(g))
    from repro.eval.plots import ascii_figure

    emit("figure09_degreesim_sweep", text + "\n\n" + ascii_figure(points, title="shape"))
    inaccs = [p.inaccuracy_percent for p in points]
    assert inaccs == sorted(inaccs) or max(inaccs) - min(inaccs) < 1e-6
    assert points[0].edges_added <= points[-1].edges_added
