"""Host-kernel wall-clock benchmark: the tracked perf baseline.

Times every solver hot path through the ``repro.perf`` engine and the
preserved pre-engine reference paths (BC's ``np.isin`` scan, SSSP/WCC's
snapshot loops), then writes the machine-readable report to
``benchmarks/results/BENCH_PR4.json`` — the same artifact
``python -m repro perf`` emits, and the one CI's perf-smoke job gates
regressions against.

Scale follows ``REPRO_BENCH_SCALE`` (default ``small``); the paper-level
acceptance gate (best per-graph BC speedup ≥ 3× over the reference scan)
is asserted at ``medium`` scale, where the O(E)-vs-O(frontier) gap is
not drowned out by per-call overhead.  The gap scales with diameter:
the high-diameter road graph is where the asymptotics dominate, while
low-diameter social graphs (few levels, huge frontiers) were never
paying much for the full-edge scan to begin with.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.eval.reporting import format_table
from repro.perf.bench import run_bench

from conftest import run_once

RESULTS_DIR = Path(__file__).parent / "results"


def test_perf_kernels(benchmark, emit):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    report = run_once(benchmark, lambda: run_bench(scale, repeats=3))

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_PR4.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    rows = [
        {
            "kernel": r["kernel"],
            "graph": r["graph"],
            "seconds": r["seconds"],
            "reference_seconds": r.get("reference_seconds", float("nan")),
            "speedup": r.get("speedup_vs_reference", float("nan")),
        }
        for r in report["kernels"]
    ]
    emit(
        "perf_kernels",
        format_table(
            rows,
            ["kernel", "graph", "seconds", "reference_seconds", "speedup"],
            title=f"Engine vs reference host wall-clock (scale={scale})",
            floatfmt="{:,.4f}",
        ),
    )

    agg = report["aggregate_speedup_vs_reference"]
    best = report["best_speedup_vs_reference"]
    assert set(agg) == {"bc", "sssp", "wcc"}
    assert set(best) == {"bc", "sssp", "wcc"}
    # sanity on every scale: the engine must not be slower overall than
    # the full-edge scan it replaced (per-call overhead makes tiny-scale
    # aggregates hover near 1.0, so only a gross regression trips this)
    assert agg["bc"] > 0.6
    # the tentpole claim: O(frontier) BC beats the np.isin scan where
    # the asymptotics bite; at medium scale the ISSUE's 3x floor must
    # hold on the high-diameter graph (= the best per-graph row)
    if scale == "medium":
        assert best["bc"] >= 3.0
        assert agg["bc"] > 1.0
