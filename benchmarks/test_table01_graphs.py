"""Bench: regenerate Table 1 (input-graph statistics)."""

from repro.eval.tables import table1_graphs

from conftest import run_once


def test_table1_graphs(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table1_graphs(runner))
    emit("table01_graphs", text)
    assert len(rows) == 5
