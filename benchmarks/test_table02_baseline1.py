"""Bench: regenerate Table 2 (Baseline-I exact execution, 5 algorithms).

Paper shape to check in the output: BC is by far the most expensive
algorithm under the topology-driven Baseline-I, and the large/dense
graphs (twitter stand-in) cost the most.
"""

from repro.eval.tables import table2_baseline1_exact

from conftest import run_once


def test_table2_baseline1(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table2_baseline1_exact(runner))
    emit("table02_baseline1_exact", text)
    for row in rows:
        assert row["bc_cycles"] > row["sssp_cycles"] * 0.5
