"""Bench: regenerate Table 3 (Tigr exact execution: SSSP, PR, BC).

Paper shape: Tigr's virtual-split kernels beat Baseline-I on every
algorithm (compare against table02 output).
"""

from repro.eval.tables import table2_baseline1_exact, table3_tigr_exact

from conftest import run_once


def test_table3_tigr(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table3_tigr_exact(runner))
    emit("table03_tigr_exact", text)
    b1_rows, _ = table2_baseline1_exact(runner)
    for tg, b1 in zip(rows, b1_rows):
        assert tg["bc_cycles"] < b1["bc_cycles"]
