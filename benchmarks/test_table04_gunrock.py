"""Bench: regenerate Table 4 (Gunrock exact execution: SSSP, PR, BC).

Paper shape: frontier-driven kernels sit between Baseline-I and Tigr for
BC, and win big for SSSP on the sparse-frontier road network.
"""

from repro.eval.tables import table2_baseline1_exact, table4_gunrock_exact

from conftest import run_once


def test_table4_gunrock(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table4_gunrock_exact(runner))
    emit("table04_gunrock_exact", text)
    b1_rows, _ = table2_baseline1_exact(runner)
    for gr, b1 in zip(rows, b1_rows):
        assert gr["sssp_cycles"] < b1["sssp_cycles"]
