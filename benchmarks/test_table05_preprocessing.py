"""Bench: regenerate Table 5 (preprocessing time + extra space).

Paper shape: the divergence transform is the cheapest in time and space;
the extra space stays in single-digit percentages.
"""

import numpy as np

from repro.eval.tables import table5_preprocessing

from conftest import run_once


def test_table5_preprocessing(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table5_preprocessing(runner))
    emit("table05_preprocessing", text)
    by_tech = {}
    for row in rows:
        by_tech.setdefault(row["technique"], []).append(row["extra_space_percent"])
    assert np.mean(by_tech["Reducing thread divergence"]) <= np.mean(
        by_tech["Improving coalescing"]
    ) + 1.0
