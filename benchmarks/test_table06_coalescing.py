"""Bench: regenerate Table 6 (coalescing vs Baseline-I, 5 algos x 5 graphs).

Paper: geomean speedup 1.16x at ~10% inaccuracy.  Check: geomean > 1.
"""

from repro.eval.reporting import geomean
from repro.eval.tables import table6_coalescing

from conftest import run_once


def test_table6_coalescing(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table6_coalescing(runner))
    emit("table06_coalescing_vs_baseline1", text)
    assert geomean([r["speedup"] for r in rows]) > 1.0
