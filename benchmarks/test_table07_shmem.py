"""Bench: regenerate Table 7 (shared memory vs Baseline-I).

Paper: geomean speedup 1.20x at ~13% inaccuracy — the strongest of the
three techniques.  Check: geomean > 1.
"""

from repro.eval.reporting import geomean
from repro.eval.tables import table7_shmem

from conftest import run_once


def test_table7_shmem(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table7_shmem(runner))
    emit("table07_shmem_vs_baseline1", text)
    assert geomean([r["speedup"] for r in rows]) > 1.0
