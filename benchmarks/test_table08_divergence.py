"""Bench: regenerate Table 8 (thread divergence vs Baseline-I).

Paper: geomean speedup 1.07x at ~8% inaccuracy — the mildest technique,
because graph kernels are memory-bound.  Check: geomean > 1 and below the
stronger techniques (see test_table06/07 outputs).
"""

from repro.eval.reporting import geomean
from repro.eval.tables import table8_divergence

from conftest import run_once


def test_table8_divergence(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table8_divergence(runner))
    emit("table08_divergence_vs_baseline1", text)
    assert geomean([r["speedup"] for r in rows]) > 1.0
