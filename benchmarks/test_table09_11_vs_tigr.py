"""Bench: regenerate Tables 9-11 (the three techniques vs exact Tigr).

Paper shape: coalescing and divergence gains over Tigr are *lower* than
over Baseline-I (Tigr already optimizes edge-array access and
divergence); shared-memory gains are similar (~1.19x).
"""

from repro.eval.reporting import geomean
from repro.eval.tables import (
    table6_coalescing,
    table8_divergence,
    table9_coalescing_vs_tigr,
    table10_shmem_vs_tigr,
    table11_divergence_vs_tigr,
)

from conftest import run_once

TG_ALGOS = ("sssp", "pr", "bc")


def _geomean_subset(rows, algos=TG_ALGOS):
    return geomean([r["speedup"] for r in rows if r["algorithm"] in algos])


def test_table9_coalescing_vs_tigr(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table9_coalescing_vs_tigr(runner))
    emit("table09_coalescing_vs_tigr", text)
    assert _geomean_subset(rows) > 0.9


def test_table10_shmem_vs_tigr(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table10_shmem_vs_tigr(runner))
    emit("table10_shmem_vs_tigr", text)
    assert _geomean_subset(rows) > 1.0


def test_table11_divergence_vs_tigr(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table11_divergence_vs_tigr(runner))
    emit("table11_divergence_vs_tigr", text)
    # the headline shape: divergence gains over Tigr < over Baseline-I
    b1_rows, _ = table8_divergence(runner)
    assert _geomean_subset(rows) < _geomean_subset(b1_rows) + 0.05
