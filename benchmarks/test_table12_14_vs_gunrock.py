"""Bench: regenerate Tables 12-14 (the three techniques vs exact Gunrock).

Paper shape: speedups over Gunrock are similar to those over Baseline-I
(geomeans 1.14x / 1.19x / 1.07x vs 1.16x / 1.20x / 1.07x).
"""

from repro.eval.reporting import geomean
from repro.eval.tables import (
    table12_coalescing_vs_gunrock,
    table13_shmem_vs_gunrock,
    table14_divergence_vs_gunrock,
)

from conftest import run_once


def _gm(rows):
    return geomean([r["speedup"] for r in rows])


def test_table12_coalescing_vs_gunrock(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table12_coalescing_vs_gunrock(runner))
    emit("table12_coalescing_vs_gunrock", text)
    assert _gm(rows) > 0.9


def test_table13_shmem_vs_gunrock(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table13_shmem_vs_gunrock(runner))
    emit("table13_shmem_vs_gunrock", text)
    assert _gm(rows) > 1.0


def test_table14_divergence_vs_gunrock(benchmark, runner, emit):
    rows, text = run_once(benchmark, lambda: table14_divergence_vs_gunrock(runner))
    emit("table14_divergence_vs_gunrock", text)
    assert _gm(rows) > 0.9
