"""Autotuning the approximation knobs per graph.

The paper gives per-graph *guidelines* for each threshold (§5.2-§5.4);
``repro.core.autotune`` operationalizes them into a tiny guideline-seeded
search scored by ``speedup - weight * inaccuracy``.  This example tunes
all three techniques on two structurally opposite graphs (scale-free vs
road) and shows how the chosen thresholds differ — reproducing the
paper's observation that power-law graphs want a high connectedness
threshold while road networks want a low one.

Run:  python examples/autotuning.py
"""

from __future__ import annotations

from repro import graphs
from repro.core.autotune import autotune


def main() -> None:
    suite = {
        "rmat (scale-free)": graphs.rmat(9, edge_factor=8, seed=4),
        "road (uniform)": graphs.road_network(22, seed=4),
    }
    for name, graph in suite.items():
        print(f"=== {name}: {graph}")
        for technique in ("coalescing", "shmem", "divergence"):
            result = autotune(graph, technique, accuracy_weight=2.0)
            print(result.summary())
        print()

    print("Raising accuracy_weight biases the tuner toward conservative")
    print("thresholds; lowering it chases raw speedup — the same trade-off")
    print("the paper's knobs expose, now chosen automatically.")


if __name__ == "__main__":
    main()
