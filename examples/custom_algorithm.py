"""Extending the framework: a new algorithm in two styles.

The paper's pitch is that the transforms are *algorithm-oblivious*; this
example demonstrates it from the user's side, implementing weakly
connected components two ways:

1. through the generic :class:`~repro.algorithms.common.Runner` (the
   `repro.algorithms.wcc` module — ~15 lines of relax logic), which gets
   confluence, cluster rounds, and every Graffix technique for free; and
2. through the Gunrock-style operator API
   (:mod:`repro.baselines.operators`) as an advance/filter loop, the way
   a Gunrock user would write it.

Both are validated against scipy and run under each Graffix plan.

Run:  python examples/custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro import core, graphs
from repro.algorithms.wcc import exact_wcc_count, wcc
from repro.baselines.operators import Frontier, OperatorContext


def wcc_with_operators(graph, device=None):
    """WCC as a Gunrock-style advance/filter loop."""
    from repro.gpusim.device import K40C

    ctx = OperatorContext(graph, device or K40C)
    # weak connectivity needs both directions; symmetrize once
    und = graph.to_undirected()
    ctx_und = OperatorContext(und, device or K40C)
    labels = np.arange(graph.num_nodes, dtype=np.float64)
    frontier = Frontier(np.arange(graph.num_nodes, dtype=np.int64))
    while frontier:
        improved = np.zeros(graph.num_nodes, dtype=bool)

        def push(e_src, e_dst, e_w):
            before = labels[e_dst].copy()
            np.minimum.at(labels, e_dst, labels[e_src])
            changed = labels[e_dst] < before
            improved[e_dst[changed]] = True
            return changed

        candidates = ctx_und.advance(frontier, push)
        frontier = ctx_und.filter_(candidates, lambda ids: improved[ids])
    return labels, ctx_und.metrics


def main() -> None:
    graph = graphs.heavy_tail_social(1200, mean_degree=10, seed=8)
    print(f"graph: {graph}; exact WCC count: {exact_wcc_count(graph)}\n")

    runner_style = wcc(graph)
    op_labels, op_metrics = wcc_with_operators(graph)
    print(f"runner-style WCC:   {runner_style.aux['num_components']} components, "
          f"{runner_style.cycles:,.0f} cycles")
    print(f"operator-style WCC: {int(np.unique(op_labels).size)} components, "
          f"{op_metrics.cycles:,.0f} cycles\n")

    print("the same runner-style WCC under every Graffix plan (no changes")
    print("to the algorithm — the obliviousness claim, demonstrated):")
    exact = wcc(graph)
    for technique in ("coalescing", "shmem", "divergence", "combined"):
        plan = core.build_plan(graph, technique)
        approx = wcc(plan)
        print(f"  {technique:11s} speedup {exact.cycles / approx.cycles:5.2f}x  "
              f"components {exact.aux['num_components']} -> "
              f"{approx.aux['num_components']}")


if __name__ == "__main__":
    main()
