"""Comparing Graffix inside all three baseline framework styles.

Reproduces in miniature the experiment design of Tables 6/9/12: the same
Graffix coalescing transform, executed by the LonestarGPU-style
(topology-driven), Tigr-style (virtual split), and Gunrock-style
(frontier-driven) kernels, versus that framework's own exact run.

The paper's finding to look for in the output: gains over Tigr are the
smallest, because Tigr's exact kernels already fix divergence and
edge-array irregularity.

Run:  python examples/framework_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import core, graphs
from repro.baselines import BASELINES
from repro.eval import attribute_inaccuracy


def main() -> None:
    graph = graphs.rmat(10, edge_factor=8, seed=21)
    source = int(np.argmax(graph.out_degrees()))
    plan = core.build_plan(graph, "coalescing")
    print(f"graph: {graph}; transform: +{plan.graffix.num_replicas} replicas, "
          f"+{plan.edges_added} edges\n")

    header = (f"{'framework':10s} {'algo':5s} {'exact cycles':>14s} "
              f"{'approx cycles':>14s} {'speedup':>8s} {'inacc':>7s}")
    print(header)
    print("-" * len(header))
    for fw_name, module in BASELINES.items():
        for algo in ("sssp", "pr", "bc"):
            exact = module.run(algo, graph, source=source,
                               bc_sources=np.array([source, 1, 2]))
            approx = module.run(algo, plan, source=source,
                                bc_sources=np.array([source, 1, 2]))
            print(
                f"{fw_name:10s} {algo:5s} {exact.cycles:14,.0f} "
                f"{approx.cycles:14,.0f} "
                f"{exact.cycles / approx.cycles:7.2f}x "
                f"{attribute_inaccuracy(exact.values, approx.values):6.2f}%"
            )
    print("\nInaccuracies repeat across frameworks because the error is a")
    print("property of the *transformed graph*, not of the kernel style —")
    print("exactly the paper's observation in §5.2.")


if __name__ == "__main__":
    main()
