"""Kernel profiling: where the simulated cycles go, and what each
transform actually improves.

The cost model attributes every cycle to a component (serialized warp
steps, edges-array reads, attribute traffic by latency class, atomics),
so a speedup claim can be opened up like an ``nvprof`` capture.  This
example profiles exact SSSP on a scale-free graph, then shows the
per-component comparison for each Graffix technique — coalescing should
shrink the global-attribute row, shared memory should move attribute
traffic to the shared row, divergence should shrink the serialized-steps
row.

Run:  python examples/kernel_profile.py
"""

from __future__ import annotations

import numpy as np

from repro import algorithms, core, graphs
from repro.gpusim.profile import compare_report, profile_report


def main() -> None:
    graph = graphs.rmat(10, edge_factor=8, seed=17)
    source = int(np.argmax(graph.out_degrees()))
    exact = algorithms.sssp(graph, source)

    print(profile_report(exact.metrics, title=f"exact SSSP on {graph}"))
    print()

    for technique in ("coalescing", "shmem", "divergence"):
        plan = core.build_plan(graph, technique)
        approx = algorithms.sssp(plan, source)
        print(
            compare_report(
                exact.metrics,
                approx.metrics,
                title=f"exact vs {technique} "
                f"(overall {exact.cycles / approx.cycles:.2f}x)",
            )
        )
        print()


if __name__ == "__main__":
    main()
