"""Knob tuning walkthrough: reproducing the Figures 7-9 sweeps on one graph.

Each Graffix technique exposes one primary threshold (the paper's "knob"):

* connectedness (node replication, Figure 7),
* clustering-coefficient cut-off (shared memory, Figure 8),
* degreeSim (degree normalization, Figure 9).

This example sweeps all three on a scale-free graph and prints the
(threshold -> speedup, inaccuracy) series so you can see where each
technique's sweet spot sits, then applies the paper's per-graph guideline
functions and shows what they pick.

Run:  python examples/knob_tuning.py
"""

from __future__ import annotations

from repro import graphs
from repro.core.knobs import recommended_cc_threshold, recommended_connectedness
from repro.eval.figures import (
    figure7_connectedness,
    figure8_cc_threshold,
    figure9_degree_sim,
)
from repro.graphs.properties import clustering_coefficients, gini_of_degrees


def main() -> None:
    graph = graphs.rmat(10, edge_factor=8, seed=9)
    print(f"graph: {graph}\n")

    for fig in (figure7_connectedness, figure8_cc_threshold, figure9_degree_sim):
        points, text = fig(graph)
        print(text)
        best = max(points, key=lambda p: p.speedup)
        print(f"-> best speedup {best.speedup:.2f}x at threshold "
              f"{best.threshold:.2f} ({best.inaccuracy_percent:.2f}% inaccuracy)\n")

    gini = gini_of_degrees(graph)
    cc = clustering_coefficients(graph)
    print("paper guidelines applied to this graph:")
    print(f"  degree gini {gini:.2f} -> connectedness threshold "
          f"{recommended_connectedness(gini)} (§5.2)")
    print(f"  mean CC {cc.mean():.2f} -> CC cut-off "
          f"{recommended_cc_threshold(cc):.2f} (§5.3)")
    print("  degreeSim threshold 0.3 (Figure 9 sweet spot, §5.4)")


if __name__ == "__main__":
    main()
