"""Quickstart: transform a graph, run an algorithm, measure the trade-off.

Builds a scale-free R-MAT graph, applies each Graffix technique, runs SSSP
and PageRank on the simulated GPU, and prints speedup (simulated cycles)
against the exact run together with the paper's inaccuracy metric.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import algorithms, core, graphs
from repro.eval import attribute_inaccuracy


def main() -> None:
    # a 2^10-node power-law graph with integer weights, fixed seed
    graph = graphs.rmat(10, edge_factor=8, seed=42)
    source = int(np.argmax(graph.out_degrees()))
    print(f"graph: {graph}, SSSP source: {source}")

    exact_sssp = algorithms.sssp(graph, source)
    exact_pr = algorithms.pagerank(graph)
    print(f"exact SSSP: {exact_sssp.iterations} sweeps, "
          f"{exact_sssp.cycles:,.0f} simulated cycles")
    print(f"exact PR:   {exact_pr.iterations} sweeps, "
          f"{exact_pr.cycles:,.0f} simulated cycles\n")

    header = f"{'technique':12s} {'algo':5s} {'speedup':>8s} {'inaccuracy':>11s} {'edges+':>7s}"
    print(header)
    print("-" * len(header))
    for technique in ("coalescing", "shmem", "divergence", "combined"):
        plan = core.build_plan(graph, technique)
        for name, exact, run in (
            ("sssp", exact_sssp, lambda p: algorithms.sssp(p, source)),
            ("pr", exact_pr, algorithms.pagerank),
        ):
            approx = run(plan)
            speedup = exact.cycles / approx.cycles
            inacc = attribute_inaccuracy(exact.values, approx.values)
            print(f"{technique:12s} {name:5s} {speedup:7.2f}x {inacc:10.2f}% "
                  f"{plan.edges_added:7d}")

    print("\nSpeedups are ratios of simulated GPU cycles (see repro.gpusim);")
    print("inaccuracy is the paper's normalized mean absolute attribute error.")


if __name__ == "__main__":
    main()
