"""Influencer ranking on a social network with tolerable approximation.

The paper's motivating scenario for BC: "we may estimate a set of k nodes
with the largest betweenness centrality in a network faster without
computing the exact BC values" (§1).  A downstream consumer of a
top-k influencer list does not care about fourth-decimal centrality —
only about who makes the list.

This example runs PageRank and sampled betweenness centrality on a
LiveJournal-style social graph, exact vs. each Graffix technique, and
reports kernel speedup plus top-k overlap (the metric that matters to the
ranking consumer) alongside the paper's raw attribute inaccuracy.

Run:  python examples/social_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import algorithms, core, graphs
from repro.eval import attribute_inaccuracy


def topk_overlap(exact: np.ndarray, approx: np.ndarray, k: int) -> float:
    te = set(np.argsort(-exact)[:k].tolist())
    ta = set(np.argsort(-approx)[:k].tolist())
    return len(te & ta) / k


def main() -> None:
    graph = graphs.preferential_attachment(1500, out_degree=10, seed=3)
    print(f"graph: {graph}")
    k = 20
    bc_sources = algorithms.pick_sources(graph.num_nodes, 6, seed=0)

    exact_pr = algorithms.pagerank(graph)
    exact_bc = algorithms.betweenness_centrality(graph, sources=bc_sources)
    print(f"exact PR cycles {exact_pr.cycles:,.0f}; "
          f"exact BC cycles {exact_bc.cycles:,.0f}\n")

    header = (f"{'technique':12s} {'algo':4s} {'speedup':>8s} "
              f"{'top-%d overlap' % k:>15s} {'inaccuracy':>11s}")
    print(header)
    print("-" * len(header))
    from repro.core.knobs import SharedMemoryKnobs, recommended_cc_threshold
    from repro.graphs.properties import clustering_coefficients

    shmem_knobs = SharedMemoryKnobs(
        cc_threshold=recommended_cc_threshold(clustering_coefficients(graph))
    )
    for technique in ("coalescing", "shmem", "divergence"):
        plan = core.build_plan(graph, technique, shmem=shmem_knobs)
        approx_pr = algorithms.pagerank(plan)
        approx_bc = algorithms.betweenness_centrality(plan, sources=bc_sources)
        for name, exact, approx in (
            ("pr", exact_pr, approx_pr),
            ("bc", exact_bc, approx_bc),
        ):
            print(
                f"{technique:12s} {name:4s} "
                f"{exact.cycles / approx.cycles:7.2f}x "
                f"{topk_overlap(exact.values, approx.values, k):14.0%} "
                f"{attribute_inaccuracy(exact.values, approx.values):10.2f}%"
            )

    print("\nTakeaway: attribute drift of a few percent barely moves the")
    print("top-k membership, which is the paper's argument for trading")
    print("exactness for kernel time in ranking workloads.")


if __name__ == "__main__":
    main()
