"""Steiner-tree approximation: the paper's amortization use case (§1).

"Computing a 2-approximate solution to the Steiner tree problem (routinely
used in network design and wiring layout) involves running SSSP from
multiple terminal nodes" — so the one-time Graffix preprocessing is paid
once and reused across every SSSP launch.

This example implements the classic Kou-Markowsky-Berman 2-approximation:

1. run SSSP from every terminal (on the *same* transformed graph);
2. build the terminal distance closure;
3. take its minimum spanning tree — its weight is within 2x of the
   optimal Steiner tree.

It reports the cumulative simulated kernel time for the exact and the
Graffix-transformed runs, plus the relative error of the Steiner weight.

Run:  python examples/steiner_tree.py
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro import algorithms, core, graphs


def steiner_2approx_weight(distances: dict[int, np.ndarray], terminals: list[int]) -> float:
    """MST weight of the terminal distance closure (KMB step 1+2)."""
    k = len(terminals)
    closure = np.zeros((k, k))
    for i, t in enumerate(terminals):
        closure[i, :] = [distances[t][u] for u in terminals]
    closure = np.minimum(closure, closure.T)  # symmetrize directed distances
    finite = np.isfinite(closure)
    closure[~finite] = 0.0
    mst = csgraph.minimum_spanning_tree(sp.csr_matrix(np.triu(closure)))
    return float(mst.sum())


def run(graph, plan_or_graph, terminals, label: str) -> tuple[float, float]:
    distances: dict[int, np.ndarray] = {}
    total_cycles = 0.0
    for t in terminals:
        res = algorithms.sssp(plan_or_graph, t)
        distances[t] = res.values
        total_cycles += res.cycles
    weight = steiner_2approx_weight(distances, terminals)
    print(f"{label:20s} steiner weight = {weight:10.1f}   "
          f"total kernel cycles = {total_cycles:12,.0f}")
    return weight, total_cycles


def main() -> None:
    # wiring-layout style instance: a perturbed grid ("circuit board")
    graph = graphs.road_network(40, seed=11)
    rng = np.random.default_rng(5)
    terminals = sorted(rng.choice(graph.num_nodes, size=8, replace=False).tolist())
    print(f"graph: {graph}; terminals: {terminals}\n")

    exact_w, exact_cycles = run(graph, graph, terminals, "exact")

    plan = core.build_plan(
        graph,
        "coalescing",
        coalescing=core.CoalescingKnobs(connectedness_threshold=0.4),  # road guideline
    )
    # the amortization story end-to-end: persist the plan so later
    # processes skip the transform entirely
    import tempfile

    cache = tempfile.NamedTemporaryFile(suffix=".npz", delete=False)
    core.save_plan(plan, cache.name)
    plan = core.load_plan(cache.name)
    print(f"\npreprocessing: {plan.preprocess_seconds*1e3:.0f} ms once "
          f"(cached to disk, reloaded), amortized over "
          f"{len(terminals)} SSSP launches")
    approx_w, approx_cycles = run(graph, plan, terminals, "graffix coalescing")

    speedup = exact_cycles / approx_cycles
    err = abs(approx_w - exact_w) / exact_w * 100
    print(f"\nkernel speedup {speedup:.2f}x, steiner-weight error {err:.2f}%")
    print("(the 2-approximation guarantee absorbs small distance drift,")
    print(" which is why this workload tolerates Graffix so well)")


if __name__ == "__main__":
    main()
