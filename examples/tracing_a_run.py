"""Tracing one Table-6 cell: where the wall-clock of a speedup goes.

The tables report a single number per cell; the telemetry layer
(:mod:`repro.obs`) records *how it was produced* — spans for graph
generation (io), each transform stage, every simulated kernel sweep and
confluence merge, and the exact/approx solves, each carrying the
simulated-cycle numbers as attributes.  This example runs the
rmat/SSSP/coalescing cell with a tracer installed, exports the trace in
both formats (JSONL for ``python -m repro stats``, Chrome
``trace_event`` JSON for ``chrome://tracing`` / Perfetto), and prints
the same profile-style breakdown the CLI gives you with::

    python -m repro table6 --scale tiny --trace-out trace.jsonl
    python -m repro stats trace.jsonl

Run:  python examples/tracing_a_run.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import obs
from repro.eval.harness import Harness
from repro.graphs.generators import rmat
from repro.obs.stats import format_stats, load_trace


def main() -> None:
    tracer = obs.install_tracer()
    try:
        graph = rmat(9, edge_factor=8, seed=7)
        harness = Harness(num_bc_sources=2)
        result = harness.run(graph, "sssp", "coalescing")
    finally:
        obs.uninstall_tracer()

    out = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    jsonl = tracer.export_jsonl(out / "trace.jsonl")
    chrome = tracer.export_chrome(out / "trace.json")

    print(
        f"Table-6 cell rmat/sssp/coalescing: speedup {result.speedup:.2f}x, "
        f"inaccuracy {result.inaccuracy_percent:.2f}%"
    )
    print(f"trace: {jsonl} (stats) and {chrome} (chrome://tracing)")
    print()
    print(format_stats(load_trace(jsonl), top=12, title="where the time went"))
    print()
    snap = obs.snapshot()
    sweeps = snap["counters"].get("solve.sweeps", 0)
    print(f"metrics: {int(sweeps)} kernel sweeps, "
          f"{int(snap['counters'].get('solve.confluence_merges', 0))} confluence merges, "
          f"{int(snap['counters'].get('harness.exact_cache.miss', 0))} exact-cache misses")


if __name__ == "__main__":
    main()
