"""Inspecting a transform before running anything: reports and traces.

The Graffix knobs are indirect; before committing to a long run you want
to know what a transform actually did to your graph and what it will buy
per sweep.  This example shows the inspection stack:

* `report_transform` — structural deltas (holes, replicas, added edges,
  clustering, divergence) plus a one-sweep cost probe;
* `trace_sweep` + `transactions_per_step` — the per-step coalescing
  picture the aggregate numbers hide;
* `hot_segments` — which attribute segments every warp keeps hitting
  (the §3 shared-memory candidates);
* `microbench_report` — the cost model's calibration on canonical
  patterns, for context.

Run:  python examples/transform_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro import core, graphs
from repro.core.report import report_transform
from repro.eval.plots import ascii_series
from repro.gpusim.device import K40C
from repro.gpusim.microbench import microbench_report
from repro.gpusim.trace import hot_segments, trace_sweep, transactions_per_step


def main() -> None:
    print(microbench_report())
    print()

    graph = graphs.preferential_attachment(1200, out_degree=10, seed=13)
    print(f"graph under inspection: {graph}\n")

    for technique in ("coalescing", "shmem", "divergence"):
        plan = core.build_plan(graph, technique)
        print(report_transform(graph, plan).render())
        print()

    # per-step coalescing picture, before vs after the coalescing transform
    plan = core.build_plan(graph, "coalescing")
    before = transactions_per_step(trace_sweep(graph, K40C))
    after = transactions_per_step(trace_sweep(plan.graph, K40C))
    steps = min(16, before.size, after.size)
    print("attribute transactions per warp step (first "
          f"{steps} steps; lower = better coalescing)")
    print(f"  before: {ascii_series(before[:steps])}  "
          f"(total {int(before.sum())})")
    print(f"  after : {ascii_series(after[:steps])}  "
          f"(total {int(after.sum())})")
    print()

    trace = trace_sweep(graph, K40C)
    print("hottest attribute segments (16-word lines) — the hub data the")
    print("§3 technique wants resident in shared memory:")
    for seg, hits in hot_segments(trace, top=5):
        nodes = range(seg * K40C.line_words, (seg + 1) * K40C.line_words)
        degs = graph.in_degrees()[list(nodes)]
        print(f"  segment {seg:4d}: {hits:6d} hits "
              f"(covers nodes {nodes.start}-{nodes.stop - 1}, "
              f"max in-degree {int(degs.max())})")


if __name__ == "__main__":
    main()
