"""Setuptools shim.

Kept so ``pip install -e . --no-use-pep517 --no-build-isolation`` works in
offline environments whose setuptools lacks the ``wheel`` package (the
PEP-517 editable path needs ``bdist_wheel``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
