"""Graffix reproduction: approximate graph transforms for GPU-style execution.

Reproduces Singh & Nasre, *"Graffix: Efficient Graph Processing with a
Tinge of GPU-Specific Approximations"* (ICPP 2020) in pure Python:

* :mod:`repro.graphs`  — CSR graph substrate + synthetic input suite
* :mod:`repro.gpusim`  — warp-level GPU execution simulator (cost model)
* :mod:`repro.core`    — the paper's three approximate transforms
* :mod:`repro.algorithms` — SSSP, MST, SCC, PR, BC on the simulator
* :mod:`repro.baselines`  — LonestarGPU- / Tigr- / Gunrock-style kernels
* :mod:`repro.eval`    — inaccuracy metrics, harness, Tables 1-14, Figs 7-9
* :mod:`repro.resilience` — checkpoint journal, worker retry, fault injection
* :mod:`repro.cache`   — content-addressed transform/analytics artifact cache
* :mod:`repro.verify`  — structural/metamorphic/differential/golden oracles

Quickstart::

    from repro import graphs, core, algorithms, eval as ev

    g = graphs.rmat(10, edge_factor=8, seed=1)
    plan = core.build_plan(g, "coalescing")
    approx = algorithms.sssp(plan, source=0)
    exact = algorithms.sssp(g, source=0)
    print(exact.cycles / approx.cycles,           # simulated speedup
          ev.attribute_inaccuracy(exact.values, approx.values))
"""

from . import (
    algorithms,
    baselines,
    cache,
    core,
    eval,
    graphs,
    gpusim,
    resilience,
    verify,
)
from .errors import (
    AlgorithmError,
    CacheError,
    DegradedResult,
    FaultInjected,
    GraphFormatError,
    KnobError,
    ReproError,
    ResilienceError,
    SimulationError,
    TransformError,
    VerificationError,
    WorkerTimeout,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmError",
    "CacheError",
    "DegradedResult",
    "FaultInjected",
    "GraphFormatError",
    "KnobError",
    "ReproError",
    "ResilienceError",
    "SimulationError",
    "TransformError",
    "VerificationError",
    "WorkerTimeout",
    "algorithms",
    "baselines",
    "cache",
    "core",
    "eval",
    "graphs",
    "gpusim",
    "resilience",
    "verify",
]
