"""``python -m repro``: regenerate the paper's tables/figures from the CLI."""

import sys

from .eval.suite import main

if __name__ == "__main__":
    sys.exit(main())
