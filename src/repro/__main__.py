"""``python -m repro``: regenerate the paper's tables/figures from the CLI.

Subcommands:

* (default) — the evaluation suite (``python -m repro table6 ...``);
* ``stats <trace>`` — profile-style breakdown of a ``--trace-out`` trace
  (see :mod:`repro.obs.stats`);
* ``cache {stats,ls,clear}`` — inspect or clear the on-disk artifact
  cache (see :mod:`repro.cache.cli` and ``docs/caching.md``);
* ``perf`` — time the solver kernels and emit/check the tracked perf
  baseline (see :mod:`repro.perf.bench` and ``docs/performance.md``);
* ``verify`` — the structural/metamorphic/differential/golden oracle
  suite (see :mod:`repro.verify` and ``docs/verification.md``);
* ``serve`` — the long-lived analytics query server (see
  :mod:`repro.serve` and ``docs/serving.md``);
* ``bench serve`` — the YAML load generator + KPI gate against the
  server (:mod:`repro.serve.loadgen`), emitting ``BENCH_SERVE.json``;
* ``obs diff A B`` — noise-aware comparison of two perf/metrics/trace/
  verify reports (see :mod:`repro.obs.diff` and ``docs/observability.md``);
* ``tune`` — the offline knob auto-tuner emitting ``BENCH_TUNE.json``
  (see :mod:`repro.tune` and ``docs/tuning.md``).
"""

import sys


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        from .obs.stats import main as stats_main

        return stats_main(argv[1:])
    if len(argv) >= 2 and argv[0] == "obs" and argv[1] == "diff":
        from .obs.diff import main as diff_main

        return diff_main(argv[2:])
    if argv and argv[0] == "serve":
        from .serve.cli import main as serve_main

        return serve_main(argv[1:])
    if len(argv) >= 2 and argv[0] == "bench" and argv[1] == "serve":
        from .serve.loadgen import main as bench_serve_main

        return bench_serve_main(argv[2:])
    if argv and argv[0] == "cache":
        from .cache.cli import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "perf":
        from .perf.bench import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "tune":
        from .tune.cli import main as tune_main

        return tune_main(argv[1:])
    if argv and argv[0] == "verify":
        from .verify.cli import main as verify_main

        return verify_main(argv[1:])
    from .eval.suite import main as suite_main

    return suite_main(argv)


if __name__ == "__main__":
    sys.exit(main())
