"""``python -m repro``: regenerate the paper's tables/figures from the CLI.

Subcommands:

* (default) — the evaluation suite (``python -m repro table6 ...``);
* ``stats <trace>`` — profile-style breakdown of a ``--trace-out`` trace
  (see :mod:`repro.obs.stats`).
"""

import sys


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        from .obs.stats import main as stats_main

        return stats_main(argv[1:])
    from .eval.suite import main as suite_main

    return suite_main(argv)


if __name__ == "__main__":
    sys.exit(main())
