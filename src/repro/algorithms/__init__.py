"""The paper's five evaluation algorithms on the simulated GPU."""

from .bc import betweenness_centrality, pick_sources
from .bfs import bfs
from .common import AlgorithmResult, EdgeView, Runner, plan_for
from .exact import (
    exact_bc,
    exact_msf_weight,
    exact_pagerank,
    exact_scc_count,
    exact_sssp,
)
from .mst import minimum_spanning_forest_weight, mst
from .pagerank import pagerank
from .scc import scc
from .sssp import sssp, sssp_relax
from .wcc import exact_wcc_count, wcc

#: paper order: SSSP, MST, SCC, PR, BC (bfs is an extension)
ALGORITHM_NAMES = ("sssp", "mst", "scc", "pr", "bc")

__all__ = [
    "ALGORITHM_NAMES",
    "AlgorithmResult",
    "EdgeView",
    "Runner",
    "betweenness_centrality",
    "bfs",
    "exact_bc",
    "exact_msf_weight",
    "exact_pagerank",
    "exact_scc_count",
    "exact_sssp",
    "minimum_spanning_forest_weight",
    "mst",
    "pagerank",
    "pick_sources",
    "plan_for",
    "scc",
    "sssp",
    "exact_wcc_count",
    "wcc",
    "sssp_relax",
]
