"""Betweenness centrality — parallel Brandes' algorithm (paper §2, Alg. 1).

Two-pass, level-synchronous, inner-parallel (one source at a time, each
pass parallel over the frontier — the strategy the paper states it uses):

* **forward** — BFS from the source builds the shortest-path DAG and the
  path counts ``sigma``; each BFS level is one charged sweep over the
  frontier;
* **backward** — dependencies ``delta`` accumulate level by level via
  Eq. (1); each level is one charged sweep.

Exact BC is ``O(nm)`` per run, which is why the paper calls it out as the
canonical approximation target; like all GPU evaluations we sample a fixed
set of sources (the harness uses the *same* sources for exact and
approximate runs so the inaccuracy metric is apples-to-apples).

On a transformed plan, replica values (``sigma``/``delta``) are merged by
confluence after every level, and resident clusters get the shared-memory
latency discount automatically through the cost model.  The §3 local
iteration rounds do not apply to level-synchronous passes and are skipped.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..graphs.properties import ragged_arange
from ..perf.batched import (
    LaneLedger,
    charge_lane_level,
    expand_lanes,
    lane_sweep_cost,
)
from ..perf.edgeshare import shared_pull_view
from ..perf.gather import LevelBuckets, SweepExpansion, expand_frontier
from ..perf.schedule import schedule_for
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["betweenness_centrality", "pick_sources", "BC_ENGINES"]

#: host-side scan strategies (identical values and charges; see
#: ``docs/performance.md``): ``"gather"`` does O(frontier-edges) CSR
#: gathers + a per-source level-bucketed edge argsort, ``"batched"``
#: stacks all sampled sources into lane-tagged state and drives one
#: vectorized expansion per level (:mod:`repro.perf.batched` — per-lane
#: values and charges stay byte-identical to the looped gather run),
#: ``"reference"`` is the pre-engine full-edge-scan path kept for
#: equivalence tests and the ``python -m repro perf`` speedup baseline
BC_ENGINES = ("gather", "batched", "reference")


def pick_sources(num_nodes: int, num_sources: int, seed: int = 0) -> np.ndarray:
    """Deterministic source sample shared by exact and approximate runs."""
    if num_sources < 1:
        raise AlgorithmError("num_sources must be >= 1")
    rng = np.random.default_rng(seed)
    k = min(num_sources, num_nodes)
    return np.sort(rng.choice(num_nodes, size=k, replace=False)).astype(np.int64)


def betweenness_centrality(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    sources: np.ndarray | None = None,
    num_sources: int = 8,
    seed: int = 0,
    topology_driven: bool = False,
    strategy: str = "inner",
    engine: str = "gather",
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
) -> AlgorithmResult:
    """Approximate-by-sampling BC scores per original node.

    ``sources`` overrides the sample (original node ids).  Scores are the
    plain dependency sums over the sampled sources (unnormalized, as the
    paper's attribute comparison wants raw values).

    ``topology_driven=True`` charges a *full* node sweep per level instead
    of the frontier — the LonestarGPU/Baseline-I kernel style, where every
    thread re-checks its node each iteration (this is why Baseline-I BC is
    by far the slowest in the paper's Table 2).

    ``strategy`` selects the parallelization the paper discusses in §2:
    ``"inner"`` (the paper's choice) processes sources sequentially, each
    pass parallel over its frontier; ``"outer"`` batches the level-``d``
    frontiers of *all* sources into one charged sweep — fuller warps,
    fewer kernel launches, identical values.  Only the cost accounting
    differs.

    ``engine`` selects the host-side scan strategy (:data:`BC_ENGINES`);
    values, iterations, and charged metrics are identical — only host
    wall-clock differs.  ``"batched"`` additionally attributes each
    source's charges to its lane (``aux["per_source_metrics"]``), every
    lane bit-identical to the source's own looped run; it requires the
    ``inner`` strategy and a frontier-driven kernel, like schedules.

    ``schedule`` (a :class:`~repro.perf.schedule.Schedule` or spec
    string) picks per-level traversal direction/partition for both
    passes.  Pull levels gather over the shared reverse view and
    re-sort the surviving records by forward edge id, recovering the
    push path's exact scatter order — so ``sigma``/``delta`` (and with
    them the scores) stay byte-identical under any schedule.  Only the
    frontier-driven gather engine with the ``inner`` strategy is
    schedulable: the reference engine exists to pin the historical
    path, and outer/topology-driven charging deliberately models
    fixed-shape kernels.
    """
    if strategy not in ("inner", "outer"):
        raise AlgorithmError(f"unknown BC strategy {strategy!r}")
    if engine not in BC_ENGINES:
        raise AlgorithmError(
            f"unknown BC engine {engine!r}; choose from {BC_ENGINES}"
        )
    sched = schedule_for(schedule)
    if sched is not None and (
        topology_driven or strategy == "outer" or engine == "reference"
    ):
        raise AlgorithmError(
            "schedules require the gather engine with the inner strategy "
            "(frontier-driven)"
        )
    if engine == "batched" and (topology_driven or strategy == "outer"):
        raise AlgorithmError(
            "the batched engine is frontier-driven with the inner strategy; "
            "topology-driven and outer charging model fixed-shape kernels"
        )
    plan = plan_for(graph_or_plan)
    n_orig = plan.num_original
    if sources is None:
        sources = pick_sources(n_orig, num_sources, seed)
    else:
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            raise AlgorithmError("sources must be non-empty")
        if sources.min() < 0 or sources.max() >= n_orig:
            raise AlgorithmError("BC source out of range")

    runner = (runner_factory or Runner)(plan, device)
    if engine == "batched":
        return _batched_bc(plan, runner, sched, sources)
    graph = plan.graph
    n = graph.num_nodes
    m = graph.num_edges
    src_arr = runner.edges.src
    dst_arr = runner.edges.dst
    pull_view = None
    rev_indices = None

    def _pull_arrays():
        nonlocal pull_view, rev_indices
        if pull_view is None:
            pull_view = shared_pull_view(graph)
            rev_indices = pull_view.rev.indices.astype(np.int64)
        return pull_view, rev_indices

    if plan.graffix is not None:
        primary = plan.graffix.primary_slot
        g_slots, g_gids, g_sizes = plan.graffix.replica_groups()
    else:
        primary = np.arange(n_orig, dtype=np.int64)
        g_slots = g_gids = g_sizes = np.empty(0, dtype=np.int64)
    num_groups = int(g_sizes.size)

    def sync_levels(level: np.ndarray) -> None:
        """Replica copies are one logical node: when any copy is reached,
        every copy is (a replica has no in-edges of its own, so without
        this its out-edges — moved off the original — would never fire)."""
        if num_groups == 0:
            return
        lv = level[g_slots].astype(np.float64)
        lv[lv < 0] = np.inf
        gmin = np.full(num_groups, np.inf)
        np.minimum.at(gmin, g_gids, lv)
        reached = np.isfinite(gmin)
        members = reached[g_gids] & (level[g_slots] < 0)
        level[g_slots[members]] = gmin[g_gids[members]].astype(np.int64)

    def merge_positive_mean(values: np.ndarray) -> None:
        """The paper's arithmetic-mean confluence, restricted to copies
        that hold a value (> 0) — averaging a reached hub with a copy
        that merely hasn't fired yet would halve real path counts."""
        if num_groups == 0:
            return
        vals = values[g_slots]
        pos = vals > 0
        if not pos.any():
            return
        sums = np.bincount(g_gids[pos], weights=vals[pos], minlength=num_groups)
        counts = np.bincount(g_gids[pos], minlength=num_groups)
        has = counts > 0
        means = np.where(has, sums / np.maximum(counts, 1), 0.0)
        apply = has[g_gids] & (level_ref[g_slots] >= 0)
        values[g_slots[apply]] = means[g_gids[apply]]

    bc = np.zeros(n)
    total_levels = 0
    level_ref = np.full(n, -1, dtype=np.int64)  # rebound per source below
    # outer strategy: frontiers across sources are batched per level and
    # charged after the value computation (same work items, fuller warps)
    outer_forward: dict[int, list[np.ndarray]] = {}
    outer_backward: dict[int, list[np.ndarray]] = {}

    for s in sources:
        s_slot = int(primary[s])
        level = np.full(n, -1, dtype=np.int64)
        level_ref = level  # seen by merge_positive_mean
        sigma = np.zeros(n)
        level[s_slot] = 0
        sigma[s_slot] = 1.0
        sync_levels(level)
        merge_positive_mean(sigma)
        frontier = np.nonzero(level == 0)[0].astype(np.int64)
        fronts = [frontier]  # per-level frontiers, reused by the backward pass
        pending: list[SweepExpansion] = []
        depth = 0
        prev = None  # schedule hysteresis, fresh per source
        unexplored = m - int(
            (graph.offsets[frontier + 1] - graph.offsets[frontier]).sum()
        )

        # ---- forward pass: BFS DAG + path counts -----------------------
        while frontier.size:
            decision = None
            if sched is not None:
                decision = sched.decide(
                    frontier_size=int(frontier.size),
                    frontier_edges=int(
                        (graph.offsets[frontier + 1] - graph.offsets[frontier]).sum()
                    ),
                    num_nodes=n,
                    num_edges=m,
                    unexplored_edges=unexplored,
                    prev=prev,
                )
                prev = decision
            if decision is not None and decision.direction == "pull":
                # bottom-up level: unvisited candidates gather over the
                # reverse view; surviving records (in-neighbor on the
                # current level) are re-sorted by forward edge id, so
                # the sigma scatter below runs in the push path's exact
                # global CSR edge order — bit-identical accumulation
                pv, rind = _pull_arrays()
                candidates = np.nonzero(level < 0)[0].astype(np.int64)
                rexp = expand_frontier(pv.rev.offsets, rind, candidates)
                runner.ctx.charge(
                    candidates,
                    subgraph=pv.rev,
                    expansion=rexp,
                    partition=decision.partition,
                )
                sel = level[rexp.e_dst] == depth
                order = np.argsort(pv.fwd_eid[rexp.epos[sel]])
                e_src = rexp.e_dst[sel][order]  # forward source @ depth
                e_dst = rexp.e_src[sel][order]  # the unvisited candidate
            else:
                if engine == "gather":
                    # O(frontier-edges): the frontier is sorted (nonzero
                    # order), so gathered edges fall in global CSR edge
                    # order and the scatter-adds below accumulate exactly
                    # as the reference full-edge scan would; the expansion
                    # doubles as the cost model's, sparing a re-expand
                    exp = expand_frontier(graph.offsets, dst_arr, frontier)
                    e_src, e_dst = exp.e_src, exp.e_dst
                else:
                    exp = None
                    mask = np.isin(src_arr, frontier)
                    e_src = src_arr[mask]
                    e_dst = dst_arr[mask]
                if strategy == "outer":
                    outer_forward.setdefault(depth, []).append(frontier)
                elif topology_driven:
                    runner.ctx.charge(None)
                elif decision is not None:
                    # scheduled sweeps charge eagerly: eager equals
                    # batched bit-for-bit, and edge-partitioned sweeps
                    # have no batched path anyway
                    runner.ctx.charge(
                        frontier, expansion=exp, partition=decision.partition
                    )
                elif exp is not None:
                    pending.append(exp)  # flushed in one batch after the pass
                else:
                    runner.ctx.charge(frontier)
            fresh = level[e_dst] < 0
            fresh_dst = e_dst[fresh]
            if fresh_dst.size:
                level[fresh_dst] = depth + 1
            onward = level[e_dst] == depth + 1
            if onward.any():
                np.add.at(sigma, e_dst[onward], sigma[e_src[onward]])
            sync_levels(level)
            merge_positive_mean(sigma)
            if engine == "gather" and num_groups == 0 and fresh_dst.size * 4 < n:
                # without replica sync the next frontier is exactly the
                # freshly levelled dsts — sorting those few beats the
                # O(V) scan of `level` (but not when the level touched
                # a node-count's worth of edges, hence the size gate)
                frontier = np.unique(fresh_dst)
            else:
                frontier = np.nonzero(level == depth + 1)[0].astype(np.int64)
            fronts.append(frontier)
            depth += 1
            unexplored -= int(
                (graph.offsets[frontier + 1] - graph.offsets[frontier]).sum()
            )
        total_levels += depth
        runner.ctx.charge_batch(pending)

        # ---- backward pass: dependency accumulation --------------------
        delta = np.zeros(n)
        lvl_src = level[src_arr]
        lvl_dst = level[dst_arr] if engine != "gather" else None
        # one stable argsort per source buys O(level-edges) lookups per
        # level below, replacing a full-edge mask per level
        buckets = LevelBuckets(lvl_src) if engine == "gather" else None

        def merge_delta() -> None:
            # arithmetic-mean confluence over visited copies of each group
            if num_groups == 0:
                return
            visited_m = level[g_slots] >= 0
            if not visited_m.any():
                return
            sums = np.bincount(
                g_gids[visited_m], weights=delta[g_slots[visited_m]],
                minlength=num_groups,
            )
            counts = np.bincount(g_gids[visited_m], minlength=num_groups)
            has = counts > 0
            means = np.where(has, sums / np.maximum(counts, 1), 0.0)
            apply = has[g_gids] & visited_m
            delta[g_slots[apply]] = means[g_gids[apply]]

        pending = []
        for d in range(depth - 1, -1, -1):
            # gather: the forward pass already recorded each level's
            # (sorted) members, so skip the O(V) scan of `level`
            members = fronts[d] if buckets is not None else np.nonzero(level == d)[0]
            if members.size == 0:
                continue
            decision = None
            if sched is not None:
                decision = sched.decide(
                    frontier_size=int(members.size),
                    frontier_edges=int(
                        (graph.offsets[members + 1] - graph.offsets[members]).sum()
                    ),
                    num_nodes=n,
                    num_edges=m,
                    prev=prev,
                )
                prev = decision
            if decision is not None and decision.direction == "pull":
                # pull this level from the next one: the level-(d+1)
                # frontier gathers its in-edges over the reverse view,
                # keeps those from level-d parents with counted paths,
                # and re-sorts by forward edge id — the exact kept set
                # and scatter order of the push path below
                nexts = fronts[d + 1]
                if nexts.size:
                    pv, rind = _pull_arrays()
                    rexp = expand_frontier(pv.rev.offsets, rind, nexts)
                    runner.ctx.charge(
                        nexts,
                        subgraph=pv.rev,
                        expansion=rexp,
                        partition=decision.partition,
                    )
                    keep = (level[rexp.e_dst] == d) & (sigma[rexp.e_src] > 0)
                    order = np.argsort(pv.fwd_eid[rexp.epos[keep]])
                    e_src = rexp.e_dst[keep][order]  # level-d parent
                    e_dst = rexp.e_src[keep][order]  # level-(d+1) child
                else:
                    e_src = e_dst = np.empty(0, dtype=np.int64)
                if e_src.size:
                    contrib = sigma[e_src] / sigma[e_dst] * (1.0 + delta[e_dst])
                    np.add.at(delta, e_src, contrib)
                merge_delta()
                continue
            if buckets is not None:
                # the level-d bucket is exactly members' CSR adjacency
                # in ascending edge order (every out-edge of a level-d
                # node has lvl_src == d), so it doubles as the cost
                # model's expansion of this sweep
                eids = buckets.at(d)
                dstb = dst_arr[eids]
                degs = (
                    graph.offsets[members + 1] - graph.offsets[members]
                ).astype(np.int64)
                exp = SweepExpansion(
                    members, degs, ragged_arange(degs), eids, None, dstb
                )
                keep = (level[dstb] == d + 1) & (sigma[dstb] > 0)
                e_src = src_arr[eids[keep]]
                e_dst = dstb[keep]
            else:
                exp = None
                mask = (
                    (lvl_src == d) & (lvl_dst == d + 1) & (sigma[dst_arr] > 0)
                )
                e_src = src_arr[mask]
                e_dst = dst_arr[mask]
            if strategy == "outer":
                outer_backward.setdefault(d, []).append(members)
            elif topology_driven:
                runner.ctx.charge(None)
            elif decision is not None:
                runner.ctx.charge(
                    members, expansion=exp, partition=decision.partition
                )
            elif exp is not None:
                pending.append(exp)
            else:
                runner.ctx.charge(members)
            if e_src.size:
                contrib = sigma[e_src] / sigma[e_dst] * (1.0 + delta[e_dst])
                np.add.at(delta, e_src, contrib)
            merge_delta()
        runner.ctx.charge_batch(pending)
        delta[s_slot] = 0.0
        visited = level >= 0
        bc[visited] += delta[visited]

    if strategy == "outer":
        # one sweep per level, all sources' work items batched; a node
        # active for several sources occupies one lane per (source, node)
        # work item, exactly as an outer-parallel kernel would launch it
        for batches in outer_forward.values():
            runner.ctx.charge(np.concatenate(batches))
        for batches in outer_backward.values():
            runner.ctx.charge(np.concatenate(batches))

    values = plan.lower(bc)
    return AlgorithmResult(
        values=values,
        metrics=runner.metrics,
        iterations=total_levels,
        aux={"sources": sources},
    )


def _batched_bc(plan, runner, sched, sources) -> AlgorithmResult:
    """All sampled sources in one stacked sweep (``engine="batched"``).

    State is lane-flat: ``level``/``sigma``/``delta`` are ``(S, n)``
    C-contiguous arrays whose flat view puts lane ``l``'s node ``v`` at
    ``l * n + v``.  Each forward level runs one concatenated expansion
    (:func:`~repro.perf.batched.expand_lanes`) and one flat scatter for
    every push-directed lane; pull-directed lanes replicate the looped
    pull branch on their row views (the re-sort by forward edge id is
    per-lane state anyway).  The backward pass walks one global
    descending level counter — a lane with depth ``k`` joins at
    ``d = k - 1``, so its per-level decision/charge sequence equals its
    looped run — and reads each level's edge list straight from the
    stacked expansion of the recorded frontier, which by construction is
    the level bucket the looped engine argsorts ``LevelBuckets`` for:
    every out-edge of a level-``d`` node is a level-``d`` edge, already
    in ascending edge order.  Dropping those S per-source O(E log E)
    argsorts (plus the per-source Python/numpy dispatch) is where the
    batched speedup comes from.

    Per-lane equivalence (values, iteration counts, and per-source
    charges byte-identical to the looped gather engine) is enforced by
    ``differential:batched`` and ``TestBatchedEquivalence``; totals are
    replayed into the runner's ledger source by source, so the summed
    metrics match a looped run bit for bit too.
    """
    from ..obs import metrics as obs_metrics
    from ..obs import trace as obs_trace

    graph = plan.graph
    n = graph.num_nodes
    m = graph.num_edges
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)
    ctx = runner.ctx
    num_lanes = int(sources.size)
    pull_view = None
    rev_indices = None

    def _pull_arrays():
        nonlocal pull_view, rev_indices
        if pull_view is None:
            pull_view = shared_pull_view(graph)
            rev_indices = pull_view.rev.indices.astype(np.int64)
        return pull_view, rev_indices

    if plan.graffix is not None:
        primary = plan.graffix.primary_slot
        g_slots, g_gids, g_sizes = plan.graffix.replica_groups()
    else:
        primary = np.arange(plan.num_original, dtype=np.int64)
        g_slots = g_gids = g_sizes = np.empty(0, dtype=np.int64)
    num_groups = int(g_sizes.size)

    def sync_levels(level: np.ndarray) -> None:
        if num_groups == 0:
            return
        lv = level[g_slots].astype(np.float64)
        lv[lv < 0] = np.inf
        gmin = np.full(num_groups, np.inf)
        np.minimum.at(gmin, g_gids, lv)
        reached = np.isfinite(gmin)
        members = reached[g_gids] & (level[g_slots] < 0)
        level[g_slots[members]] = gmin[g_gids[members]].astype(np.int64)

    def merge_positive_mean(values: np.ndarray, level: np.ndarray) -> None:
        if num_groups == 0:
            return
        vals = values[g_slots]
        pos = vals > 0
        if not pos.any():
            return
        sums = np.bincount(g_gids[pos], weights=vals[pos], minlength=num_groups)
        counts = np.bincount(g_gids[pos], minlength=num_groups)
        has = counts > 0
        means = np.where(has, sums / np.maximum(counts, 1), 0.0)
        apply = has[g_gids] & (level[g_slots] >= 0)
        values[g_slots[apply]] = means[g_gids[apply]]

    def merge_delta(delta: np.ndarray, level: np.ndarray) -> None:
        if num_groups == 0:
            return
        visited_m = level[g_slots] >= 0
        if not visited_m.any():
            return
        sums = np.bincount(
            g_gids[visited_m], weights=delta[g_slots[visited_m]],
            minlength=num_groups,
        )
        counts = np.bincount(g_gids[visited_m], minlength=num_groups)
        has = counts > 0
        means = np.where(has, sums / np.maximum(counts, 1), 0.0)
        apply = has[g_gids] & visited_m
        delta[g_slots[apply]] = means[g_gids[apply]]

    level2 = np.full((num_lanes, n), -1, dtype=np.int64)
    sigma2 = np.zeros((num_lanes, n))
    level_flat = level2.reshape(-1)
    sigma_flat = sigma2.reshape(-1)
    fronts: list[list[np.ndarray]] = [[] for _ in range(num_lanes)]
    frontiers: list[np.ndarray] = [None] * num_lanes
    prev = [None] * num_lanes
    unexplored = np.empty(num_lanes, dtype=np.int64)
    ledger = LaneLedger(num_lanes)
    for i, s in enumerate(sources):
        s_slot = int(primary[s])
        lv = level2[i]
        sg = sigma2[i]
        lv[s_slot] = 0
        sg[s_slot] = 1.0
        sync_levels(lv)
        merge_positive_mean(sg, lv)
        f = np.nonzero(lv == 0)[0].astype(np.int64)
        frontiers[i] = f
        fronts[i].append(f)
        if sched is not None:  # only decide() reads unexplored_edges
            unexplored[i] = m - int((offsets[f + 1] - offsets[f]).sum())
    lane_depth = np.zeros(num_lanes, dtype=np.int64)
    active = list(range(num_lanes))
    depth = 0
    # forward per-level expansions kept for backward reuse (sched=None)
    level_exps: dict[int, tuple] = {}
    obs_metrics.counter("perf.batched.runs").inc()
    obs_metrics.counter("perf.batched.lanes").inc(num_lanes)

    # ---- forward pass: all lanes' BFS DAGs + path counts ---------------
    with obs_trace.span(
        "perf.batched.bc", lanes=num_lanes, technique=plan.technique
    ):
        while active:
            decisions = {}
            for i in active:
                decision = None
                if sched is not None:
                    f = frontiers[i]
                    decision = sched.decide(
                        frontier_size=int(f.size),
                        frontier_edges=int((offsets[f + 1] - offsets[f]).sum()),
                        num_nodes=n,
                        num_edges=m,
                        unexplored_edges=int(unexplored[i]),
                        prev=prev[i],
                    )
                    prev[i] = decision
                decisions[i] = decision
            pull_lanes = [
                i
                for i in active
                if decisions[i] is not None and decisions[i].direction == "pull"
            ]
            push_lanes = [i for i in active if i not in pull_lanes]
            fresh_lane: dict[int, np.ndarray] = {}
            for i in pull_lanes:
                pv, rind = _pull_arrays()
                lv = level2[i]
                sg = sigma2[i]
                candidates = np.nonzero(lv < 0)[0].astype(np.int64)
                rexp = expand_frontier(pv.rev.offsets, rind, candidates)
                ledger.add(
                    i,
                    lane_sweep_cost(
                        ctx,
                        candidates,
                        subgraph=pv.rev,
                        expansion=rexp,
                        partition=decisions[i].partition,
                    ),
                )
                sel = lv[rexp.e_dst] == depth
                order = np.argsort(pv.fwd_eid[rexp.epos[sel]])
                e_src = rexp.e_dst[sel][order]
                e_dst = rexp.e_src[sel][order]
                fresh = lv[e_dst] < 0
                fresh_dst = e_dst[fresh]
                if fresh_dst.size:
                    lv[fresh_dst] = depth + 1
                onward = lv[e_dst] == depth + 1
                if onward.any():
                    np.add.at(sg, e_dst[onward], sg[e_src[onward]])
                fresh_lane[i] = fresh_dst
            if push_lanes:
                lx = expand_lanes(
                    offsets, indices, [frontiers[i] for i in push_lanes]
                )
                row_off = np.repeat(
                    np.asarray(push_lanes, dtype=np.int64) * n,
                    np.diff(lx.rec_bounds),
                )
                flat_src = lx.e_src + row_off
                flat_dst = lx.e_dst + row_off
                if sched is None:
                    # the backward pass walks these exact frontiers with
                    # the same lane sets (no schedule: every lane pushes
                    # both ways), so the expansion and its flat indices
                    # are reusable verbatim — see the level_exps lookup
                    level_exps[depth] = (push_lanes, lx, flat_src, flat_dst)
                fresh = level_flat[flat_dst] < 0
                fdst = flat_dst[fresh]
                if fdst.size:
                    level_flat[fdst] = depth + 1
                onward = level_flat[flat_dst] == depth + 1
                if onward.any():
                    np.add.at(
                        sigma_flat, flat_dst[onward], sigma_flat[flat_src[onward]]
                    )
                charge_lane_level(
                    ctx,
                    ledger,
                    push_lanes,
                    lx.sweeps,
                    [decisions[i] for i in push_lanes],
                )
                # per-lane fresh record counts (gate input), and one flat
                # dedup shared by every gate-passing lane: fdst is
                # lane-tagged, so one sort covers what the looped engine
                # dedups once per source
                fc = np.concatenate(([0], np.cumsum(fresh, dtype=np.int64)))
                fresh_cnt = fc[lx.rec_bounds[1:]] - fc[lx.rec_bounds[:-1]]
                push_pos = {i: pos for pos, i in enumerate(push_lanes)}
                uf = uf_lo = uf_hi = None
                if num_groups == 0 and bool((fresh_cnt * 4 < n).any()):
                    uf = np.unique(fdst)
                    lanes_arr = np.asarray(push_lanes, dtype=np.int64)
                    uf_lo = np.searchsorted(uf, lanes_arr * n)
                    uf_hi = np.searchsorted(uf, (lanes_arr + 1) * n)
            still = []
            for i in active:
                lv = level2[i]
                sync_levels(lv)
                merge_positive_mean(sigma2[i], lv)
                if i in fresh_lane:  # pull lane: per-lane fresh dsts
                    fd = fresh_lane[i]
                    if num_groups == 0 and fd.size * 4 < n:
                        f = np.unique(fd)
                    else:
                        f = np.nonzero(lv == depth + 1)[0].astype(np.int64)
                else:
                    pos = push_pos[i]
                    if uf is not None and int(fresh_cnt[pos]) * 4 < n:
                        f = uf[uf_lo[pos] : uf_hi[pos]] - i * n
                    else:
                        f = np.nonzero(lv == depth + 1)[0].astype(np.int64)
                fronts[i].append(f)
                frontiers[i] = f
                if sched is not None:
                    unexplored[i] -= int((offsets[f + 1] - offsets[f]).sum())
                lane_depth[i] = depth + 1
                if f.size:
                    still.append(i)
            active = still
            depth += 1
        ledger.flush(ctx)

        # ---- backward pass: dependency accumulation --------------------
        # one global descending level counter; a lane of depth k joins at
        # d = k - 1, so its per-level decide/charge/scatter sequence is
        # exactly its looped run's
        delta2 = np.zeros((num_lanes, n))
        delta_flat = delta2.reshape(-1)
        max_depth = int(lane_depth.max()) if num_lanes else 0
        for d in range(max_depth - 1, -1, -1):
            lanes_here = [
                i
                for i in range(num_lanes)
                if d < lane_depth[i] and fronts[i][d].size
            ]
            decisions = {}
            for i in lanes_here:
                decision = None
                if sched is not None:
                    members = fronts[i][d]
                    decision = sched.decide(
                        frontier_size=int(members.size),
                        frontier_edges=int(
                            (offsets[members + 1] - offsets[members]).sum()
                        ),
                        num_nodes=n,
                        num_edges=m,
                        prev=prev[i],
                    )
                    prev[i] = decision
                decisions[i] = decision
            pull_lanes = [
                i
                for i in lanes_here
                if decisions[i] is not None and decisions[i].direction == "pull"
            ]
            push_lanes = [i for i in lanes_here if i not in pull_lanes]
            for i in pull_lanes:
                lv = level2[i]
                sg = sigma2[i]
                dl = delta2[i]
                nexts = fronts[i][d + 1]
                if nexts.size:
                    pv, rind = _pull_arrays()
                    rexp = expand_frontier(pv.rev.offsets, rind, nexts)
                    ledger.add(
                        i,
                        lane_sweep_cost(
                            ctx,
                            nexts,
                            subgraph=pv.rev,
                            expansion=rexp,
                            partition=decisions[i].partition,
                        ),
                    )
                    keep = (lv[rexp.e_dst] == d) & (sg[rexp.e_src] > 0)
                    order = np.argsort(pv.fwd_eid[rexp.epos[keep]])
                    e_src = rexp.e_dst[keep][order]
                    e_dst = rexp.e_src[keep][order]
                else:
                    e_src = e_dst = np.empty(0, dtype=np.int64)
                if e_src.size:
                    contrib = sg[e_src] / sg[e_dst] * (1.0 + dl[e_dst])
                    np.add.at(dl, e_src, contrib)
                merge_delta(dl, lv)
            if push_lanes:
                # the stacked expansion of each lane's recorded level-d
                # frontier *is* its LevelBuckets bucket: every out-edge of
                # a level-d node is a level-d edge, in ascending edge order
                cached = level_exps.pop(d, None)
                if cached is not None and cached[0] == push_lanes:
                    _, bx, flat_src, flat_dst = cached
                else:
                    bx = expand_lanes(
                        offsets, indices, [fronts[i][d] for i in push_lanes]
                    )
                    row_off = np.repeat(
                        np.asarray(push_lanes, dtype=np.int64) * n,
                        np.diff(bx.rec_bounds),
                    )
                    flat_src = bx.e_src + row_off
                    flat_dst = bx.e_dst + row_off
                charge_lane_level(
                    ctx,
                    ledger,
                    push_lanes,
                    bx.sweeps,
                    [decisions[i] for i in push_lanes],
                )
                keep = (level_flat[flat_dst] == d + 1) & (
                    sigma_flat[flat_dst] > 0
                )
                ks = flat_src[keep]
                kd = flat_dst[keep]
                if ks.size:
                    contrib = (
                        sigma_flat[ks] / sigma_flat[kd]
                        * (1.0 + delta_flat[kd])
                    )
                    np.add.at(delta_flat, ks, contrib)
                for i in push_lanes:
                    merge_delta(delta2[i], level2[i])

    # per-lane charge attribution, then the total ledger replayed source
    # by source — accumulated metrics and solve.* counters match the
    # looped engine bit for bit
    ledger.flush(ctx)
    lane_metrics = ledger.lane_metrics(runner.device)
    bc = np.zeros(n)
    for i, s in enumerate(sources):
        delta2[i][int(primary[s])] = 0.0
        visited = level2[i] >= 0
        bc[visited] += delta2[i][visited]
    ledger.replay(ctx)
    values = plan.lower(bc)
    return AlgorithmResult(
        values=values,
        metrics=runner.metrics,
        iterations=int(lane_depth.sum()),
        aux={
            "sources": sources,
            "engine": "batched",
            "per_source_metrics": lane_metrics,
            "per_source_iterations": [int(k) for k in lane_depth],
            "per_source_sweeps": [len(c) for c in ledger.costs],
        },
    )
