"""Breadth-first search (level assignment) on the simulated GPU.

BFS is the substrate of half the paper: the renumbering builds BFS
forests, BC's forward pass is a BFS, and SCC's reachability queries are
BFSes.  Exposing it as a first-class algorithm lets users (and the
reorder-comparison benches) measure traversal cost directly.

Two kernel styles, matching the baselines:

* ``bfs``          — level-synchronous, frontier-charged (Gunrock-style);
* ``topology_driven=True`` — every sweep touches all nodes (Baseline-I).

On a Graffix plan, replica groups are level-synced exactly as in BC
(copies are one logical node), so the reported levels are comparable with
the exact run; added 2-hop edges can shorten hop distances — that is the
measured approximation.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.edgeshare import shared_pull_view
from ..perf.gather import expand_frontier
from ..perf.schedule import schedule_for
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["bfs"]


def bfs(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    topology_driven: bool = False,
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
) -> AlgorithmResult:
    """BFS levels from ``source`` (original node id); -1 if unreachable.

    ``schedule`` (a :class:`~repro.perf.schedule.Schedule` or spec
    string) picks per-level execution: push expands the frontier's
    out-edges, pull gathers each unvisited node's in-edges from the
    shared reverse view — the direction-optimizing sweet spot once
    frontiers densify.  Levels are schedule-invariant (both directions
    assign ``depth+1`` to exactly the unvisited nodes with a
    depth-``depth`` in-neighbor).  Only the frontier-driven kernel is
    schedulable; the topology-driven baseline deliberately charges
    every node every sweep.
    """
    sched = schedule_for(schedule)
    if sched is not None and topology_driven:
        raise AlgorithmError(
            "schedules apply to the frontier-driven bfs kernel only"
        )
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(f"source {source} out of range")
    runner = (runner_factory or Runner)(plan, device)
    graph = plan.graph
    n = graph.num_nodes
    m = graph.num_edges
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)
    pull_view = None
    rev_indices = None

    if plan.graffix is not None:
        primary = plan.graffix.primary_slot
        g_slots, g_gids, g_sizes = plan.graffix.replica_groups()
    else:
        primary = np.arange(plan.num_original, dtype=np.int64)
        g_slots = g_gids = g_sizes = np.empty(0, dtype=np.int64)
    num_groups = int(g_sizes.size)

    level = np.full(n, -1, dtype=np.int64)
    level[int(primary[source])] = 0
    depth = 0

    def sync_groups() -> None:
        if num_groups == 0:
            return
        lv = level[g_slots].astype(np.float64)
        lv[lv < 0] = np.inf
        gmin = np.full(num_groups, np.inf)
        np.minimum.at(gmin, g_gids, lv)
        reached = np.isfinite(gmin)
        members = reached[g_gids] & (level[g_slots] < 0)
        level[g_slots[members]] = gmin[g_gids[members]].astype(np.int64)

    sync_groups()
    frontier = np.nonzero(level == 0)[0].astype(np.int64)
    prev = None
    # Beamer's m_u: out-edges of still-unexplored nodes, maintained
    # incrementally so the α switch test is O(frontier) per level
    unexplored = m - int((offsets[frontier + 1] - offsets[frontier]).sum())

    while frontier.size:
        decision = None
        if sched is not None:
            decision = sched.decide(
                frontier_size=int(frontier.size),
                frontier_edges=int(
                    (offsets[frontier + 1] - offsets[frontier]).sum()
                ),
                num_nodes=n,
                num_edges=m,
                unexplored_edges=unexplored,
                prev=prev,
            )
            prev = decision
        if decision is not None and decision.direction == "pull":
            # bottom-up: every unvisited node checks its in-neighbors
            if pull_view is None:
                pull_view = shared_pull_view(graph)
                rev_indices = pull_view.rev.indices.astype(np.int64)
            candidates = np.nonzero(level < 0)[0].astype(np.int64)
            rexp = expand_frontier(
                pull_view.rev.offsets, rev_indices, candidates
            )
            runner.ctx.charge(
                candidates,
                subgraph=pull_view.rev,
                expansion=rexp,
                partition=decision.partition,
            )
            # rexp.e_src = the gathering candidate, rexp.e_dst = its
            # forward in-neighbor; a hit is an in-neighbor on the
            # current level — the same (unvisited, in-neighbor@depth)
            # set the push direction assigns, so levels are identical
            newly = np.unique(rexp.e_src[level[rexp.e_dst] == depth])
            if newly.size:
                level[newly] = depth + 1
        else:
            exp = expand_frontier(offsets, indices, frontier)
            if topology_driven:
                runner.ctx.charge(None)
            else:
                runner.ctx.charge(
                    frontier,
                    expansion=exp,
                    partition="vertex" if decision is None else decision.partition,
                )
            newly = None
            dst = exp.e_dst
            if dst.size:
                fresh = dst[level[dst] < 0]
                if fresh.size:
                    level[fresh] = depth + 1
                    newly = fresh
        sync_groups()
        if (
            decision is not None
            and decision.frontier == "sparse"
            and num_groups == 0
        ):
            # index-array frontier from the freshly assigned ids; with
            # replica groups the sync can level extra slots, so the
            # dense rescan is the only faithful representation there
            frontier = (
                np.unique(newly) if newly is not None else np.empty(0, np.int64)
            )
        else:
            frontier = np.nonzero(level == depth + 1)[0].astype(np.int64)
        depth += 1
        unexplored -= int((offsets[frontier + 1] - offsets[frontier]).sum())

    if plan.graffix is not None:
        values = level[primary].astype(np.float64)
    else:
        values = level.astype(np.float64)
    values[values < 0] = np.inf  # unify the unreachable sentinel
    return AlgorithmResult(
        values=values, metrics=runner.metrics, iterations=depth
    )
