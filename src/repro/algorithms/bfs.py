"""Breadth-first search (level assignment) on the simulated GPU.

BFS is the substrate of half the paper: the renumbering builds BFS
forests, BC's forward pass is a BFS, and SCC's reachability queries are
BFSes.  Exposing it as a first-class algorithm lets users (and the
reorder-comparison benches) measure traversal cost directly.

Two kernel styles, matching the baselines:

* ``bfs``          — level-synchronous, frontier-charged (Gunrock-style);
* ``topology_driven=True`` — every sweep touches all nodes (Baseline-I).

On a Graffix plan, replica groups are level-synced exactly as in BC
(copies are one logical node), so the reported levels are comparable with
the exact run; added 2-hop edges can shorten hop distances — that is the
measured approximation.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.gather import expand_frontier
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["bfs"]


def bfs(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    topology_driven: bool = False,
    device: DeviceConfig = K40C,
    runner_factory=None,
) -> AlgorithmResult:
    """BFS levels from ``source`` (original node id); -1 if unreachable."""
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(f"source {source} out of range")
    runner = (runner_factory or Runner)(plan, device)
    graph = plan.graph
    n = graph.num_nodes
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)

    if plan.graffix is not None:
        primary = plan.graffix.primary_slot
        g_slots, g_gids, g_sizes = plan.graffix.replica_groups()
    else:
        primary = np.arange(plan.num_original, dtype=np.int64)
        g_slots = g_gids = g_sizes = np.empty(0, dtype=np.int64)
    num_groups = int(g_sizes.size)

    level = np.full(n, -1, dtype=np.int64)
    level[int(primary[source])] = 0
    depth = 0

    def sync_groups() -> None:
        if num_groups == 0:
            return
        lv = level[g_slots].astype(np.float64)
        lv[lv < 0] = np.inf
        gmin = np.full(num_groups, np.inf)
        np.minimum.at(gmin, g_gids, lv)
        reached = np.isfinite(gmin)
        members = reached[g_gids] & (level[g_slots] < 0)
        level[g_slots[members]] = gmin[g_gids[members]].astype(np.int64)

    sync_groups()
    frontier = np.nonzero(level == 0)[0].astype(np.int64)

    while frontier.size:
        exp = expand_frontier(offsets, indices, frontier)
        if topology_driven:
            runner.ctx.charge(None)
        else:
            runner.ctx.charge(frontier, expansion=exp)
        dst = exp.e_dst
        if dst.size:
            fresh = dst[level[dst] < 0]
            if fresh.size:
                level[fresh] = depth + 1
        sync_groups()
        frontier = np.nonzero(level == depth + 1)[0].astype(np.int64)
        depth += 1

    if plan.graffix is not None:
        values = level[primary].astype(np.float64)
    else:
        values = level.astype(np.float64)
    values[values < 0] = np.inf  # unify the unreachable sentinel
    values = np.where(np.isfinite(values), values, np.inf)
    return AlgorithmResult(
        values=values, metrics=runner.metrics, iterations=depth
    )
