"""Shared machinery for vertex-centric algorithms on the simulator.

Every algorithm is expressed as a sequence of *sweeps*: honest vectorized
value updates over the plan's graph, each accompanied by a
:meth:`~repro.gpusim.kernel.ExecutionContext.charge` call so the cost
model accounts what the sweep would cost on the modeled GPU.  The
:class:`Runner` centralizes the three Graffix-specific behaviours so the
algorithms stay oblivious to which transform is active:

* **confluence** — replica groups are merged after every sweep (§2.4);
* **cluster iterations** — when a shared-memory plan is active, each
  global sweep is followed by ``t`` local sweeps over the intra-cluster
  edge set, charged at shared-memory rates (§3);
* **processing order** — warp formation follows the plan's order (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.confluence import merge_replicas
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.kernel import ExecutionContext
from ..gpusim.metrics import SimMetrics
from ..perf.edgeshare import EdgeView, PullEdgeView, shared_edge_view, shared_pull_view
from ..perf.schedule import Schedule, SweepDecision, schedule_for

__all__ = ["AlgorithmResult", "Runner", "EdgeView", "plan_for", "MAX_ITERATIONS"]

#: safety valve for fixed-point loops (approximation can in principle
#: oscillate under mean-confluence; real deployments bound iterations too)
MAX_ITERATIONS = 10_000


@dataclass
class AlgorithmResult:
    """Values + cost of one simulated algorithm execution.

    ``values`` is in *original* node space (the runner lowers slot-space
    results); ``aux`` carries algorithm-specific extras (e.g. SCC labels,
    MST edge list).
    """

    values: np.ndarray
    metrics: SimMetrics
    iterations: int
    aux: dict[str, object] | None = None

    @property
    def cycles(self) -> float:
        return self.metrics.cycles

    @property
    def seconds(self) -> float:
        return self.metrics.seconds


def plan_for(graph_or_plan: CSRGraph | ExecutionPlan) -> ExecutionPlan:
    """Coerce a raw graph into an exact (identity) execution plan."""
    if isinstance(graph_or_plan, ExecutionPlan):
        return graph_or_plan
    return ExecutionPlan(
        technique="exact", graph=graph_or_plan, num_original=graph_or_plan.num_nodes
    )


class Runner:
    """Drives sweeps over an :class:`ExecutionPlan` with cost accounting."""

    def __init__(self, plan: ExecutionPlan, device: DeviceConfig = K40C) -> None:
        self.plan = plan
        self.device = device
        self.ctx = ExecutionContext(
            plan.graph,
            device,
            order=plan.order,
            resident_mask=plan.resident_mask,
        )
        # flat edge arrays are shared across Runners on the same graph
        # (a harness sweep builds one Runner per algorithm × source)
        self.edges = shared_edge_view(plan.graph)
        self.cluster_edges = (
            shared_edge_view(plan.cluster_graph)
            if plan.cluster_graph is not None
            else None
        )
        if plan.resident_mask is not None:
            self._resident_nodes = np.nonzero(plan.resident_mask)[0].astype(np.int64)
        else:
            self._resident_nodes = np.empty(0, dtype=np.int64)
        # schedule layer (repro.perf.schedule): installed post-construction
        # via use_schedule() so Runner subclasses keep their signatures
        self.schedule: Schedule | None = None
        self._sched_prev: SweepDecision | None = None
        self._pull: PullEdgeView | None = None

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> SimMetrics:
        return self.ctx.metrics

    def use_schedule(self, schedule) -> "Runner":
        """Install a sweep schedule (name, :class:`Schedule`, or ``None``).

        ``None`` keeps the historical always-push behaviour.  Installing
        resets the hysteresis state, so a reused runner starts each
        solve from the policy's initial direction.  Returns ``self`` for
        chaining (``Runner(plan).use_schedule("pull")``).
        """
        self.schedule = schedule_for(schedule)
        self._sched_prev = None
        return self

    def _pull_edges(self) -> PullEdgeView:
        """The (shared) reverse view for pull-directed sweeps."""
        if self._pull is None:
            self._pull = shared_pull_view(self.plan.graph)
        return self._pull

    def _decide(self, active: np.ndarray | None) -> SweepDecision | None:
        """Consult the schedule for one sweep; ``None`` when unscheduled.

        Frontier stats come from the plan graph's forward CSR: a sweep
        over ``active`` touches the frontier's out-edges whichever
        direction executes it.  The previous decision is threaded
        through per-runner, so one shared :class:`Schedule` instance can
        drive concurrent runners (its ``decide`` is pure).
        """
        sched = self.schedule
        if sched is None:
            return None
        g = self.plan.graph
        if active is None:
            size, fedges = g.num_nodes, g.num_edges
        else:
            ids = np.asarray(active)
            if ids.dtype == bool:
                ids = np.nonzero(ids)[0]
            size = int(ids.size)
            fedges = (
                int((g.offsets[ids + 1] - g.offsets[ids]).sum()) if size else 0
            )
        decision = sched.decide(
            frontier_size=size,
            frontier_edges=fedges,
            num_nodes=g.num_nodes,
            num_edges=g.num_edges,
            prev=self._sched_prev,
        )
        self._sched_prev = decision
        return decision

    def keep_iterating(self, delta: float, tol: float) -> bool:
        """Whether a residual-driven loop (PageRank-style) should continue.

        The seam the adaptive controller (:mod:`repro.tune`) overrides
        to loosen the effective tolerance under its error budget; the
        base runner preserves the historical ``delta > tol`` check
        bit-for-bit.
        """
        return bool(delta > tol)

    def confluence(self, values: np.ndarray, operator: str | None = None) -> None:
        """Merge replica values (no-op for plans without replicas)."""
        if self.plan.graffix is not None:
            op = operator or self.plan.confluence_operator
            with obs_trace.span(
                "solve.confluence",
                operator=op,
                replicas=self.plan.graffix.num_replicas,
            ):
                merge_replicas(values, self.plan.graffix, op)
            obs_metrics.counter("solve.confluence_merges").inc()

    def sweep(
        self,
        values: np.ndarray,
        relax: Callable[[EdgeView, np.ndarray], bool],
        *,
        active: np.ndarray | None = None,
        merge: bool = True,
    ) -> bool:
        """One global kernel sweep: charge, relax, confluence.

        ``relax`` mutates ``values`` in place over the given edge view and
        returns whether anything changed.  ``active`` (mask or id array)
        restricts the charged workload to a frontier; the relax callback
        is responsible for restricting its own work accordingly.

        When a schedule is installed (:meth:`use_schedule`) and it picks
        ``direction="pull"``, the relax callback receives the
        :class:`~repro.perf.edgeshare.PullEdgeView` instead — the same
        edge multiset in destination-major order — and the charge runs
        over the reverse CSR, so the ledger reflects the gather a
        bottom-up kernel performs.  Order-insensitive relaxations
        (scatter-min, per-destination sums) produce byte-identical
        values either way; that equivalence is what
        ``tests/test_perf_schedule.py`` pins.
        """
        decision = self._decide(active)
        if decision is None or decision.direction == "push":
            partition = "vertex" if decision is None else decision.partition
            self.ctx.charge(active, partition=partition)
            changed = relax(self.edges, values)
        else:
            pv = self._pull_edges()
            if active is None:
                self.ctx.charge(
                    None,
                    subgraph=pv.rev,
                    expansion=pv.full_expansion(),
                    partition=decision.partition,
                )
            else:
                self.ctx.charge(
                    active, subgraph=pv.rev, partition=decision.partition
                )
            changed = relax(pv, values)
        if merge:
            self.confluence(values)
        return changed

    def cluster_rounds(
        self,
        values: np.ndarray,
        relax: Callable[[EdgeView, np.ndarray], bool],
    ) -> bool:
        """The §3 local iterations over pinned clusters (if any)."""
        if not self.plan.has_clusters or self.cluster_edges is None:
            return False
        with obs_trace.span(
            "solve.cluster_rounds", local_iterations=self.plan.local_iterations
        ):
            return self._cluster_rounds(values, relax)

    def _cluster_rounds(
        self,
        values: np.ndarray,
        relax: Callable[[EdgeView, np.ndarray], bool],
    ) -> bool:
        changed_any = False
        for _ in range(self.plan.local_iterations):
            self.ctx.charge(
                self._resident_nodes,
                all_shared=True,
                subgraph=self.plan.cluster_graph,
            )
            changed = relax(self.cluster_edges, values)
            self.confluence(values)
            changed_any |= changed
            if not changed:
                break
        return changed_any

    def fixed_point(
        self,
        values: np.ndarray,
        relax: Callable[[EdgeView, np.ndarray], bool],
        *,
        max_iterations: int = MAX_ITERATIONS,
        improvement_atol: float = 0.5,
        improvement_rtol: float = 0.1,
    ) -> int:
        """Iterate global sweep + cluster rounds until convergence.

        Returns the number of global sweeps executed.

        For exact plans (no replicas) convergence is bit-exact: stop when
        a sweep changes nothing — monotone relaxations terminate
        precisely.  The loop trusts the relax callback's returned changed
        flag (the :meth:`sweep` contract), so no per-iteration snapshot
        of the value array is taken; a relax that under-reports change
        would terminate early.

        For plans with replicas, a naive snapshot comparison never
        settles: mean-confluence raises a replica copy each merge, the
        next relax lowers it back, and the gap shrinks only geometrically
        (the copies chase each other forever).  The GPU host loop does not
        see that churn — its ``changed`` flag is set by ``atomicMin``
        improvements, and re-descending toward a value the slot has
        already held is not new work.  We reproduce that by tracking a
        monotone lower envelope (the best value each slot has ever held):
        the loop stops once no slot improves below its envelope by more
        than ``improvement_atol``.  The mean-merge drift left in ``values``
        at that point is exactly the approximation error the paper's
        inaccuracy metric measures.  An improvement only counts when it
        exceeds ``improvement_atol + improvement_rtol * |envelope|`` — the
        epsilon-convergence every float32 GPU kernel applies; the default
        ``improvement_atol`` of 0.5 is half the weight granularity of the
        integer-weighted input suite, and ``improvement_rtol`` of 10 % is
        the convergence epsilon (it bounds, and largely determines, the
        residual drift the inaccuracy metric reports).  Pass zeros to
        demand strict improvement.
        """
        if max_iterations < 1:
            raise AlgorithmError("max_iterations must be >= 1")
        with obs_trace.span(
            "solve.fixed_point",
            technique=self.plan.technique,
            approximate=self.plan.has_replicas,
        ) as sp:
            iterations = self._fixed_point(
                values,
                relax,
                max_iterations=max_iterations,
                improvement_atol=improvement_atol,
                improvement_rtol=improvement_rtol,
            )
        if sp is not None:
            sp.set(
                iterations=iterations,
                sim_cycles=self.metrics.cycles,
                num_sweeps=self.metrics.num_sweeps,
            )
        return iterations

    def _fixed_point(
        self,
        values: np.ndarray,
        relax: Callable[[EdgeView, np.ndarray], bool],
        *,
        max_iterations: int,
        improvement_atol: float,
        improvement_rtol: float,
    ) -> int:
        approximate = self.plan.has_replicas
        envelope = values.copy() if approximate else None
        iterations = 0
        while iterations < max_iterations:
            iterations += 1
            changed = self.sweep(values, relax, merge=False)
            if approximate:
                assert envelope is not None
                margin = improvement_atol + improvement_rtol * np.where(
                    np.isfinite(envelope), np.abs(envelope), 0.0
                )
                improved = values < envelope - margin
                np.minimum(envelope, values, out=envelope)
                self.confluence(values)
                np.minimum(envelope, values, out=envelope)
                if not improved.any():
                    break
            elif not changed:
                # exact plans trust the relax callback's changed flag —
                # no full-array snapshot/compare per iteration (monotone
                # relaxations report change exactly)
                break
            self.cluster_rounds(values, relax)
        return iterations
