"""Independent exact reference implementations (scipy / networkx).

These never touch the simulator; the tests use them to certify that the
simulated kernels compute correct values on untransformed graphs, and the
evaluation harness uses them as the ground truth for the inaccuracy
metrics (equivalently it could use the exact baseline runs — both paths
are tested to agree).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from ..graphs.builder import to_networkx, to_scipy
from ..graphs.csr import CSRGraph

__all__ = [
    "exact_sssp",
    "exact_pagerank",
    "exact_bc",
    "exact_scc_count",
    "exact_msf_weight",
]


def exact_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra distances from ``source`` (scipy); ``inf`` if unreachable."""
    mat = to_scipy(graph)
    return csgraph.dijkstra(mat, directed=True, indices=source)


def exact_pagerank(
    graph: CSRGraph, *, damping: float = 0.85, tol: float = 1e-12, max_iter: int = 500
) -> np.ndarray:
    """Power-iteration PageRank with uniform dangling redistribution."""
    n = graph.num_nodes
    mat = to_scipy(graph)
    mat.data[:] = 1.0  # PR uses the unweighted structure
    out_deg = np.asarray(mat.sum(axis=1)).ravel()
    inv = np.zeros(n)
    nz = out_deg > 0
    inv[nz] = 1.0 / out_deg[nz]
    # column-stochastic transition on the transpose for push semantics
    mt = mat.T.tocsr()
    pr = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        dangling = damping * pr[~nz].sum() / n
        new = teleport + dangling + damping * (mt @ (pr * inv))
        if np.abs(new - pr).sum() < tol:
            pr = new
            break
        pr = new
    return pr


def exact_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Brandes BC restricted to the given source sample (pure python).

    Uses networkx's single-source shortest-path machinery per source so it
    is implementation-independent from the simulated kernels.
    """
    g = to_networkx(graph)
    n = graph.num_nodes
    bc = np.zeros(n)
    for s in np.asarray(sources, dtype=np.int64).tolist():
        # unweighted Brandes accumulation from this source
        S: list[int] = []
        pred: dict[int, list[int]] = {v: [] for v in g}
        sigma = dict.fromkeys(g, 0.0)
        dist = dict.fromkeys(g, -1)
        sigma[s] = 1.0
        dist[s] = 0
        queue = [s]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            S.append(v)
            for w_ in g.successors(v):
                if dist[w_] < 0:
                    dist[w_] = dist[v] + 1
                    queue.append(w_)
                if dist[w_] == dist[v] + 1:
                    sigma[w_] += sigma[v]
                    pred[w_].append(v)
        delta = dict.fromkeys(g, 0.0)
        while S:
            w_ = S.pop()
            for v in pred[w_]:
                delta[v] += sigma[v] / sigma[w_] * (1.0 + delta[w_])
            if w_ != s:
                bc[w_] += delta[w_]
    return bc


def exact_scc_count(graph: CSRGraph) -> int:
    """Number of strongly connected components (scipy Tarjan)."""
    mat = to_scipy(graph)
    count, _labels = csgraph.connected_components(
        mat, directed=True, connection="strong"
    )
    return int(count)


def exact_msf_weight(graph: CSRGraph) -> float:
    """Minimum spanning forest weight on the symmetrized min-weight view."""
    src = graph.edge_sources().astype(np.int64)
    dst = graph.indices.astype(np.int64)
    w = graph.effective_weights()
    keep = src != dst
    src, dst, w = src[keep], dst[keep], w[keep]
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * graph.num_nodes + hi
    order = np.lexsort((w, key))
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    lo, hi, w = lo[first], hi[first], w[first]
    n = graph.num_nodes
    mat = sp.csr_matrix((w, (lo, hi)), shape=(n, n))
    tree = csgraph.minimum_spanning_tree(mat)
    return float(tree.sum())
