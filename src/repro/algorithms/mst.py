"""Minimum spanning tree/forest — Borůvka's algorithm, vertex-centric.

Borůvka is the classic GPU MST formulation (LonestarGPU's ``mst``, Nobari
et al.): every round, each component selects its minimum-weight outgoing
edge, the selected edges join the forest, and components merge — all
component-parallel, which maps directly onto warp execution.  Each round
is one charged sweep.

The graph is treated as undirected for MST purposes (edge ``u -> v`` is
traversable both ways at the same weight; duplicate directions keep the
minimum weight).  On a Graffix-transformed plan, replicas are pre-merged
into their original's component via zero-weight *alias* edges — a replica
is logically the same node, so keeping copies in one component is the
structural analogue of confluence.  The paper's MST inaccuracy metric is
the relative difference of forest weights.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["mst", "minimum_spanning_forest_weight"]


def _undirected_min_edges(
    graph: CSRGraph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Symmetrized (u, v, w) with u < v and the minimum weight per pair."""
    src = graph.edge_sources().astype(np.int64)
    dst = graph.indices.astype(np.int64)
    w = graph.effective_weights()
    keep = src != dst
    src, dst, w = src[keep], dst[keep], w[keep]
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo * graph.num_nodes + hi
    order = np.lexsort((w, key))
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    return lo[first], hi[first], w[first]


def _find(parent: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Vectorized root lookup with full path compression."""
    roots = nodes.copy()
    while True:
        grand = parent[roots]
        done = grand == roots
        if done.all():
            break
        roots = grand
    return roots


def mst(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Minimum spanning forest.

    ``values[v]`` is the component label of node ``v`` in the final
    forest; ``aux`` carries ``weight`` (total forest weight — the paper's
    compared attribute), ``edges`` (the chosen (u, v, w) triples in
    original node space when untransformed, slot space otherwise) and
    ``rounds``.
    """
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device)
    graph = plan.graph
    n = graph.num_nodes

    u, v, w = _undirected_min_edges(graph)

    # alias edges: replicas must live in their original's component
    if plan.graffix is not None:
        slots, gids, _sizes = plan.graffix.replica_groups()
        if slots.size:
            # connect each group member to the group's first slot at weight 0
            firsts = np.zeros(int(gids.max()) + 1, dtype=np.int64)
            seen = np.zeros(int(gids.max()) + 1, dtype=bool)
            for slot, g in zip(slots, gids):
                if not seen[g]:
                    firsts[g] = slot
                    seen[g] = True
            extra_u = np.minimum(slots, firsts[gids])
            extra_v = np.maximum(slots, firsts[gids])
            nz = extra_u != extra_v
            u = np.concatenate([u, extra_u[nz]])
            v = np.concatenate([v, extra_v[nz]])
            w = np.concatenate([w, np.zeros(int(nz.sum()))])

    parent = np.arange(n, dtype=np.int64)
    chosen: list[int] = []
    total_weight = 0.0
    rounds = 0
    alive = np.ones(u.size, dtype=bool)
    max_rounds = max(1, int(np.ceil(np.log2(max(n, 2)))) + 2)

    while rounds < max_rounds + n:  # n guard is unreachable in practice
        rounds += 1
        runner.ctx.charge(None)
        ru = _find(parent, u[alive])
        rv = _find(parent, v[alive])
        cross = ru != rv
        if not cross.any():
            break
        idx_alive = np.nonzero(alive)[0]
        keep_idx = idx_alive[cross]
        ru, rv = ru[cross], rv[cross]
        ws = w[keep_idx]
        # per-component minimum outgoing edge (deterministic tie-break by
        # edge index, which also prevents the classic Boruvka cycle issue
        # with equal weights)
        comp_keys = np.concatenate([ru, rv])
        edge_ids = np.concatenate([keep_idx, keep_idx])
        weights2 = np.concatenate([ws, ws])
        order = np.lexsort((edge_ids, weights2, comp_keys))
        ck = comp_keys[order]
        first = np.ones(ck.size, dtype=bool)
        first[1:] = ck[1:] != ck[:-1]
        winners = np.unique(edge_ids[order[first]])
        for e in winners:
            a = int(_find(parent, np.array([u[e]]))[0])
            b = int(_find(parent, np.array([v[e]]))[0])
            if a == b:
                continue
            parent[max(a, b)] = min(a, b)
            chosen.append(int(e))
            total_weight += float(w[e])
        # retire intra-component edges
        ru2 = _find(parent, u[alive])
        rv2 = _find(parent, v[alive])
        alive_idx = np.nonzero(alive)[0]
        alive[alive_idx[ru2 == rv2]] = False

    labels = _find(parent, np.arange(n, dtype=np.int64))
    values = plan.lower(labels.astype(np.float64))
    edges_out = np.asarray(
        [(int(u[e]), int(v[e]), float(w[e])) for e in chosen], dtype=np.float64
    ).reshape(-1, 3)
    return AlgorithmResult(
        values=values,
        metrics=runner.metrics,
        iterations=rounds,
        aux={"weight": total_weight, "edges": edges_out, "rounds": rounds},
    )


def minimum_spanning_forest_weight(
    graph_or_plan: CSRGraph | ExecutionPlan, *, device: DeviceConfig = K40C
) -> float:
    """Convenience: just the forest weight (the compared attribute)."""
    result = mst(graph_or_plan, device=device)
    assert result.aux is not None
    return float(result.aux["weight"])
