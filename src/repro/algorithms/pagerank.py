"""PageRank (push-style power iteration, vertex-centric).

Each sweep pushes ``d * pr[u] / outdeg(u)`` along every edge and adds the
teleport term; dangling mass (nodes with no outgoing edges — including
unfilled Graffix holes) is redistributed uniformly over the *occupied*
nodes, so holes never receive or emit rank.

Convergence is by L1 delta, as the standard GPU implementations do; the
result attribute is the per-node rank the paper's PR inaccuracy compares.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["pagerank"]


def pagerank(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iterations: int = 200,
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
) -> AlgorithmResult:
    """PageRank values for every original node (sums to ~1).

    ``schedule`` selects push (scatter along out-edges) or pull (gather
    along in-edges) execution.  Ranks are bitwise schedule-invariant:
    within any destination's bincount bin the records appear in (source
    asc, storage pos) order under *both* edge orders, so each rank sum
    accumulates in the identical float sequence.
    """
    if not 0.0 < damping < 1.0:
        raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
    if tol <= 0:
        raise AlgorithmError("tol must be positive")
    plan = plan_for(graph_or_plan)
    runner = (runner_factory or Runner)(plan, device).use_schedule(schedule)
    graph = plan.graph
    n_slots = graph.num_nodes

    if plan.graffix is not None:
        occupied = plan.graffix.rep_of >= 0
    else:
        occupied = np.ones(n_slots, dtype=bool)
    n_live = int(occupied.sum())
    if n_live == 0:
        raise AlgorithmError("graph has no occupied nodes")

    edges = runner.edges
    src, dst = edges.src, edges.dst
    inv_deg = np.zeros(n_slots)
    nz = edges.out_deg > 0
    inv_deg[nz] = 1.0 / edges.out_deg[nz]
    dangling = occupied & ~nz

    pr = np.zeros(n_slots)
    pr[occupied] = 1.0 / n_live
    teleport = (1.0 - damping) / n_live

    iterations = 0
    delta = np.inf
    # convergence is delegated to the runner (the repro.tune seam): the
    # base Runner preserves the historical `delta > tol` check exactly
    while iterations < max_iterations and runner.keep_iterating(delta, tol):
        iterations += 1
        decision = runner._decide(None)
        if decision is not None and decision.direction == "pull":
            pv = runner._pull_edges()
            runner.ctx.charge(
                None,
                subgraph=pv.rev,
                expansion=pv.full_expansion(),
                partition=decision.partition,
            )
            e_src, e_dst = pv.src, pv.dst
        else:
            runner.ctx.charge(
                None,
                partition="vertex" if decision is None else decision.partition,
            )
            e_src, e_dst = src, dst
        contrib = pr * inv_deg
        # bincount accumulates per-bin in the same array order np.add.at
        # did, so the sums are bitwise identical — just ~10× faster
        # (edgeless bincount yields int64 zeros, hence the astype)
        new_pr = np.bincount(
            e_dst, weights=damping * contrib[e_src], minlength=n_slots
        ).astype(np.float64, copy=False)
        dangling_mass = damping * pr[dangling].sum() / n_live
        new_pr[occupied] += teleport + dangling_mass
        runner.confluence(new_pr)
        # No §3 local cluster rounds for PageRank: PR recomputes every
        # contribution from scratch each power iteration, so re-pushing
        # the intra-cluster edges locally does not advance convergence the
        # way it does for monotone propagation (SSSP) — it only burns
        # atomic traffic.  The shared-memory win for PR is the residency
        # discount the cost model already applies to the pinned hub
        # attributes during the global sweep.
        delta = float(np.abs(new_pr - pr).sum())
        pr = new_pr

    values = plan.lower(pr)
    return AlgorithmResult(
        values=values, metrics=runner.metrics, iterations=iterations
    )
