"""Strongly connected components — FW-BW-Trim (Hong et al. style).

The GPU-standard SCC algorithm (the paper's Baseline-I uses Devshatwar et
al.'s GPU-centric extensions of it):

1. **Trim** — repeatedly peel nodes with zero in- or out-degree within the
   remaining set; each peeled node is a singleton SCC.  Each trim round is
   one charged sweep.
2. **FW-BW** — pick a pivot, compute its forward and backward reachable
   sets (each BFS level is a charged sweep); the intersection is one SCC;
   the three remainder partitions (FW-only, BW-only, rest) are processed
   iteratively.

On a Graffix-transformed plan the component *count* is computed over
original nodes via their primary slots, so unfilled holes and replicas
never inflate it; structural edge additions can still merge SCCs — which
is exactly the approximation the paper's SCC metric (difference in
component count) measures.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.gather import frontier_edges
from .common import AlgorithmResult, Runner, plan_for

__all__ = ["scc"]


def _reach(
    runner: Runner,
    offsets: np.ndarray,
    indices: np.ndarray,
    start: int,
    allowed: np.ndarray,
) -> np.ndarray:
    """BFS reachability from ``start`` within ``allowed``; charges per level."""
    n = allowed.size
    visited = np.zeros(n, dtype=bool)
    visited[start] = True
    frontier = np.array([start], dtype=np.int64)
    while frontier.size:
        runner.ctx.charge(frontier)
        _, flat, _ = frontier_edges(offsets, indices, frontier)
        if flat.size == 0:
            break
        nxt = np.unique(flat)
        nxt = nxt[allowed[nxt] & ~visited[nxt]]
        if nxt.size == 0:
            break
        visited[nxt] = True
        frontier = nxt
    return visited


def scc(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """SCC labels per original node; ``aux["num_components"]`` is the count
    the paper's SCC inaccuracy metric compares."""
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device)
    graph = plan.graph
    n = graph.num_nodes

    # replica groups are one logical node: connect the copies with alias
    # edges in both directions before decomposing, otherwise moving a
    # node's out-edges onto its (in-edge-less) replica would *break*
    # strong connectivity that confluence preserves on the real execution
    if plan.graffix is not None:
        slots, gids, _sizes = plan.graffix.replica_groups()
        if slots.size:
            firsts = np.full(int(gids.max()) + 1, -1, dtype=np.int64)
            for slot, gid in zip(slots.tolist(), gids.tolist()):
                if firsts[gid] < 0:
                    firsts[gid] = slot
            pair_a = slots
            pair_b = firsts[gids]
            keep = pair_a != pair_b
            extra_src = np.concatenate([pair_a[keep], pair_b[keep]])
            extra_dst = np.concatenate([pair_b[keep], pair_a[keep]])
            graph = CSRGraph.from_edges(
                n,
                np.concatenate([graph.edge_sources().astype(np.int64), extra_src]),
                np.concatenate([graph.indices.astype(np.int64), extra_dst]),
                None,
                dedup=True,
            )

    rev = graph.reverse()
    offsets_f, indices_f = graph.offsets, graph.indices.astype(np.int64)
    offsets_b, indices_b = rev.offsets, rev.indices.astype(np.int64)

    labels = np.full(n, -1, dtype=np.int64)
    next_label = 0
    remaining = np.ones(n, dtype=bool)
    # unfilled holes are not nodes; exclude them from the decomposition
    if plan.graffix is not None:
        remaining &= plan.graffix.rep_of >= 0

    src_f = graph.edge_sources().astype(np.int64)
    dst_f = graph.indices.astype(np.int64)

    def trim() -> None:
        nonlocal next_label
        while True:
            runner.ctx.charge(np.nonzero(remaining)[0])
            live = remaining[src_f] & remaining[dst_f]
            out_deg = np.bincount(src_f[live], minlength=n)
            in_deg = np.bincount(dst_f[live], minlength=n)
            peel = remaining & ((out_deg == 0) | (in_deg == 0))
            ids = np.nonzero(peel)[0]
            if ids.size == 0:
                break
            labels[ids] = next_label + np.arange(ids.size)
            next_label += ids.size
            remaining[ids] = False

    trim()
    # worklist of candidate partitions, each a boolean mask refinement
    stack: list[np.ndarray] = []
    if remaining.any():
        stack.append(remaining.copy())

    while stack:
        part = stack.pop()
        part &= remaining
        ids = np.nonzero(part)[0]
        if ids.size == 0:
            continue
        if ids.size == 1:
            labels[ids] = next_label
            next_label += 1
            remaining[ids] = False
            continue
        # pivot: max degree product inside the partition (Hong et al.)
        live = part[src_f] & part[dst_f]
        od = np.bincount(src_f[live], minlength=n)[ids]
        idg = np.bincount(dst_f[live], minlength=n)[ids]
        pivot = int(ids[np.argmax((od + 1) * (idg + 1))])
        fw = _reach(runner, offsets_f, indices_f, pivot, part)
        bw = _reach(runner, offsets_b, indices_b, pivot, part)
        core = fw & bw & part
        labels[core] = next_label
        next_label += 1
        remaining[core] = False
        for sub in (part & fw & ~core, part & bw & ~core, part & ~fw & ~bw):
            if sub.any():
                stack.append(sub)

    # lower: component ids of original nodes via their primary slots
    if plan.graffix is not None:
        orig_labels = labels[plan.graffix.primary_slot]
    else:
        orig_labels = labels
    num_components = int(np.unique(orig_labels[orig_labels >= 0]).size)
    return AlgorithmResult(
        values=orig_labels.astype(np.float64),
        metrics=runner.metrics,
        iterations=next_label,
        aux={"num_components": num_components},
    )
