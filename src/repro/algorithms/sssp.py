"""Single-source shortest paths (Bellman-Ford style, vertex-centric).

The topology-driven variant relaxes every edge each sweep (LonestarGPU's
``sssp`` and the paper's Baseline-I style); a data-driven variant that only
expands the changed frontier lives in :mod:`repro.baselines.gunrock`.

On a Graffix-transformed plan the runner transparently applies replica
confluence and shared-memory cluster rounds; added 2-hop edges carry the
sum of the two hop weights (§4), so any path through them corresponds to a
real path in the original graph — distances can only drift through
mean-confluence, never through the structural edits alone.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.workspace import pool, scatter_min_changed
from .common import MAX_ITERATIONS, AlgorithmResult, EdgeView, Runner, plan_for

__all__ = ["sssp", "sssp_relax", "DENSE_GATE_DIVISOR"]

#: the relax sweep goes dense (full pooled snapshot) once the touched
#: records reach ``1/DENSE_GATE_DIVISOR`` of the node count.  Measured,
#: not derived: the naive op count says dense ≈ 2n streaming words vs
#: sparse ≈ 3k gathered words (crossover 2n/3), but the sparse branch's
#: ``np.take`` with duplicate-heavy random indices is cache-hostile
#: while copyto/compare stream — on multigraphs with heavy parallel
#: edges (k counts *records*, duplicates included) the dense branch
#: already wins by k ≈ n/4 and is 3–7× cheaper by k ≈ n, where the old
#: ``k >= n`` gate still chose sparse.
DENSE_GATE_DIVISOR = 4


def sssp_relax(edges: EdgeView, dist: np.ndarray) -> bool:
    """One Bellman-Ford sweep over ``edges``; mutates ``dist`` in place.

    Change detection never allocates in steady state: sparse sweeps
    snapshot only the touched destinations (the engine's
    :func:`~repro.perf.workspace.scatter_min_changed`), dense sweeps —
    touched records within ``DENSE_GATE_DIVISOR``× of the node count —
    lease a pooled full snapshot, the cheaper of the two at O(V)
    streaming words.  Both branches compute identical distances and an
    identical changed flag (``tests/test_sssp_gate_differential.py``);
    the gate only picks the cheaper host path.

    ``edges`` may be a forward :class:`EdgeView` or a
    :class:`~repro.perf.edgeshare.PullEdgeView` — scatter-min is
    insensitive to record order, so pull schedules reuse this relax
    unchanged.
    """
    src, dst, w = edges.src, edges.dst, edges.weights
    finite = np.isfinite(dist[src])
    if not finite.any():
        return False
    dst_f = dst[finite]
    cand = dist[src[finite]] + w[finite]
    if dst_f.size * DENSE_GATE_DIVISOR >= dist.size:
        with pool().lease("sssp.relax.dense", dist.size, dist.dtype) as before:
            np.copyto(before, dist)
            np.minimum.at(dist, dst_f, cand)
            return bool(np.any(dist < before))
    changed = scatter_min_changed(dist, dst_f, cand, key="sssp.relax")
    return bool(changed.any())


def sssp(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
) -> AlgorithmResult:
    """Shortest-path distances from ``source`` (original node id).

    Unreachable nodes get ``inf``.  The distance attribute is what the
    paper's SSSP inaccuracy metric compares.  ``schedule`` (a
    :class:`~repro.perf.schedule.Schedule` or spec string) selects the
    sweep execution strategy; distances are schedule-invariant.
    """
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(
            f"source {source} out of range for n={plan.num_original}"
        )
    runner = (runner_factory or Runner)(plan, device).use_schedule(schedule)

    init = np.full(plan.num_original, np.inf)
    init[source] = 0.0
    dist = plan.lift(init, fill=np.inf)

    iterations = runner.fixed_point(
        dist,
        sssp_relax,
        max_iterations=min(MAX_ITERATIONS, 4 * plan.graph.num_nodes + 50),
    )
    return AlgorithmResult(
        values=plan.lower(dist),
        metrics=runner.metrics,
        iterations=iterations,
    )
