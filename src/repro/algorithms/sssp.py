"""Single-source shortest paths (Bellman-Ford style, vertex-centric).

The topology-driven variant relaxes every edge each sweep (LonestarGPU's
``sssp`` and the paper's Baseline-I style); a data-driven variant that only
expands the changed frontier lives in :mod:`repro.baselines.gunrock`.

On a Graffix-transformed plan the runner transparently applies replica
confluence and shared-memory cluster rounds; added 2-hop edges carry the
sum of the two hop weights (§4), so any path through them corresponds to a
real path in the original graph — distances can only drift through
mean-confluence, never through the structural edits alone.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.workspace import pool, scatter_min_changed
from .common import MAX_ITERATIONS, AlgorithmResult, EdgeView, Runner, plan_for

__all__ = ["sssp", "sssp_relax"]


def sssp_relax(edges: EdgeView, dist: np.ndarray) -> bool:
    """One Bellman-Ford sweep over ``edges``; mutates ``dist`` in place.

    Change detection never allocates: sparse sweeps snapshot only the
    touched destinations (the engine's
    :func:`~repro.perf.workspace.scatter_min_changed`), dense sweeps —
    once most sources are finite, touched records outnumber nodes — use
    a pooled full snapshot, which is the cheaper of the two at O(V).
    """
    src, dst, w = edges.src, edges.dst, edges.weights
    finite = np.isfinite(dist[src])
    if not finite.any():
        return False
    dst_f = dst[finite]
    cand = dist[src[finite]] + w[finite]
    if dst_f.size >= dist.size:
        before = pool().borrow("sssp.relax.dense", dist.size, dist.dtype)
        np.copyto(before, dist)
        np.minimum.at(dist, dst_f, cand)
        return bool(np.any(dist < before))
    changed = scatter_min_changed(dist, dst_f, cand, key="sssp.relax")
    return bool(changed.any())


def sssp(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    device: DeviceConfig = K40C,
    runner_factory=None,
) -> AlgorithmResult:
    """Shortest-path distances from ``source`` (original node id).

    Unreachable nodes get ``inf``.  The distance attribute is what the
    paper's SSSP inaccuracy metric compares.
    """
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(
            f"source {source} out of range for n={plan.num_original}"
        )
    runner = (runner_factory or Runner)(plan, device)

    init = np.full(plan.num_original, np.inf)
    init[source] = 0.0
    dist = plan.lift(init, fill=np.inf)

    iterations = runner.fixed_point(
        dist,
        sssp_relax,
        max_iterations=min(MAX_ITERATIONS, 4 * plan.graph.num_nodes + 50),
    )
    return AlgorithmResult(
        values=plan.lower(dist),
        metrics=runner.metrics,
        iterations=iterations,
    )
