"""Weakly connected components — label propagation (HookNudge style).

Not one of the paper's five evaluation algorithms; it exists to back the
paper's claim that the transforms are *algorithm-oblivious* ("Such
approximations should be algorithm- and graph-oblivious to apply to a
wide variety of graph analytic computations", §1).  WCC is a min-label
propagation — structurally identical to the propagation pattern the
transforms were designed around — so it runs on any
:class:`~repro.core.pipeline.ExecutionPlan` unchanged, confluence and
cluster rounds included, without this module knowing which technique is
active.

Each sweep propagates ``label[v] = min(label[v], label[u])`` along every
edge in both directions (weak connectivity); convergence is by the
Runner's monotone-envelope criterion, exactly like SSSP.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.workspace import pool
from .common import MAX_ITERATIONS, AlgorithmResult, EdgeView, Runner, plan_for

__all__ = ["wcc", "exact_wcc_count"]


def _wcc_relax(edges: EdgeView, labels: np.ndarray) -> bool:
    # snapshot + compare run through pooled scratch buffers: min-labels
    # only ever decrease, so one pre-sweep snapshot detects change for
    # both directions without per-sweep O(V) allocations
    src, dst = edges.src, edges.dst
    p = pool()
    before = p.borrow("wcc.before", labels.size, labels.dtype)
    np.copyto(before, labels)
    np.minimum.at(labels, dst, labels[src])
    np.minimum.at(labels, src, labels[dst])
    changed = p.borrow("wcc.changed", labels.size, np.bool_)
    np.less(labels, before, out=changed)
    return bool(changed.any())


def wcc(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Weakly-connected-component labels per original node.

    ``values[v]`` is the minimum original node id in ``v``'s component;
    ``aux["num_components"]`` counts distinct labels (the natural
    inaccuracy attribute, mirroring the paper's SCC metric).
    """
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device)

    init = np.arange(plan.num_original, dtype=np.float64)
    labels = plan.lift(init, fill=np.inf)  # holes never win a min

    iterations = runner.fixed_point(
        labels,
        _wcc_relax,
        max_iterations=min(MAX_ITERATIONS, plan.graph.num_nodes + 10),
        improvement_atol=0.5,
        improvement_rtol=0.0,  # labels are ids: relative slack is meaningless
    )
    values = plan.lower(labels)
    finite = values[np.isfinite(values)]
    num_components = int(np.unique(finite).size)
    return AlgorithmResult(
        values=values,
        metrics=runner.metrics,
        iterations=iterations,
        aux={"num_components": num_components},
    )


def exact_wcc_count(graph: CSRGraph) -> int:
    """Reference component count (scipy, weak connectivity)."""
    import scipy.sparse.csgraph as csgraph

    from ..graphs.builder import to_scipy

    count, _ = csgraph.connected_components(
        to_scipy(graph), directed=True, connection="weak"
    )
    return int(count)
