"""The paper's three exact baseline framework styles.

* Baseline-I  — :mod:`.lonestar` (LonestarGPU family, topology-driven)
* Baseline-II — :mod:`.tigr` (virtual-node splitting)
* Baseline-III — :mod:`.gunrock` (frontier-driven)

Each module exposes ``run(algorithm, graph_or_plan, **params)``; passing a
Graffix :class:`~repro.core.pipeline.ExecutionPlan` instead of a raw graph
yields the corresponding "approximate Graffix inside this framework" run.
"""

from . import gunrock, lonestar, operators, tigr

BASELINES = {
    "baseline1": lonestar,
    "tigr": tigr,
    "gunrock": gunrock,
}

#: algorithms each baseline supports (paper Tables 2-4)
BASELINE_ALGORITHMS = {
    "baseline1": lonestar.SUPPORTED,
    "tigr": tigr.SUPPORTED,
    "gunrock": gunrock.SUPPORTED,
}

__all__ = ["BASELINES", "BASELINE_ALGORITHMS", "gunrock", "lonestar", "operators", "tigr"]
