"""Baseline-III: Gunrock-style frontier-driven (data-driven) kernels.

Gunrock operates on frontiers of active nodes: an *advance* expands the
frontier's edges, a *filter* compacts the next frontier.  Only frontier
nodes occupy warp lanes, so sparse iterations are much cheaper than
topology-driven sweeps — our cost model reflects that automatically by
charging only the active list.

Implemented operators (the paper compares SSSP, PR and BC on Gunrock):

* ``sssp`` — delta-less Bellman-Ford over the changed-node frontier;
* ``pr``   — push-style PageRank-delta (residual propagation with an
  ``eps`` filter), Gunrock's PR formulation;
* ``bc``   — level-synchronous Brandes (our default BC is already
  frontier-charged).

All operators accept a Graffix :class:`~repro.core.pipeline.ExecutionPlan`
for the "approximate Graffix on Gunrock" rows of Tables 12–14 — replica
confluence and cluster rounds are applied exactly as in the Baseline-I
runners.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.common import AlgorithmResult, Runner, plan_for
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.gather import expand_frontier
from ..perf.workspace import pool, scatter_min_changed

__all__ = ["run", "sssp_frontier", "pagerank_delta", "SUPPORTED"]

SUPPORTED = ("sssp", "pr", "bc")


def sssp_frontier(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    device: DeviceConfig = K40C,
    max_iterations: int = 100_000,
    schedule=None,
) -> AlgorithmResult:
    """Frontier-driven SSSP (advance changed nodes only).

    Under a pull schedule each iteration gathers over the reverse view,
    keeping exactly the records whose *source* changed last iteration —
    the same edge multiset the push advance expands, relaxed by
    order-insensitive scatter-min, so distances, the changed set, and
    the iteration count are all schedule-invariant.  The charge models
    what bottom-up actually does: a full reverse-adjacency scan testing
    frontier membership.
    """
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(f"source {source} out of range")
    runner = Runner(plan, device).use_schedule(schedule)
    graph = plan.graph
    n = graph.num_nodes
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)
    weights = graph.effective_weights()

    init = np.full(plan.num_original, np.inf)
    init[source] = 0.0
    dist = plan.lift(init, fill=np.inf)
    frontier = np.nonzero(np.isfinite(dist))[0].astype(np.int64)
    iterations = 0

    if plan.graffix is not None:
        g_slots, _g_gids, _g_sizes = plan.graffix.replica_groups()
    else:
        g_slots = np.empty(0, dtype=np.int64)
    scratch = pool()
    in_frontier = None

    while frontier.size and iterations < max_iterations:
        iterations += 1
        decision = runner._decide(frontier)
        if decision is not None and decision.direction == "pull":
            pv = runner._pull_edges()
            runner.ctx.charge(
                None,
                subgraph=pv.rev,
                expansion=pv.full_expansion(),
                partition=decision.partition,
            )
            if in_frontier is None:
                in_frontier = np.zeros(n, dtype=bool)
            in_frontier[:] = False
            in_frontier[frontier] = True
            rec = in_frontier[pv.src]
            e_src = pv.src[rec]
            e_dst = pv.dst[rec]
            cand_w = pv.weights[rec]
            epos = None
        else:
            exp = expand_frontier(offsets, indices, frontier)
            runner.ctx.charge(
                frontier,
                expansion=exp,
                partition="vertex" if decision is None else decision.partition,
            )
            e_src, e_dst, epos = exp.e_src, exp.e_dst, exp.epos
            cand_w = None
        # touched-destinations change detection (no full dist snapshots:
        # only gathered edges and, below, only replica slots are compared)
        changed_mask = scratch.borrow("gunrock.sssp.mask", n, np.bool_)
        changed_mask[:] = False
        if e_dst.size:
            cand = dist[e_src] + (weights[epos] if cand_w is None else cand_w)
            improved = scatter_min_changed(dist, e_dst, cand, key="gunrock.sssp")
            changed_mask[e_dst[improved]] = True
        if plan.graffix is not None:
            # confluence only ever writes replica slots, so comparing
            # those slots is exact — the rest of dist cannot move
            before_slots = scratch.borrow(
                "gunrock.sssp.slots", g_slots.size, dist.dtype
            )
            np.take(dist, g_slots, out=before_slots)
            runner.confluence(dist)
            changed_mask[g_slots[dist[g_slots] != before_slots]] = True
        frontier = np.nonzero(changed_mask)[0].astype(np.int64)

    return AlgorithmResult(
        values=plan.lower(dist), metrics=runner.metrics, iterations=iterations
    )


def pagerank_delta(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    damping: float = 0.85,
    eps_fraction: float = 1e-3,
    max_iterations: int = 10_000,
    device: DeviceConfig = K40C,
    schedule=None,
) -> AlgorithmResult:
    """Push-style PageRank-delta with residual filtering (Gunrock PR).

    Converges to the same fixed point as power iteration: residuals below
    ``eps = eps_fraction / n`` are dropped, bounding the error.

    Ranks are bitwise schedule-invariant: the per-record share is the
    node-level ``damping * r / deg`` float either way, and within any
    destination's bincount bin the frontier records appear in (source
    asc, storage pos) order under both edge orders.
    """
    if not 0.0 < damping < 1.0:
        raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device).use_schedule(schedule)
    graph = plan.graph
    n = graph.num_nodes
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)

    if plan.graffix is not None:
        occupied = plan.graffix.rep_of >= 0
    else:
        occupied = np.ones(n, dtype=bool)
    n_live = int(occupied.sum())
    out_deg = graph.out_degrees().astype(np.float64)

    pr = np.zeros(n)
    residual = np.zeros(n)
    residual[occupied] = (1.0 - damping) / n_live
    eps = eps_fraction / n_live

    iterations = 0
    in_frontier = None
    while iterations < max_iterations:
        frontier = np.nonzero(residual > eps)[0].astype(np.int64)
        if frontier.size == 0:
            break
        iterations += 1
        decision = runner._decide(frontier)
        pull = decision is not None and decision.direction == "pull"
        if pull:
            pv = runner._pull_edges()
            runner.ctx.charge(
                None,
                subgraph=pv.rev,
                expansion=pv.full_expansion(),
                partition=decision.partition,
            )
            degs = out_deg[frontier]
        else:
            # zero-out-degree frontier nodes contribute no edges, so the
            # frontier's expansion doubles as fo's below
            exp = expand_frontier(offsets, indices, frontier)
            runner.ctx.charge(
                frontier,
                expansion=exp,
                partition="vertex" if decision is None else decision.partition,
            )
            degs = exp.degs
        r = residual[frontier]
        pr[frontier] += r
        residual[frontier] = 0.0
        has_out = degs > 0
        fo = frontier[has_out]
        if fo.size:
            do = degs[has_out]
            share = damping * r[has_out] / do
            if pull:
                share_node = np.zeros(n)
                share_node[fo] = share
                if in_frontier is None:
                    in_frontier = np.zeros(n, dtype=bool)
                in_frontier[:] = False
                in_frontier[fo] = True
                rec = in_frontier[pv.src]
                contrib = share_node[pv.src[rec]]
                dsts = pv.dst[rec]
            else:
                contrib = np.repeat(share, do)
                dsts = exp.e_dst
            # per-destination sums via bincount (~10× np.add.at on large
            # frontiers); adds reassociate per destination, within float
            # tolerance of the residual-propagation fixed point
            residual += np.bincount(
                dsts, weights=contrib, minlength=n
            ).astype(np.float64, copy=False)
        # dangling nodes spread their residual uniformly
        dangling = r[~has_out].sum()
        if dangling > 0:
            residual[occupied] += damping * dangling / n_live
        if plan.graffix is not None:
            runner.confluence(pr)
            runner.confluence(residual)

    return AlgorithmResult(
        values=plan.lower(pr), metrics=runner.metrics, iterations=iterations
    )


def run(
    algorithm: str,
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    source: int = 0,
    bc_sources: np.ndarray | None = None,
    num_bc_sources: int = 4,
    seed: int = 0,
    device: DeviceConfig = K40C,
    schedule=None,
) -> AlgorithmResult:
    """Execute one algorithm in Gunrock (frontier-driven) style."""
    if algorithm == "sssp":
        return sssp_frontier(graph_or_plan, source, device=device, schedule=schedule)
    if algorithm == "pr":
        return pagerank_delta(graph_or_plan, device=device, schedule=schedule)
    if algorithm == "bc":
        return betweenness_centrality(
            graph_or_plan,
            sources=bc_sources,
            num_sources=num_bc_sources,
            seed=seed,
            device=device,
            schedule=schedule,
        )
    raise AlgorithmError(
        f"Gunrock baseline does not implement {algorithm!r}; supported: {SUPPORTED}"
    )
