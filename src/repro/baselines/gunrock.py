"""Baseline-III: Gunrock-style frontier-driven (data-driven) kernels.

Gunrock operates on frontiers of active nodes: an *advance* expands the
frontier's edges, a *filter* compacts the next frontier.  Only frontier
nodes occupy warp lanes, so sparse iterations are much cheaper than
topology-driven sweeps — our cost model reflects that automatically by
charging only the active list.

Implemented operators (the paper compares SSSP, PR and BC on Gunrock):

* ``sssp`` — delta-less Bellman-Ford over the changed-node frontier;
* ``pr``   — push-style PageRank-delta (residual propagation with an
  ``eps`` filter), Gunrock's PR formulation;
* ``bc``   — level-synchronous Brandes (our default BC is already
  frontier-charged).

All operators accept a Graffix :class:`~repro.core.pipeline.ExecutionPlan`
for the "approximate Graffix on Gunrock" rows of Tables 12–14 — replica
confluence and cluster rounds are applied exactly as in the Baseline-I
runners.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.common import AlgorithmResult, Runner, plan_for
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..perf.gather import expand_frontier
from ..perf.workspace import pool, scatter_min_changed

__all__ = ["run", "sssp_frontier", "pagerank_delta", "SUPPORTED"]

SUPPORTED = ("sssp", "pr", "bc")


def sssp_frontier(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    device: DeviceConfig = K40C,
    max_iterations: int = 100_000,
) -> AlgorithmResult:
    """Frontier-driven SSSP (advance changed nodes only)."""
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(f"source {source} out of range")
    runner = Runner(plan, device)
    graph = plan.graph
    n = graph.num_nodes
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)
    weights = graph.effective_weights()

    init = np.full(plan.num_original, np.inf)
    init[source] = 0.0
    dist = plan.lift(init, fill=np.inf)
    frontier = np.nonzero(np.isfinite(dist))[0].astype(np.int64)
    iterations = 0

    if plan.graffix is not None:
        g_slots, _g_gids, _g_sizes = plan.graffix.replica_groups()
    else:
        g_slots = np.empty(0, dtype=np.int64)
    scratch = pool()

    while frontier.size and iterations < max_iterations:
        iterations += 1
        exp = expand_frontier(offsets, indices, frontier)
        runner.ctx.charge(frontier, expansion=exp)
        # touched-destinations change detection (no full dist snapshots:
        # only gathered edges and, below, only replica slots are compared)
        changed_mask = scratch.borrow("gunrock.sssp.mask", n, np.bool_)
        changed_mask[:] = False
        e_src, e_dst, epos = exp.e_src, exp.e_dst, exp.epos
        if e_dst.size:
            cand = dist[e_src] + weights[epos]
            improved = scatter_min_changed(dist, e_dst, cand, key="gunrock.sssp")
            changed_mask[e_dst[improved]] = True
        if plan.graffix is not None:
            # confluence only ever writes replica slots, so comparing
            # those slots is exact — the rest of dist cannot move
            before_slots = scratch.borrow(
                "gunrock.sssp.slots", g_slots.size, dist.dtype
            )
            np.take(dist, g_slots, out=before_slots)
            runner.confluence(dist)
            changed_mask[g_slots[dist[g_slots] != before_slots]] = True
        frontier = np.nonzero(changed_mask)[0].astype(np.int64)

    return AlgorithmResult(
        values=plan.lower(dist), metrics=runner.metrics, iterations=iterations
    )


def pagerank_delta(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    damping: float = 0.85,
    eps_fraction: float = 1e-3,
    max_iterations: int = 10_000,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Push-style PageRank-delta with residual filtering (Gunrock PR).

    Converges to the same fixed point as power iteration: residuals below
    ``eps = eps_fraction / n`` are dropped, bounding the error.
    """
    if not 0.0 < damping < 1.0:
        raise AlgorithmError(f"damping must be in (0, 1), got {damping}")
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device)
    graph = plan.graph
    n = graph.num_nodes
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)

    if plan.graffix is not None:
        occupied = plan.graffix.rep_of >= 0
    else:
        occupied = np.ones(n, dtype=bool)
    n_live = int(occupied.sum())
    out_deg = graph.out_degrees().astype(np.float64)

    pr = np.zeros(n)
    residual = np.zeros(n)
    residual[occupied] = (1.0 - damping) / n_live
    eps = eps_fraction / n_live

    iterations = 0
    while iterations < max_iterations:
        frontier = np.nonzero(residual > eps)[0].astype(np.int64)
        if frontier.size == 0:
            break
        iterations += 1
        # zero-out-degree frontier nodes contribute no edges, so the
        # frontier's expansion doubles as fo's below
        exp = expand_frontier(offsets, indices, frontier)
        runner.ctx.charge(frontier, expansion=exp)
        r = residual[frontier]
        pr[frontier] += r
        residual[frontier] = 0.0
        degs = exp.degs
        has_out = degs > 0
        fo = frontier[has_out]
        if fo.size:
            do = degs[has_out]
            share = damping * r[has_out] / do
            # per-destination sums via bincount (~10× np.add.at on large
            # frontiers); adds reassociate per destination, within float
            # tolerance of the residual-propagation fixed point
            residual += np.bincount(
                exp.e_dst, weights=np.repeat(share, do), minlength=n
            ).astype(np.float64, copy=False)
        # dangling nodes spread their residual uniformly
        dangling = r[~has_out].sum()
        if dangling > 0:
            residual[occupied] += damping * dangling / n_live
        if plan.graffix is not None:
            runner.confluence(pr)
            runner.confluence(residual)

    return AlgorithmResult(
        values=plan.lower(pr), metrics=runner.metrics, iterations=iterations
    )


def run(
    algorithm: str,
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    source: int = 0,
    bc_sources: np.ndarray | None = None,
    num_bc_sources: int = 4,
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Execute one algorithm in Gunrock (frontier-driven) style."""
    if algorithm == "sssp":
        return sssp_frontier(graph_or_plan, source, device=device)
    if algorithm == "pr":
        return pagerank_delta(graph_or_plan, device=device)
    if algorithm == "bc":
        return betweenness_centrality(
            graph_or_plan,
            sources=bc_sources,
            num_sources=num_bc_sources,
            seed=seed,
            device=device,
        )
    raise AlgorithmError(
        f"Gunrock baseline does not implement {algorithm!r}; supported: {SUPPORTED}"
    )
