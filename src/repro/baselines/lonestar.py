"""Baseline-I: LonestarGPU-family topology-driven exact kernels.

The paper's first baseline bundles LonestarGPU's SSSP and MST, Devshatwar
et al.'s SCC, and Singh & Nasre's exact PR and Brandes BC — all
*topology-driven*: every kernel iteration launches a thread per node and
re-examines the whole graph.  That is exactly the default charging mode of
our algorithm implementations, so this module is a thin dispatch layer
that fixes the kernel style (full sweeps, topology-driven BC) and exposes
the uniform ``run(algorithm, plan)`` interface the harness uses for every
baseline.

``run`` accepts either a raw graph (exact run) or a Graffix
:class:`~repro.core.pipeline.ExecutionPlan` (the "approximate Graffix on
Baseline-I" configuration of Tables 6–8).
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.common import AlgorithmResult, plan_for
from ..algorithms.mst import mst
from ..algorithms.pagerank import pagerank
from ..algorithms.scc import scc
from ..algorithms.sssp import sssp
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C

__all__ = ["run", "SUPPORTED"]

SUPPORTED = ("sssp", "mst", "scc", "pr", "bc")


def run(
    algorithm: str,
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    source: int = 0,
    bc_sources: np.ndarray | None = None,
    num_bc_sources: int = 4,
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Execute one algorithm in Baseline-I (topology-driven) style."""
    plan = plan_for(graph_or_plan)
    if algorithm == "sssp":
        return sssp(plan, source, device=device)
    if algorithm == "mst":
        return mst(plan, device=device)
    if algorithm == "scc":
        return scc(plan, device=device)
    if algorithm == "pr":
        return pagerank(plan, device=device)
    if algorithm == "bc":
        return betweenness_centrality(
            plan,
            sources=bc_sources,
            num_sources=num_bc_sources,
            seed=seed,
            topology_driven=True,
            device=device,
        )
    raise AlgorithmError(
        f"Baseline-I does not implement {algorithm!r}; supported: {SUPPORTED}"
    )
