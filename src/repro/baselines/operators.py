"""A Gunrock-style frontier-operator API on the simulated GPU.

Gunrock's programming model ("operates on frontiers of nodes or edges; a
filtering operation removes inactive items ... followed by application of
user-defined functors to the frontier in parallel", paper §6) reduced to
three primitives over our cost model:

* :meth:`OperatorContext.advance` — expand the frontier's out-edges and
  hand the edge arrays to a user functor, charging one frontier sweep;
* :meth:`OperatorContext.filter_` — compact a candidate mask into the
  next frontier (charged as a source-attribute pass over the candidates);
* :meth:`OperatorContext.compute` — apply a per-node functor to the
  frontier without touching edges.

The functors receive flat numpy arrays, so user code stays vectorized.
``examples``/tests build BFS and SSSP in a few lines each and verify they
match the dedicated implementations value-for-value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AlgorithmError, SimulationError
from ..graphs.csr import CSRGraph
from ..gpusim.costmodel import charge_sweep
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.metrics import SimMetrics
from ..perf.gather import expand_frontier
from ..perf.workspace import scatter_min_changed

__all__ = ["Frontier", "OperatorContext", "bfs_operators", "sssp_operators"]


@dataclass(frozen=True)
class Frontier:
    """An ordered set of active node ids."""

    nodes: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "nodes", np.asarray(self.nodes, dtype=np.int64)
        )

    @classmethod
    def of(cls, *nodes: int) -> "Frontier":
        return cls(np.asarray(nodes, dtype=np.int64))

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Frontier":
        return cls(np.nonzero(np.asarray(mask, dtype=bool))[0])

    @property
    def size(self) -> int:
        return int(self.nodes.size)

    def __bool__(self) -> bool:
        return self.size > 0

    def __len__(self) -> int:
        return self.size


#: advance functor signature: (e_src, e_dst, e_weight) -> candidate mask
AdvanceFunctor = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


class OperatorContext:
    """Binds a graph + device and meters every operator invocation."""

    def __init__(self, graph: CSRGraph, device: DeviceConfig = K40C) -> None:
        self.graph = graph
        self.device = device
        self.metrics = SimMetrics(device=device)
        self._weights = graph.effective_weights()

    # ------------------------------------------------------------------
    def _expand(self, frontier: Frontier):
        g = self.graph
        ids = frontier.nodes
        if ids.size and (ids.min() < 0 or ids.max() >= g.num_nodes):
            raise SimulationError("frontier node id out of range")
        return expand_frontier(g.offsets, g.indices, ids)

    def advance(self, frontier: Frontier, functor: AdvanceFunctor) -> Frontier:
        """Expand the frontier's edges through ``functor``.

        The functor returns a boolean mask over the edge records marking
        destinations that become candidates; the returned frontier is the
        de-duplicated candidate set.  One frontier sweep is charged.
        """
        if not isinstance(frontier, Frontier):
            raise AlgorithmError("advance expects a Frontier")
        exp = self._expand(frontier)
        self.metrics.add(
            charge_sweep(self.graph, self.device, frontier.nodes, expansion=exp)
        )
        e_src, e_dst = exp.e_src, exp.e_dst
        if e_src.size == 0:
            return Frontier(np.empty(0, dtype=np.int64))
        e_w = self._weights[exp.epos]
        mask = np.asarray(functor(e_src, e_dst, e_w), dtype=bool)
        if mask.shape != e_dst.shape:
            raise AlgorithmError(
                "advance functor must return a mask parallel to the edges"
            )
        return Frontier(np.unique(e_dst[mask]))

    def filter_(
        self, frontier: Frontier, predicate: Callable[[np.ndarray], np.ndarray]
    ) -> Frontier:
        """Keep the frontier nodes satisfying ``predicate(ids)``.

        Charged as a coalesced pass over the candidates' own attributes
        (Gunrock's filter is a stream compaction).
        """
        ids = frontier.nodes
        if ids.size == 0:
            return frontier
        cost = charge_sweep(
            _edgeless_view(self.graph.num_nodes), self.device, ids
        )
        self.metrics.add(cost)
        keep = np.asarray(predicate(ids), dtype=bool)
        if keep.shape != ids.shape:
            raise AlgorithmError(
                "filter predicate must return a mask parallel to the frontier"
            )
        return Frontier(ids[keep])

    def compute(
        self, frontier: Frontier, fn: Callable[[np.ndarray], None]
    ) -> None:
        """Apply ``fn(ids)`` to the frontier (no edge expansion)."""
        ids = frontier.nodes
        if ids.size == 0:
            return
        self.metrics.add(
            charge_sweep(_edgeless_view(self.graph.num_nodes), self.device, ids)
        )
        fn(ids)


def _edgeless_view(n: int) -> CSRGraph:
    """A zero-edge graph used to charge node-only passes."""
    return CSRGraph(
        np.zeros(n + 1, dtype=np.int64),
        np.empty(0, dtype=np.int32),
        validate=False,
    )


# ---------------------------------------------------------------------------
# reference algorithms expressed in the operator model
# ---------------------------------------------------------------------------
def bfs_operators(
    graph: CSRGraph, source: int, *, device: DeviceConfig = K40C
) -> tuple[np.ndarray, SimMetrics]:
    """Level-synchronous BFS in advance/filter form."""
    if not 0 <= source < graph.num_nodes:
        raise AlgorithmError(f"source {source} out of range")
    ctx = OperatorContext(graph, device)
    level = np.full(graph.num_nodes, -1, dtype=np.int64)
    level[source] = 0
    frontier = Frontier.of(source)
    depth = 0
    while frontier:
        def visit(e_src, e_dst, e_w):
            fresh = level[e_dst] < 0
            level[e_dst[fresh]] = depth + 1
            return fresh

        candidates = ctx.advance(frontier, visit)
        frontier = ctx.filter_(
            candidates, lambda ids: level[ids] == depth + 1
        )
        depth += 1
    return level, ctx.metrics


def sssp_operators(
    graph: CSRGraph, source: int, *, device: DeviceConfig = K40C
) -> tuple[np.ndarray, SimMetrics]:
    """Frontier-driven Bellman-Ford in advance/filter form."""
    if not 0 <= source < graph.num_nodes:
        raise AlgorithmError(f"source {source} out of range")
    ctx = OperatorContext(graph, device)
    dist = np.full(graph.num_nodes, np.inf)
    dist[source] = 0.0
    frontier = Frontier.of(source)
    while frontier:
        improved = np.zeros(graph.num_nodes, dtype=bool)

        def relax(e_src, e_dst, e_w):
            # the touched-destinations idiom now lives in the shared
            # engine; the mask is pooled scratch, consumed immediately
            cand = dist[e_src] + e_w
            changed_dst = scatter_min_changed(dist, e_dst, cand, key="ops.sssp")
            improved[e_dst[changed_dst]] = True
            return changed_dst

        candidates = ctx.advance(frontier, relax)
        frontier = ctx.filter_(candidates, lambda ids: improved[ids])
    return dist, ctx.metrics
