"""Baseline-II: Tigr-style virtual-node splitting (Nodehi Sabet et al.).

Tigr transforms irregular graphs into *virtually regular* ones: every node
with out-degree above ``vmax`` is split into ``ceil(deg / vmax)`` virtual
nodes, each owning a consecutive slice of the adjacency list.  Two effects
follow, both captured by our cost model with no special-casing:

* **low divergence** — virtual degrees are bounded by ``vmax``, so warp
  lanes have near-uniform trip counts;
* **edge-array coalescing** — consecutive virtual nodes own consecutive
  edge ranges, so lanes read adjacent locations of the edges array.

Virtual nodes share their master's attribute, so value computation is
*exact* and identical to the master-space algorithms; only the cost
accounting runs over the virtual structure.  This is why the paper's
speedups of Graffix-over-Tigr (Tables 9–11) are smaller than over
Baseline-I: Tigr's exact baseline is already fast.

``run`` accepts a Graffix :class:`~repro.core.pipeline.ExecutionPlan` too
— the virtual split is then applied to the *transformed* slot graph,
reproducing the paper's "approximate Graffix running inside Tigr" rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.common import AlgorithmResult, Runner, plan_for
from ..algorithms.pagerank import pagerank
from ..algorithms.sssp import sssp
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError, SimulationError
from ..graphs.csr import CSRGraph
from ..gpusim.costmodel import charge_sweep
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.kernel import ExecutionContext

__all__ = ["VirtualSplit", "virtual_split", "run", "SUPPORTED", "TigrRunner"]

SUPPORTED = ("sssp", "pr", "bc")

#: Tigr's default virtual-degree bound
DEFAULT_VMAX = 4


@dataclass(frozen=True)
class VirtualSplit:
    """The virtual graph and its master mapping.

    ``graph`` has one node per virtual node; its edges array *is* the
    original edges array (the split only refines the offsets).
    ``master[v] -> master node id``; masters' virtual-id ranges are
    ``vstart[m] .. vstart[m+1]``.
    """

    graph: CSRGraph
    master: np.ndarray
    vstart: np.ndarray

    @property
    def num_virtual(self) -> int:
        return self.graph.num_nodes


def virtual_split(graph: CSRGraph, vmax: int = DEFAULT_VMAX) -> VirtualSplit:
    """Split every node into virtual nodes of out-degree <= ``vmax``.

    Zero-degree nodes keep a single empty virtual node, so every master is
    represented (an exactness requirement: virtual lanes must cover the
    same work as master lanes would).
    """
    if vmax < 1:
        raise SimulationError(f"vmax must be >= 1, got {vmax}")
    degs = graph.out_degrees().astype(np.int64)
    pieces = np.maximum(1, -(-degs // vmax))
    vstart = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    np.cumsum(pieces, out=vstart[1:])
    num_virtual = int(vstart[-1])
    master = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), pieces)

    # piece k of master m starts at offsets[m] + k*vmax; consecutive pieces
    # tile the adjacency exactly, so the starts alone form a valid CSR
    # offsets array (each piece's end is the next piece's start).
    piece_index = np.arange(num_virtual, dtype=np.int64) - vstart[master]
    starts = graph.offsets[master].astype(np.int64) + piece_index * vmax
    voffsets = np.concatenate([starts, [graph.num_edges]])
    # indices may exceed num_virtual - 1 as node ids; destinations in the
    # virtual graph are still *master* ids, which is what the attribute
    # gather touches — so keep them, but skip CSRGraph's range validation.
    vgraph = CSRGraph(voffsets, graph.indices, graph.weights, validate=False)
    return VirtualSplit(graph=vgraph, master=master, vstart=vstart)


class _TigrContext(ExecutionContext):
    """Charges master-space activity as sweeps over the virtual graph."""

    def __init__(
        self,
        split: VirtualSplit,
        device: DeviceConfig,
        resident_mask: np.ndarray | None = None,
    ) -> None:
        super().__init__(split.graph, device)
        self._split = split
        # destination attributes are addressed by *master* id even in the
        # virtual graph, so the §3 residency mask stays in master space;
        # pad it to the virtual node count to satisfy the cost model's
        # length check (the padded tail is never indexed by a dst).
        if resident_mask is not None:
            padded = np.zeros(split.num_virtual, dtype=bool)
            padded[: resident_mask.size] = resident_mask
            self.resident_mask = padded

    def _virtualize(self, active: np.ndarray | None) -> np.ndarray | None:
        if active is None:
            return None
        active = np.asarray(active)
        if active.dtype == bool:
            ids = np.nonzero(active)[0].astype(np.int64)
        else:
            ids = active.astype(np.int64)
        vs = self._split.vstart
        counts = (vs[ids + 1] - vs[ids]).astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        seg = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = np.arange(total, dtype=np.int64) - np.repeat(seg, counts)
        return np.repeat(vs[ids], counts) + pos

    def charge(
        self,
        active=None,
        *,
        all_shared=False,
        subgraph=None,
        expansion=None,
        partition="vertex",
    ):
        if subgraph is not None:
            # §3 cluster rounds and pull-schedule gathers stay in master
            # space: substituted structures are not virtual-split
            ids = (
                np.asarray(active, dtype=np.int64)
                if active is not None
                else np.arange(subgraph.num_nodes, dtype=np.int64)
            )
            cost = charge_sweep(
                subgraph,
                self.device,
                ids,
                all_shared=all_shared,
                expansion=expansion,
                partition=partition,
            )
            self.metrics.add(cost)
            return cost
        # a caller-provided expansion describes the master adjacency, not
        # the virtual split this context charges — never forward it
        cost = charge_sweep(
            self.graph,
            self.device,
            self._virtualize(active)
            if active is not None
            else np.arange(self.graph.num_nodes, dtype=np.int64),
            resident_mask=None if all_shared else self.resident_mask,
            all_shared=all_shared,
            partition=partition,
        )
        self.metrics.add(cost)
        return cost


class TigrRunner(Runner):
    """A :class:`Runner` whose cost accounting uses the virtual split."""

    def __init__(
        self,
        plan: ExecutionPlan,
        device: DeviceConfig = K40C,
        vmax: int = DEFAULT_VMAX,
    ) -> None:
        super().__init__(plan, device)
        self.split = virtual_split(plan.graph, vmax)
        self.ctx = _TigrContext(self.split, device, plan.resident_mask)


def run(
    algorithm: str,
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    source: int = 0,
    bc_sources: np.ndarray | None = None,
    num_bc_sources: int = 4,
    seed: int = 0,
    vmax: int = DEFAULT_VMAX,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """Execute one algorithm in Tigr (virtual-split) style."""
    plan = plan_for(graph_or_plan)

    def factory(p: ExecutionPlan, d: DeviceConfig) -> TigrRunner:
        return TigrRunner(p, d, vmax)

    if algorithm == "sssp":
        return sssp(plan, source, device=device, runner_factory=factory)
    if algorithm == "pr":
        return pagerank(plan, device=device, runner_factory=factory)
    if algorithm == "bc":
        return betweenness_centrality(
            plan,
            sources=bc_sources,
            num_sources=num_bc_sources,
            seed=seed,
            device=device,
            runner_factory=factory,
        )
    raise AlgorithmError(
        f"Tigr baseline does not implement {algorithm!r}; supported: {SUPPORTED}"
    )
