"""Content-addressed caching of transform and analytics artifacts.

The paper's evaluation protocol amortizes preprocessing across runs;
this package makes that real for the reproduction's sweeps: transformed
execution plans and structural analytics (clustering coefficients, BFS
forests, diameter estimates) are memoized on
``(graph.fingerprint(), stage, params fingerprint)`` in two tiers —

* :mod:`repro.cache.lru` — the bounded in-process LRU (also reused by
  the evaluation harness for exact baseline runs);
* :mod:`repro.cache.store` — an optional shared on-disk store
  (``--cache-dir`` / ``REPRO_CACHE_DIR``; npz payloads + JSON metadata,
  atomic writes, checksum-verified reads).

Caching is opt-in (off by default); see :mod:`repro.cache.memo` for the
enablement model and ``docs/caching.md`` for the full story.  The CLI
surface is ``python -m repro cache {stats,ls,clear}``.
"""

from .keys import artifact_key, canonical_params, params_fingerprint
from .lru import LRUCache
from .memo import (
    ENV_VAR,
    CacheConfig,
    active,
    configure,
    disable,
    enabled,
    memoize,
    memoize_arrays,
    memoize_json,
)
from .store import MISS, DiskStore

__all__ = [
    "ENV_VAR",
    "MISS",
    "CacheConfig",
    "DiskStore",
    "LRUCache",
    "active",
    "artifact_key",
    "canonical_params",
    "configure",
    "disable",
    "enabled",
    "memoize",
    "memoize_arrays",
    "memoize_json",
    "params_fingerprint",
]
