"""``python -m repro cache``: inspect and maintain the on-disk artifact cache.

Subcommands::

    python -m repro cache stats [--cache-dir DIR]
    python -m repro cache ls    [--cache-dir DIR] [--stage STAGE]
    python -m repro cache clear [--cache-dir DIR] [--stage STAGE]

``--cache-dir`` defaults to the ``REPRO_CACHE_DIR`` environment
variable — the same resolution the suite CLI uses — so ``stats`` after a
sweep needs no arguments.  ``ls`` prints one line per entry (stage, key
prefix, payload size, graph fingerprint prefix); ``clear`` deletes
entries and reports how many.
"""

from __future__ import annotations

import argparse
import os
import time

from ..errors import CacheError
from .memo import ENV_VAR
from .store import DiskStore

__all__ = ["main"]


def _store_for(args: argparse.Namespace) -> DiskStore:
    cache_dir = args.cache_dir or os.environ.get(ENV_VAR)
    if not cache_dir:
        raise CacheError(
            "no cache directory: pass --cache-dir or set " + ENV_VAR
        )
    return DiskStore(cache_dir)


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect/maintain the content-addressed artifact cache "
        "(see docs/caching.md).",
    )
    parser.add_argument(
        "command", choices=("stats", "ls", "clear"), help="what to do"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default: ${ENV_VAR})",
    )
    parser.add_argument(
        "--stage",
        default=None,
        help="restrict ls/clear to one stage (e.g. transform.build_plan)",
    )
    args = parser.parse_args(argv)
    store = _store_for(args)

    if args.command == "stats":
        st = store.stats()
        print(f"cache {st['root']}")
        print(
            f"  {st['entries']} entries, {_human_bytes(st['payload_bytes'])} payload"
        )
        for stage, s in sorted(st["stages"].items()):
            print(
                f"  {stage:40s} {s['entries']:6d} entries  "
                f"{_human_bytes(s['payload_bytes'])}"
            )
        return 0

    if args.command == "ls":
        try:
            for meta in store.entries(args.stage):
                created = time.strftime(
                    "%Y-%m-%d %H:%M:%S", time.localtime(meta.get("created", 0))
                )
                print(
                    f"{created}  {meta.get('stage', '?'):40s} "
                    f"{str(meta.get('key', '?'))[:12]}  "
                    f"{_human_bytes(int(meta.get('payload_bytes', 0))):>10s}  "
                    f"graph:{str(meta.get('graph_fingerprint', '?'))[:12]}"
                )
        except BrokenPipeError:  # e.g. `... cache ls | head`
            return 0
        return 0

    removed = store.clear(args.stage)
    print(f"removed {removed} entries from {store.root}")
    return 0
