"""Content-addressed cache keys for transform and analytics artifacts.

An artifact is identified by three coordinates:

* the **graph fingerprint** — :meth:`repro.graphs.csr.CSRGraph.fingerprint`,
  a SHA-1 over the CSR arrays, so any change to the input graph changes
  the key;
* the **stage** — a dotted name for what was computed
  (``transform.build_plan``, ``analytics.clustering_coefficients``, …);
* the **params fingerprint** — :func:`params_fingerprint` over every
  input that can change the output: knob dataclasses, the device model,
  seeds, thresholds.

:func:`params_fingerprint` canonicalizes its argument to a deterministic
JSON-like form first (dataclasses become ``{"__type__": name, fields…}``,
numpy arrays become dtype/shape/content-digest triples, dict keys are
sorted), so two structurally equal parameter sets always hash the same
and any field change — including nested knob fields — changes the key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["artifact_key", "canonical_params", "params_fingerprint"]


def canonical_params(obj: Any) -> Any:
    """A JSON-serializable canonical form of ``obj`` (deterministic)."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly; avoids JSON float formatting drift
        return {"__float__": repr(obj)}
    if isinstance(obj, np.generic):
        return canonical_params(obj.item())
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha1(
                np.ascontiguousarray(obj).tobytes()
            ).hexdigest(),
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **{
                f.name: canonical_params(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {
            "__dict__": sorted(
                (str(k), canonical_params(v)) for k, v in obj.items()
            )
        }
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [canonical_params(v) for v in obj]
        if isinstance(obj, (set, frozenset)):
            items = sorted(items, key=lambda v: json.dumps(v, sort_keys=True))
        return {"__seq__": items}
    raise TypeError(
        f"cannot fingerprint a {type(obj).__name__} cache parameter; "
        "pass primitives, dataclasses, numpy arrays, or containers of them"
    )


def params_fingerprint(params: Any) -> str:
    """Stable hex digest of an arbitrary parameter structure."""
    blob = json.dumps(canonical_params(params), sort_keys=True)
    return hashlib.sha1(blob.encode()).hexdigest()


def artifact_key(graph_fingerprint: str, stage: str, params: Any = None) -> str:
    """The content address of one cached artifact (hex digest).

    Used both as the in-process LRU key and as the on-disk file stem, so
    the two tiers always agree on identity.
    """
    h = hashlib.sha1()
    h.update(graph_fingerprint.encode())
    h.update(b"\x00")
    h.update(stage.encode())
    h.update(b"\x00")
    h.update(params_fingerprint(params).encode())
    return h.hexdigest()
