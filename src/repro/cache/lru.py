"""A small bounded LRU mapping with optional hit/miss/evict metrics.

This generalizes the ad-hoc exact-run cache that used to live inline in
:mod:`repro.eval.harness`: a plain :class:`collections.OrderedDict` with
move-to-end on hit and popitem on overflow, but reusable — the harness
keeps it for exact baseline results, and the in-process tier of
:mod:`repro.cache.memo` uses it for transform and analytics artifacts.

With ``metric_prefix`` set, every lookup increments
``<prefix>.hit`` / ``<prefix>.miss`` and every bound-enforced drop
increments ``<prefix>.evict`` on the process metrics registry, so cache
behaviour is visible in ``--metrics-out`` snapshots without the caller
counting by hand.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

from ..obs import metrics as obs_metrics

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded least-recently-used key/value cache.

    ``max_entries`` is clamped to at least 1; a lookup refreshes the
    entry's recency, an insert beyond the bound evicts the stalest entry.

    Thread-safe: the serve layer multiplexes one process-wide memory
    tier across concurrent worker threads, and an unguarded
    ``move_to_end`` racing a ``popitem`` corrupts the OrderedDict (or
    raises ``KeyError`` mid-``get``), so every mutating path holds a
    lock.  The critical sections are dict-op sized — no I/O, no user
    callbacks — so contention stays negligible next to the sweeps the
    cache fronts.
    """

    __slots__ = ("max_entries", "metric_prefix", "_data", "_lock")

    def __init__(
        self, max_entries: int = 128, metric_prefix: str | None = None
    ) -> None:
        self.max_entries = max(1, int(max_entries))
        self.metric_prefix = metric_prefix
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        if self.metric_prefix is not None:
            obs_metrics.counter(f"{self.metric_prefix}.{event}").inc()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshing recency), counting hit or miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._count("miss")
                return default
            self._count("hit")
            self._data.move_to_end(key)
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without counters or recency refresh."""
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting beyond the bound."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._count("evict")

    # dict-ish conveniences -------------------------------------------
    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        # snapshot under the lock: live OrderedDict iterators raise if a
        # concurrent put/evict mutates the dict mid-iteration
        with self._lock:
            return iter(list(self._data))

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(entries={len(self._data)}, max={self.max_entries}, "
            f"prefix={self.metric_prefix!r})"
        )
