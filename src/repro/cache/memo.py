"""Process-wide memoization of transform and analytics artifacts.

The paper's measurement protocol amortizes the one-time graph transform
and reports kernel time only; this module operationalizes that across a
whole sweep: expensive pure functions of ``(graph, stage, params)`` —
``build_plan``, clustering coefficients, BFS forest levels, diameter
estimates — consult a two-tier cache before recomputing.

* **Memory tier** — a bounded :class:`~repro.cache.lru.LRUCache`, always
  part of an enabled cache; hits are free of any I/O.
* **Disk tier** — an optional :class:`~repro.cache.store.DiskStore`
  (``--cache-dir`` / ``REPRO_CACHE_DIR``) shared by every process that
  points at the same directory, so parallel sweep workers and repeated
  or resumed runs skip transforms entirely.

Caching is **off by default** (``active()`` is ``None`` and
:func:`memoize` just calls through) so unit tests and fault-injection
runs see every computation; a sweep opts in via :func:`configure`, the
CLI flag, or the environment variable.  Keys are content addresses
(:mod:`repro.cache.keys`), so there is no invalidation protocol: a
changed graph, knob, device, or seed simply misses.

Every lookup runs under a ``cache.lookup`` span (attributes: stage and
outcome) and maintains counters ``cache.<stage>.{hit,miss,store}``
alongside the tier-level ``cache.mem.{hit,miss,evict}`` and
``cache.disk.{store,corrupt}``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .keys import artifact_key, canonical_params
from .lru import LRUCache
from .store import MISS, DiskStore

__all__ = [
    "CacheConfig",
    "active",
    "configure",
    "disable",
    "enabled",
    "memoize",
    "memoize_arrays",
    "memoize_json",
]

ENV_VAR = "REPRO_CACHE_DIR"

_SENTINEL = object()


class CacheConfig:
    """One enabled cache: a memory tier plus an optional disk tier."""

    def __init__(
        self, cache_dir: str | Path | None = None, memory_entries: int = 256
    ) -> None:
        self.memory = LRUCache(memory_entries, metric_prefix="cache.mem")
        self.disk = DiskStore(cache_dir) if cache_dir is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.disk.root if self.disk is not None else "memory-only"
        return f"CacheConfig({where}, mem={len(self.memory)})"


_active: CacheConfig | None = None
_env_checked = False


def active() -> CacheConfig | None:
    """The enabled cache, if any.

    On first call, ``REPRO_CACHE_DIR`` in the environment auto-enables a
    disk-backed cache — this is how spawned worker processes and bare
    library users pick the cache up without plumbing a flag through.
    """
    global _active, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        env_dir = os.environ.get(ENV_VAR)
        if env_dir:
            _active = CacheConfig(cache_dir=env_dir)
    return _active


def configure(
    cache_dir: str | Path | None = None, memory_entries: int = 256
) -> CacheConfig:
    """Enable (or reconfigure) the process cache; returns the config.

    Reconfiguring with the same directory keeps the existing config (and
    its warm memory tier) rather than discarding it.
    """
    global _active, _env_checked
    _env_checked = True
    if (
        _active is not None
        and cache_dir is not None
        and _active.disk is not None
        and _active.disk.root == Path(cache_dir)
    ):
        return _active
    _active = CacheConfig(cache_dir=cache_dir, memory_entries=memory_entries)
    return _active


def disable() -> None:
    """Turn caching off for this process (the default state)."""
    global _active, _env_checked
    _active = None
    _env_checked = True


@contextmanager
def enabled(
    cache_dir: str | Path | None = None, memory_entries: int = 256
) -> Iterator[CacheConfig]:
    """Scoped enablement — restores the previous config on exit."""
    global _active, _env_checked
    prev, prev_checked = _active, _env_checked
    try:
        _active = CacheConfig(cache_dir=cache_dir, memory_entries=memory_entries)
        _env_checked = True
        yield _active
    finally:
        _active, _env_checked = prev, prev_checked


# ---------------------------------------------------------------------------
# the memoization entry points
# ---------------------------------------------------------------------------
def memoize(
    stage: str,
    graph: Any,
    params: Any,
    compute: Callable[[], Any],
    *,
    save: Callable[[Any, Path], None] | None = None,
    load: Callable[[Path, dict], Any] | None = None,
    extra_meta: Callable[[Any], dict] | None = None,
) -> Any:
    """Return the cached artifact for ``(graph, stage, params)`` or compute it.

    ``graph`` is anything with a ``fingerprint()`` method (a
    :class:`~repro.graphs.csr.CSRGraph`) or a pre-computed fingerprint
    string.  ``save(value, path)`` / ``load(path, meta)`` give the disk
    tier its codec; omit them for memory-tier-only artifacts.
    ``extra_meta(value)`` contributes additional sidecar metadata fields
    (:func:`memoize_json` rides the value itself through this).
    """
    cfg = active()
    if cfg is None:
        return compute()
    fp = graph.fingerprint() if hasattr(graph, "fingerprint") else str(graph)
    key = artifact_key(fp, stage, params)
    with obs_trace.span("cache.lookup", stage=stage) as sp:
        value = cfg.memory.get(key, _SENTINEL)
        if value is not _SENTINEL:
            obs_metrics.counter(f"cache.{stage}.hit").inc()
            if sp is not None:
                sp.set(outcome="memory")
            return value
        if cfg.disk is not None and load is not None:
            got = cfg.disk.get(stage, key, load)
            if got is not MISS:
                obs_metrics.counter(f"cache.{stage}.hit").inc()
                cfg.memory.put(key, got)
                if sp is not None:
                    sp.set(outcome="disk")
                return got
        obs_metrics.counter(f"cache.{stage}.miss").inc()
        if sp is not None:
            sp.set(outcome="miss")
    value = compute()
    cfg.memory.put(key, value)
    if cfg.disk is not None and save is not None:
        meta = {"graph_fingerprint": fp, "params": canonical_params(params)}
        if extra_meta is not None:
            meta.update(extra_meta(value))
        cfg.disk.put(stage, key, meta, lambda path: save(value, path))
        obs_metrics.counter(f"cache.{stage}.store").inc()
    return value


def memoize_arrays(
    stage: str,
    graph: Any,
    params: Any,
    compute: Callable[[], Any],
    *,
    pack: Callable[[Any], dict],
    unpack: Callable[[dict], Any],
) -> Any:
    """:func:`memoize` with a numpy-archive disk codec.

    ``pack(value)`` names the arrays to persist; ``unpack(mapping)``
    rebuilds the value from the loaded archive.
    """

    def _save(value: Any, path: Path) -> None:
        with path.open("wb") as fh:
            np.savez_compressed(fh, **pack(value))

    def _load(path: Path, _meta: dict) -> Any:
        with np.load(path) as data:
            return unpack({name: data[name] for name in data.files})

    return memoize(stage, graph, params, compute, save=_save, load=_load)


def memoize_json(
    stage: str,
    graph: Any,
    params: Any,
    compute: Callable[[], Any],
    *,
    to_jsonable: Callable[[Any], Any],
    from_jsonable: Callable[[Any], Any],
) -> Any:
    """:func:`memoize` for small scalar/record artifacts.

    The value rides in the metadata sidecar (``meta["value"]``); the npz
    payload is an empty placeholder kept for the uniform checksum story.
    """

    def _save(value: Any, path: Path) -> None:
        with path.open("wb") as fh:
            np.savez_compressed(fh, __empty__=np.empty(0))

    def _load(_path: Path, meta: dict) -> Any:
        return from_jsonable(meta["value"])

    return memoize(
        stage,
        graph,
        params,
        compute,
        save=_save,
        load=_load,
        extra_meta=lambda value: {"value": to_jsonable(value)},
    )
