"""On-disk tier of the artifact cache: npz payloads + JSON metadata.

One cached artifact is two files under ``<root>/<stage>/``:

* ``<key>.npz`` — the payload (numpy arrays; for execution plans the
  :mod:`repro.core.serialize` format), written via a same-directory
  temporary file and :func:`os.replace`, so readers never observe a
  half-written payload;
* ``<key>.json`` — the metadata sidecar: stage, graph/params
  fingerprints, a human-readable params description, creation time, and
  the SHA-1 checksum + byte size of the payload.  The sidecar is written
  *after* the payload and doubles as the commit marker: an entry without
  a readable sidecar, or whose payload fails the checksum, is treated as
  a miss (counted on ``cache.disk.corrupt``), deleted best-effort, and
  recomputed — a truncated or bit-rotted entry can never be trusted into
  a sweep.

Because keys are content addresses, concurrent writers of the same key
are writing the same artifact; last-``os.replace`` wins and every reader
sees either a complete old entry, a complete new entry, or a detectable
mismatch (which degrades to recompute).  No locks are needed.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from ..errors import CacheError
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..resilience.faults import fault_point

__all__ = ["DiskStore", "MISS"]

logger = get_logger("cache.store")

#: sentinel returned by :meth:`DiskStore.get` when the entry is absent or bad
MISS = object()

_META_SUFFIX = ".json"
_PAYLOAD_SUFFIX = ".npz"


def _sha1_file(path: Path) -> str:
    h = hashlib.sha1()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_replace(tmp: Path, final: Path) -> None:
    with tmp.open("rb+") as fh:
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)


class DiskStore:
    """Content-addressed artifact store rooted at one directory.

    ``breaker`` is an optional circuit breaker (duck-typed:
    :class:`repro.serve.breaker.CircuitBreaker`) guarding the disk tier:
    when it refuses (:meth:`allow` is false) reads answer :data:`MISS`
    and writes are skipped without touching the filesystem, and every
    disk operation reports its latency/outcome back so repeated
    corruption or slow reads trip it.  The long-lived server installs
    one; batch runs leave it ``None``.
    """

    def __init__(self, root: str | Path, breaker=None) -> None:
        self.root = Path(root)
        self.breaker = breaker
        if self.root.exists() and not self.root.is_dir():
            raise CacheError(f"cache dir {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _paths(self, stage: str, key: str) -> tuple[Path, Path]:
        d = self.root / stage
        return d / f"{key}{_PAYLOAD_SUFFIX}", d / f"{key}{_META_SUFFIX}"

    def _discard(self, stage: str, key: str) -> None:
        for path in self._paths(stage, key):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def get(
        self, stage: str, key: str, loader: Callable[[Path, dict], Any]
    ) -> Any:
        """Load one artifact, or :data:`MISS`.

        ``loader(payload_path, meta)`` decodes the verified payload; a
        loader exception is treated like corruption (count, discard,
        miss) — a cache can make a sweep faster, never make it fail.
        """
        if self.breaker is not None and not self.breaker.allow():
            obs_metrics.counter("cache.disk.breaker_skip").inc()
            return MISS
        payload, meta_path = self._paths(stage, key)
        t0 = time.perf_counter()
        try:
            fault_point("cache", f"get:{stage}:{key}")
            if not meta_path.exists() or not payload.exists():
                # a clean miss is a *healthy* disk answer: report it as a
                # success so a half-open probe that lands on an absent
                # entry still closes the breaker
                if self.breaker is not None:
                    self.breaker.record_success(time.perf_counter() - t0)
                return MISS
            meta = json.loads(meta_path.read_text())
            checksum = meta["checksum"]
            if _sha1_file(payload) != checksum:
                raise CacheError("payload checksum mismatch")
            value = loader(payload, meta)
        except Exception as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            obs_metrics.counter("cache.disk.corrupt").inc()
            logger.warning(
                "discarding corrupt cache entry %s/%s: %s", stage, key, exc
            )
            self._discard(stage, key)
            return MISS
        if self.breaker is not None:
            self.breaker.record_success(time.perf_counter() - t0)
        return value

    def put(
        self,
        stage: str,
        key: str,
        meta: Mapping[str, Any],
        saver: Callable[[Path], None],
    ) -> None:
        """Persist one artifact atomically.

        ``saver(path)`` must write the complete payload to ``path``.
        A failed store is logged and swallowed — same rationale as
        corrupt reads.
        """
        if self.breaker is not None and not self.breaker.allow():
            obs_metrics.counter("cache.disk.breaker_skip").inc()
            return
        payload, meta_path = self._paths(stage, key)
        payload.parent.mkdir(parents=True, exist_ok=True)
        tmp_payload = payload.with_name(f"{payload.name}.tmp{os.getpid()}")
        tmp_meta = meta_path.with_name(f"{meta_path.name}.tmp{os.getpid()}")
        try:
            fault_point("cache", f"put:{stage}:{key}")
            saver(tmp_payload)
            full_meta = dict(meta)
            full_meta.update(
                stage=stage,
                key=key,
                checksum=_sha1_file(tmp_payload),
                payload_bytes=tmp_payload.stat().st_size,
                created=time.time(),
            )
            tmp_meta.write_text(json.dumps(full_meta, sort_keys=True) + "\n")
            _atomic_replace(tmp_payload, payload)
            _atomic_replace(tmp_meta, meta_path)
            obs_metrics.counter("cache.disk.store").inc()
            if self.breaker is not None:
                self.breaker.record_success(0.0)
        except Exception as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            logger.warning("failed to store cache entry %s/%s: %s", stage, key, exc)
            for tmp in (tmp_payload, tmp_meta):
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # inspection / maintenance (the `python -m repro cache` surface)
    # ------------------------------------------------------------------
    def entries(self, stage: str | None = None) -> list[dict]:
        """Metadata of every (readable) entry, newest first."""
        out: list[dict] = []
        stages = [self.root / stage] if stage else sorted(self.root.iterdir())
        for stage_dir in stages:
            if not stage_dir.is_dir():
                continue
            for meta_path in sorted(stage_dir.glob(f"*{_META_SUFFIX}")):
                try:
                    meta = json.loads(meta_path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                meta.setdefault("stage", stage_dir.name)
                out.append(meta)
        out.sort(key=lambda m: m.get("created", 0.0), reverse=True)
        return out

    def stats(self) -> dict:
        """Aggregate entry counts and payload bytes, per stage and total."""
        per_stage: dict[str, dict] = {}
        for meta in self.entries():
            st = per_stage.setdefault(
                meta.get("stage", "?"), {"entries": 0, "payload_bytes": 0}
            )
            st["entries"] += 1
            st["payload_bytes"] += int(meta.get("payload_bytes", 0))
        return {
            "root": str(self.root),
            "entries": sum(s["entries"] for s in per_stage.values()),
            "payload_bytes": sum(s["payload_bytes"] for s in per_stage.values()),
            "stages": per_stage,
        }

    def clear(self, stage: str | None = None) -> int:
        """Delete entries (optionally only one stage); returns count removed."""
        removed = 0
        stages = [self.root / stage] if stage else list(self.root.iterdir())
        for stage_dir in stages:
            if not stage_dir.is_dir():
                continue
            for path in list(stage_dir.iterdir()):
                if path.suffix in (_PAYLOAD_SUFFIX, _META_SUFFIX) or ".tmp" in path.name:
                    if path.suffix == _META_SUFFIX:
                        removed += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
            try:
                stage_dir.rmdir()
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskStore({str(self.root)!r})"
