"""Graffix core: the paper's three approximate graph transforms."""

from .autotune import TuneResult, autotune
from .coalesce import GraffixGraph, transform_graph
from .confluence import CONFLUENCE_OPERATORS, merge_replicas
from .divergence import DivergencePlan, bucket_order, degree_sim, normalize_degrees
from .knobs import (
    CoalescingKnobs,
    DivergenceKnobs,
    SharedMemoryKnobs,
    recommended_cc_threshold,
    recommended_connectedness,
)
from .pipeline import TECHNIQUES, ExecutionPlan, build_plan
from .renumber import RenumberResult, renumber
from .report import TransformReport, report_transform
from .serialize import load_plan, save_plan
from .replicate import ReplicationResult, replicate
from .shmem import SharedMemoryPlan, plan_shared_memory

__all__ = [
    "CONFLUENCE_OPERATORS",
    "CoalescingKnobs",
    "DivergenceKnobs",
    "DivergencePlan",
    "ExecutionPlan",
    "GraffixGraph",
    "RenumberResult",
    "ReplicationResult",
    "SharedMemoryKnobs",
    "SharedMemoryPlan",
    "TECHNIQUES",
    "TransformReport",
    "TuneResult",
    "autotune",
    "bucket_order",
    "build_plan",
    "degree_sim",
    "merge_replicas",
    "normalize_degrees",
    "plan_shared_memory",
    "recommended_cc_threshold",
    "recommended_connectedness",
    "renumber",
    "report_transform",
    "load_plan",
    "save_plan",
    "replicate",
    "transform_graph",
]
