"""Automatic knob selection: the paper's threshold guidelines, closed-loop.

§5.2-§5.4 give *guidelines* for picking each technique's threshold from
graph statistics; this module goes one step further (a natural extension
the paper leaves open) and searches the knob space directly, scoring each
candidate with a cheap SSSP probe on the simulator:

    score = speedup - accuracy_weight * (inaccuracy / 100)

The search is tiny (a handful of candidates seeded by the guidelines), so
it stays well under the one-time preprocessing budget the paper already
assumes, and it is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.properties import clustering_coefficients, gini_of_degrees
from ..gpusim.device import DeviceConfig, K40C
from .knobs import (
    CoalescingKnobs,
    DivergenceKnobs,
    SharedMemoryKnobs,
    recommended_cc_threshold,
    recommended_connectedness,
)
from .pipeline import ExecutionPlan, build_plan

__all__ = ["TuneResult", "autotune"]


@dataclass
class TuneResult:
    """Outcome of an autotuning run for one technique."""

    technique: str
    best_plan: ExecutionPlan
    best_threshold: float
    best_score: float
    trials: list[dict] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"autotune[{self.technique}]: best threshold "
            f"{self.best_threshold:.2f} (score {self.best_score:.3f})"
        ]
        for t in self.trials:
            lines.append(
                f"  thr={t['threshold']:.2f} speedup={t['speedup']:.3f} "
                f"inaccuracy={t['inaccuracy_percent']:.2f}% score={t['score']:.3f}"
            )
        return "\n".join(lines)


def _probe(graph: CSRGraph, plan: ExecutionPlan, device: DeviceConfig,
           exact_cycles: float, exact_values: np.ndarray, source: int):
    from ..algorithms.sssp import sssp
    from ..eval.accuracy import attribute_inaccuracy

    approx = sssp(plan, source, device=device)
    speedup = exact_cycles / approx.cycles if approx.cycles else float("inf")
    inacc = attribute_inaccuracy(exact_values, approx.values)
    return speedup, inacc


def _candidates(graph: CSRGraph, technique: str) -> list[float]:
    """Guideline-seeded candidate thresholds for each technique."""
    if technique == "coalescing":
        seed = recommended_connectedness(gini_of_degrees(graph))
        return sorted({max(0.1, seed - 0.2), seed, min(1.0, seed + 0.2)})
    if technique == "shmem":
        seed = recommended_cc_threshold(clustering_coefficients(graph))
        return sorted({max(0.2, seed - 0.2), seed, min(0.95, seed + 0.1)})
    if technique == "divergence":
        return [0.1, 0.3, 0.5]
    raise TransformError(f"autotune does not handle technique {technique!r}")


def _plan_with_threshold(
    graph: CSRGraph, technique: str, thr: float, device: DeviceConfig
) -> ExecutionPlan:
    if technique == "coalescing":
        return build_plan(
            graph, technique, device=device,
            coalescing=CoalescingKnobs(connectedness_threshold=thr),
        )
    if technique == "shmem":
        return build_plan(
            graph, technique, device=device,
            shmem=SharedMemoryKnobs(cc_threshold=thr),
        )
    return build_plan(
        graph, technique, device=device,
        divergence=DivergenceKnobs(degree_sim_threshold=thr),
    )


def autotune(
    graph: CSRGraph,
    technique: str,
    *,
    accuracy_weight: float = 2.0,
    device: DeviceConfig = K40C,
    source: int | None = None,
) -> TuneResult:
    """Pick the best threshold for ``technique`` on ``graph``.

    ``accuracy_weight`` sets how many speedup points one full unit of
    inaccuracy costs in the score; raise it for accuracy-critical
    deployments.  The probe workload is SSSP from the max-out-degree node
    (override with ``source``).
    """
    if accuracy_weight < 0:
        raise TransformError("accuracy_weight must be non-negative")
    from ..algorithms.sssp import sssp

    if source is None:
        source = int(np.argmax(graph.out_degrees()))
    exact = sssp(graph, source, device=device)

    trials: list[dict] = []
    best: tuple[float, float, ExecutionPlan] | None = None
    for thr in _candidates(graph, technique):
        plan = _plan_with_threshold(graph, technique, thr, device)
        speedup, inacc = _probe(
            graph, plan, device, exact.cycles, exact.values, source
        )
        score = speedup - accuracy_weight * inacc / 100.0
        trials.append(
            {
                "threshold": thr,
                "speedup": speedup,
                "inaccuracy_percent": inacc,
                "score": score,
            }
        )
        if best is None or score > best[0]:
            best = (score, thr, plan)

    assert best is not None
    return TuneResult(
        technique=technique,
        best_plan=best[2],
        best_threshold=best[1],
        best_score=best[0],
        trials=trials,
    )
