"""Driver for the §2 coalescing transform: renumber + replicate.

``transform_graph`` is the paper's ``TransformGraph()``: it produces a
:class:`GraffixGraph` — a slot-space CSR graph (holes included) together
with the bookkeeping needed to run any vertex-centric algorithm on it and
map the results back to original node ids:

* ``lift`` copies an original-space attribute vector into slot space
  (each replica starts with its original's value, holes get a fill);
* ``lower`` reads results back out of the primary slots;
* ``replica_groups`` feeds the per-iteration confluence merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..obs import trace as obs_trace
from .knobs import CoalescingKnobs
from .renumber import RenumberResult, renumber
from .replicate import ReplicationResult, replicate

__all__ = ["GraffixGraph", "transform_graph"]


@dataclass
class GraffixGraph:
    """A coalescing-transformed graph plus original-space mappings.

    Attributes
    ----------
    graph:
        slot-space CSR graph (``num_slots`` nodes; unfilled holes are
        isolated degree-0 slots, exactly as they waste lanes on a GPU).
    rep_of:
        ``slot -> original`` node id, -1 for unfilled holes.
    primary_slot:
        ``original -> slot`` of the principal copy.
    num_original:
        node count of the pre-transform graph.
    chunk_size:
        the ``k`` used for level alignment and chunking.
    renumbering / replication:
        the intermediate results, kept for inspection and tests.
    """

    graph: CSRGraph
    rep_of: np.ndarray
    primary_slot: np.ndarray
    num_original: int
    chunk_size: int
    renumbering: RenumberResult
    replication: ReplicationResult
    _groups: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False
    )

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return self.graph.num_nodes

    @property
    def num_replicas(self) -> int:
        return int(self.replication.replicas.shape[0])

    @property
    def num_holes(self) -> int:
        return int(np.count_nonzero(self.rep_of < 0))

    @property
    def edges_added(self) -> int:
        return self.replication.edges_added

    def extra_space_fraction(self, original: CSRGraph) -> float:
        """Additional memory of the transformed CSR vs. the original, as a
        fraction (the paper's Table 5 'Additional space' column)."""
        orig_words = original.num_nodes + 1 + original.num_edges * (
            2 if original.is_weighted else 1
        )
        new_words = self.num_slots + 1 + self.graph.num_edges * (
            2 if self.graph.is_weighted else 1
        )
        return (new_words - orig_words) / orig_words

    # ------------------------------------------------------------------
    def lift(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Expand an original-space attribute vector into slot space."""
        values = np.asarray(values, dtype=np.float64)
        if values.size != self.num_original:
            raise TransformError(
                f"expected {self.num_original} values, got {values.size}"
            )
        out = np.full(self.num_slots, fill, dtype=np.float64)
        occupied = self.rep_of >= 0
        out[occupied] = values[self.rep_of[occupied]]
        return out

    def lower(self, slot_values: np.ndarray) -> np.ndarray:
        """Read an attribute vector back into original-node space."""
        slot_values = np.asarray(slot_values, dtype=np.float64)
        if slot_values.size != self.num_slots:
            raise TransformError(
                f"expected {self.num_slots} slot values, got {slot_values.size}"
            )
        return slot_values[self.primary_slot]

    def replica_groups(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat (slots, group_ids, group_sizes) arrays for confluence.

        Only originals with >= 2 copies appear.  ``slots`` concatenates the
        member slots of every group; ``group_ids`` is parallel to it;
        ``group_sizes[g]`` is the member count of group ``g``.
        """
        if self._groups is None:
            occupied = np.nonzero(self.rep_of >= 0)[0]
            owners = self.rep_of[occupied]
            order = np.argsort(owners, kind="stable")
            occ_sorted = occupied[order]
            own_sorted = owners[order]
            uniq, starts, counts = np.unique(
                own_sorted, return_index=True, return_counts=True
            )
            multi = counts >= 2
            slots_list: list[np.ndarray] = []
            gid_list: list[np.ndarray] = []
            sizes: list[int] = []
            g = 0
            for s, c in zip(starts[multi], counts[multi]):
                slots_list.append(occ_sorted[s : s + c])
                gid_list.append(np.full(c, g, dtype=np.int64))
                sizes.append(int(c))
                g += 1
            if slots_list:
                self._groups = (
                    np.concatenate(slots_list),
                    np.concatenate(gid_list),
                    np.asarray(sizes, dtype=np.int64),
                )
            else:
                empty = np.empty(0, dtype=np.int64)
                self._groups = (empty, empty, empty)
        return self._groups


def transform_graph(
    graph: CSRGraph, knobs: CoalescingKnobs | None = None
) -> GraffixGraph:
    """Apply the full §2 coalescing transform.

    With ``connectedness_threshold = 1.0`` and a graph where no chunk
    reaches full connectedness, this degenerates to the *exact*
    renumbering (no replicas, no added edges) — a property the tests use.
    """
    knobs = knobs or CoalescingKnobs()
    with obs_trace.span("transform.renumber", chunk_size=knobs.chunk_size):
        ren = renumber(graph, knobs.chunk_size)
    with obs_trace.span("transform.replicate") as sp:
        rep = replicate(graph, ren, knobs)
        if sp is not None:
            sp.set(num_slots=rep.graph.num_nodes, edges_added=rep.edges_added)
    return GraffixGraph(
        graph=rep.graph,
        rep_of=rep.rep_of,
        primary_slot=rep.primary_slot,
        num_original=graph.num_nodes,
        chunk_size=knobs.chunk_size,
        renumbering=ren,
        replication=rep,
    )
