"""Confluence: merging attribute values across node replicas (§2.4).

Replicas of a node may drift apart within a kernel iteration; since they
logically represent the same node, Graffix merges them after every
iteration.  The paper's default operator is the *algorithm-agnostic*
arithmetic mean; algorithm-aware operators (``min`` for distance-like
attributes, ``max``, ``sum``) are provided for the D1 ablation.

Non-finite values (``inf`` distance sentinels for not-yet-reached nodes)
are excluded from the mean — merging an uninitialized sentinel into an
actual distance would be meaningless on the GPU too, where the sentinel is
just a large constant.  If every copy is non-finite the group keeps its
sentinel.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import TransformError
from .coalesce import GraffixGraph

__all__ = ["merge_replicas", "CONFLUENCE_OPERATORS"]


def _merge_mean(values: np.ndarray, slots, gids, sizes) -> None:
    member_vals = values[slots]
    finite = np.isfinite(member_vals)
    num_groups = sizes.size
    finite_counts = np.bincount(gids[finite], minlength=num_groups)
    sums = np.bincount(
        gids[finite], weights=member_vals[finite], minlength=num_groups
    )
    has_finite = finite_counts > 0
    means = np.where(has_finite, sums / np.maximum(finite_counts, 1), np.inf)
    # groups with no finite member keep each member's current value
    merged = np.where(has_finite[gids], means[gids], member_vals)
    values[slots] = merged


def _reduce_then_broadcast(
    reducer: Callable[[np.ndarray, np.ndarray, int], np.ndarray]
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]:
    def merge(values: np.ndarray, slots, gids, sizes) -> None:
        member_vals = values[slots]
        reduced = reducer(member_vals, gids, sizes.size)
        values[slots] = reduced[gids]

    return merge


def _group_min(vals: np.ndarray, gids: np.ndarray, n: int) -> np.ndarray:
    out = np.full(n, np.inf)
    np.minimum.at(out, gids, vals)
    return out


def _group_max(vals: np.ndarray, gids: np.ndarray, n: int) -> np.ndarray:
    out = np.full(n, -np.inf)
    np.maximum.at(out, gids, vals)
    return out


def _group_sum(vals: np.ndarray, gids: np.ndarray, n: int) -> np.ndarray:
    finite = np.isfinite(vals)
    return np.bincount(gids[finite], weights=vals[finite], minlength=n)


#: name -> in-place merge function(values, slots, gids, sizes)
CONFLUENCE_OPERATORS: dict[
    str, Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]
] = {
    "mean": _merge_mean,
    "min": _reduce_then_broadcast(_group_min),
    "max": _reduce_then_broadcast(_group_max),
    "sum": _reduce_then_broadcast(_group_sum),
}


def merge_replicas(
    values: np.ndarray, gg: GraffixGraph, operator: str = "mean"
) -> np.ndarray:
    """Merge replica attribute values in place; returns ``values``.

    ``operator`` is a key of :data:`CONFLUENCE_OPERATORS`.  The default
    ``"mean"`` is the paper's generic confluence.
    """
    if operator not in CONFLUENCE_OPERATORS:
        raise TransformError(
            f"unknown confluence operator {operator!r}; "
            f"choose from {sorted(CONFLUENCE_OPERATORS)}"
        )
    slots, gids, sizes = gg.replica_groups()
    if slots.size == 0:
        return values
    CONFLUENCE_OPERATORS[operator](values, slots, gids, sizes)
    return values
