"""§4: reducing thread divergence by degree bucketing + edge padding.

Full degree-sorting "is often an overkill, since having nearly-uniform
degrees only within each warp often suffices" — so Graffix bucket-sorts
nodes by degree, assigns buckets to warps in order, and then *pads* the
degree of deficient warp-nodes by adding edges to their 2-hop neighbours:

* a node qualifies for padding when its deficit
  ``degreeSim = 1 − deg / warpMaxDeg`` is positive but at most the
  threshold knob (it is "deficient but close");
* padded nodes are raised to ``target_fraction`` (85 %) of the warp max;
* new edges target 2-hop neighbours ("the information propagated to their
  2-hop neighbors is useful for the next iterations"), with weight =
  sum of the two hop weights for weighted graphs.

The result carries both the transformed graph and the bucket-sorted
*processing order* the simulator must use for warp formation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.properties import ragged_arange
from ..gpusim.device import DeviceConfig, K40C
from .knobs import DivergenceKnobs

__all__ = ["DivergencePlan", "bucket_order", "normalize_degrees", "degree_sim"]


@dataclass
class DivergencePlan:
    """Outcome of the §4 transform.

    Attributes
    ----------
    graph:
        the graph with padding edges added.
    order:
        node ids in bucket-sorted processing order (feed this to
        :class:`~repro.gpusim.kernel.ExecutionContext`).
    edges_added:
        total padding edges inserted (the approximation volume).
    padded_nodes:
        ids of nodes that received padding edges.
    """

    graph: CSRGraph
    order: np.ndarray
    edges_added: int
    padded_nodes: np.ndarray


def bucket_order(graph: CSRGraph, bucket_count: int) -> np.ndarray:
    """Bucket-sort node ids by out-degree.

    Buckets are degree quantiles; inside a bucket the original id order is
    kept (a bucket sort, not a full sort — the paper is explicit that full
    degree sorting is unnecessary).
    """
    if bucket_count < 1:
        raise TransformError("bucket_count must be >= 1")
    degs = graph.out_degrees()
    if degs.size == 0:
        return np.empty(0, dtype=np.int64)
    qs = np.quantile(degs, np.linspace(0, 1, bucket_count + 1)[1:-1])
    bucket = np.searchsorted(qs, degs, side="right")
    return np.argsort(bucket, kind="stable").astype(np.int64)


def degree_sim(degrees: np.ndarray, warp_size: int) -> np.ndarray:
    """Per-node ``degreeSim`` under a given warp partition of the order.

    ``degrees`` must already be in processing order; returns the paper's
    ``1 - deg / warpMaxDeg`` for each position.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if degrees.size == 0:
        return degrees.copy()
    starts = np.arange(0, degrees.size, warp_size)
    warp_max = np.maximum.reduceat(degrees, starts)
    per_node_max = np.repeat(
        warp_max, np.diff(np.append(starts, degrees.size))
    )
    out = np.zeros_like(degrees)
    nz = per_node_max > 0
    out[nz] = 1.0 - degrees[nz] / per_node_max[nz]
    return out


def normalize_degrees(
    graph: CSRGraph,
    knobs: DivergenceKnobs | None = None,
    device: DeviceConfig = K40C,
) -> DivergencePlan:
    """Apply the §4 transform: bucket order + degree padding edges."""
    knobs = knobs or DivergenceKnobs()
    n = graph.num_nodes
    if n == 0:
        raise TransformError("cannot normalize degrees of an empty graph")

    order = bucket_order(graph, knobs.bucket_count)
    degs = graph.out_degrees().astype(np.int64)
    sim = degree_sim(degs[order], device.warp_size)

    starts = np.arange(0, n, device.warp_size)
    warp_max = np.maximum.reduceat(degs[order].astype(np.float64), starts)
    per_pos_max = np.repeat(warp_max, np.diff(np.append(starts, n)))

    # deficient-but-close nodes: 0 < degreeSim <= threshold
    pad_positions = np.nonzero((sim > 0) & (sim <= knobs.degree_sim_threshold))[0]

    new_src: list[np.ndarray] = []
    new_dst: list[np.ndarray] = []
    new_w: list[np.ndarray] = []
    weighted = graph.is_weighted
    padded: list[int] = []
    edges_added = 0

    offsets, indices = graph.offsets, graph.indices

    for pos in pad_positions:
        v = int(order[pos])
        target = int(np.ceil(knobs.target_fraction * per_pos_max[pos]))
        need = target - int(degs[v])
        if need <= 0:
            continue
        direct = indices[offsets[v] : offsets[v + 1]].astype(np.int64)
        if direct.size == 0:
            continue
        # gather 2-hop candidates in adjacency order: expand every direct
        # neighbour's adjacency list, vectorized (the per-element Python
        # scan here used to be quadratic in the warp-max degree)
        mid_degs = (offsets[direct + 1] - offsets[direct]).astype(np.int64)
        if int(mid_degs.sum()) == 0:
            continue
        flat_pos = np.repeat(offsets[direct], mid_degs) + ragged_arange(mid_degs)
        flat = indices[flat_pos].astype(np.int64)
        # padding may only *add* information: never duplicate an existing
        # edge of v, never target v itself
        ok = (flat != v) & ~np.isin(flat, direct)
        flat_pos, flat = flat_pos[ok], flat[ok]
        if flat.size == 0:
            continue
        # first occurrence of each candidate, in appearance order —
        # identical to the old sequential scan's dedup semantics
        _, first = np.unique(flat, return_index=True)
        take = np.sort(first)[:need]
        cand = flat[take]
        new_src.append(np.full(cand.size, v, dtype=np.int64))
        new_dst.append(cand)
        if weighted:
            hop_w = (
                np.repeat(graph.weights[offsets[v] : offsets[v + 1]], mid_degs)[ok]
                + graph.weights[flat_pos]
            )
            new_w.append(hop_w[take].astype(np.float64))
        edges_added += int(cand.size)
        padded.append(v)

    if new_src:
        src = np.concatenate([graph.edge_sources().astype(np.int64)] + new_src)
        dst = np.concatenate([graph.indices.astype(np.int64)] + new_dst)
        w = np.concatenate([graph.weights] + new_w) if weighted else None
        # NOT dedup=True: the padding edges are already unique and disjoint
        # from v's existing edges, while a global dedup would silently drop
        # pre-existing parallel edges of the *original* graph — making the
        # approximate graph differ from the exact one by more than the
        # padding and falsifying edges_added
        out_graph = CSRGraph.from_edges(n, src, dst, w)
    else:
        out_graph = graph

    return DivergencePlan(
        graph=out_graph,
        order=order,
        edges_added=edges_added,
        padded_nodes=np.asarray(padded, dtype=np.int64),
    )
