"""Tunable approximation knobs for the three Graffix techniques.

Every technique trades accuracy for speed through one primary threshold
(paper §2.3, §3, §4).  The dataclasses here validate ranges eagerly so a
bad sweep configuration fails before an hour-long benchmark run, and they
carry the paper's recommended defaults:

* coalescing: ``chunk_size k = 16``; ``connectedness`` threshold 0.6 for
  scale-free graphs, 0.4 for road networks (§2.3, §5.2);
* shared memory: a high clustering-coefficient cut-off (§3 "we recommend
  keeping the CC cut-off relatively high"), plus a global added-edge
  budget;
* divergence: ``degreeSim`` threshold 0.3 (the Figure 9 sweet spot), with
  deficient nodes boosted to 85 % of the warp max degree (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KnobError

__all__ = [
    "CoalescingKnobs",
    "SharedMemoryKnobs",
    "DivergenceKnobs",
    "recommended_connectedness",
    "recommended_cc_threshold",
]


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise KnobError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class CoalescingKnobs:
    """Knobs for the §2 renumber-and-replicate transform.

    Attributes
    ----------
    chunk_size:
        the ``k`` of Algorithm 2: level id-blocks are aligned to multiples
        of ``k`` and the nodes array is chunked by ``k`` for replication.
        ``1 <= k <= warp_size`` per §2.2.
    connectedness_threshold:
        minimum ``edges(n -> chunk) / non_hole_nodes(chunk)`` for node
        ``n`` to be replicated toward that chunk.  Lower = more replicas =
        faster but less accurate (Figure 7's knob).
    max_replicas_per_node:
        cap on how many replicas one node may receive across all chunks
        (the paper replicates greedily; the cap bounds pathological hubs).
    """

    chunk_size: int = 16
    connectedness_threshold: float = 0.6
    max_replicas_per_node: int = 4

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise KnobError(f"chunk_size must be >= 1, got {self.chunk_size}")
        _check_unit("connectedness_threshold", self.connectedness_threshold)
        if self.max_replicas_per_node < 1:
            raise KnobError("max_replicas_per_node must be >= 1")


@dataclass(frozen=True)
class SharedMemoryKnobs:
    """Knobs for the §3 clustering-coefficient / shared-memory transform.

    Attributes
    ----------
    cc_threshold:
        nodes with clustering coefficient at or above this are pinned to
        shared memory with their 1-hop neighbours (Figure 8's knob).
    boost_band:
        nodes with CC in ``[cc_threshold - boost_band, cc_threshold)`` are
        *candidates for boosting*: edges are added between their 2-hop
        neighbour pairs to lift them over the threshold (§3 case 1).
    edge_budget_fraction:
        global cap on added edges, as a fraction of the original edge
        count ("we maintain a global limit for the number of edges added
        to the graph to contain the approximation").
    iterations_factor:
        the §3 recommendation ``t ~ iterations_factor x subgraph
        diameter`` for how long a pinned cluster iterates locally.
    """

    cc_threshold: float = 0.7
    boost_band: float = 0.2
    edge_budget_fraction: float = 0.02
    iterations_factor: float = 2.0

    def __post_init__(self) -> None:
        _check_unit("cc_threshold", self.cc_threshold)
        _check_unit("boost_band", self.boost_band)
        if self.edge_budget_fraction < 0:
            raise KnobError("edge_budget_fraction must be non-negative")
        if self.iterations_factor <= 0:
            raise KnobError("iterations_factor must be positive")


@dataclass(frozen=True)
class DivergenceKnobs:
    """Knobs for the §4 degree-normalization transform.

    Attributes
    ----------
    degree_sim_threshold:
        nodes with ``degreeSim = 1 - deg/warpMaxDeg`` *at or below* this
        threshold receive edges (they are "deficient but close"); larger
        threshold = more nodes padded = more approximation (Figure 9's
        knob).
    target_fraction:
        padded nodes are brought up to this fraction of the warp's max
        degree (§5.4: "the node degree is made 85% of the warp's
        max-degree").
    bucket_count:
        number of degree buckets for the preprocessing bucket sort.
    """

    degree_sim_threshold: float = 0.3
    target_fraction: float = 0.85
    bucket_count: int = 32

    def __post_init__(self) -> None:
        _check_unit("degree_sim_threshold", self.degree_sim_threshold)
        _check_unit("target_fraction", self.target_fraction)
        if self.bucket_count < 1:
            raise KnobError("bucket_count must be >= 1")


def recommended_connectedness(degree_gini: float) -> float:
    """§5.2 guideline: high threshold for skewed (power-law) graphs, low
    for near-uniform (road) degree distributions."""
    _check_unit("degree_gini", max(0.0, min(1.0, degree_gini)))
    return 0.6 if degree_gini >= 0.3 else 0.4


def recommended_cc_threshold(cc) -> float:
    """§5.3 guideline, operationalized: keep the CC cut-off high but low
    enough that the best-clustered nodes qualify.

    Accepts either the per-node clustering-coefficient array or a
    pre-computed mean.  With the array, the threshold is 1.25x the 90th
    percentile of the *positive* coefficients — just above the best
    natural clusters, so §3's edge-boosting has near-threshold candidates
    to lift over the bar (the paper: "Adding approximation improves the
    applicability of the technique").  Clamped to [0.3, 0.9]: high enough
    for reuse to pay off, low enough to be reachable on weakly-clustered
    graphs.  A scalar falls back to the cruder ``3 x mean`` rule.
    """
    import numpy as _np

    arr = _np.asarray(cc, dtype=float)
    if arr.ndim == 0:
        return float(min(0.9, max(0.3, float(arr) * 3.0)))
    pos = arr[arr > 0]
    if pos.size == 0:
        return 0.3
    return float(min(0.9, max(0.3, 1.25 * _np.quantile(pos, 0.9))))
