"""Technique composition: one uniform execution plan for the runners.

The three Graffix transforms produce different artifacts (a slot-space
graph with replica bookkeeping; a residency plan; a processing order).
:class:`ExecutionPlan` normalizes all of them — and their combinations —
into the single structure the algorithm runners consume, so every
algorithm works unchanged with any technique (the paper's transforms are
algorithm-oblivious, and so is this plan).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..cache import memoize
from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..resilience.faults import fault_point
from .coalesce import GraffixGraph, transform_graph
from .divergence import DivergencePlan, normalize_degrees
from .knobs import CoalescingKnobs, DivergenceKnobs, SharedMemoryKnobs
from .shmem import SharedMemoryPlan, plan_shared_memory

__all__ = ["ExecutionPlan", "TECHNIQUES", "build_plan"]

TECHNIQUES = ("exact", "coalescing", "shmem", "divergence", "combined")


@dataclass
class ExecutionPlan:
    """Everything a runner needs to execute on a transformed graph.

    For the untransformed case (``technique="exact"``) the plan is simply
    the original graph with identity mappings.
    """

    technique: str
    graph: CSRGraph
    num_original: int
    order: np.ndarray | None = None
    resident_mask: np.ndarray | None = None
    cluster_graph: CSRGraph | None = None
    local_iterations: int = 0
    graffix: GraffixGraph | None = None
    confluence_operator: str = "mean"
    edges_added: int = 0
    preprocess_seconds: float = 0.0
    _shmem: SharedMemoryPlan | None = field(default=None, repr=False)
    _divergence: DivergencePlan | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def lift(self, values: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Map original-space attribute values into execution space."""
        if self.graffix is None:
            return np.asarray(values, dtype=np.float64).copy()
        return self.graffix.lift(values, fill)

    def lower(self, values: np.ndarray) -> np.ndarray:
        """Map execution-space attribute values back to original nodes."""
        if self.graffix is None:
            return np.asarray(values, dtype=np.float64)
        return self.graffix.lower(values)

    @property
    def has_replicas(self) -> bool:
        return self.graffix is not None and self.graffix.num_replicas > 0

    @property
    def has_clusters(self) -> bool:
        return (
            self.cluster_graph is not None
            and self.local_iterations > 0
            and self.resident_mask is not None
            and bool(self.resident_mask.any())
        )


def build_plan(
    graph: CSRGraph,
    technique: str,
    *,
    device: DeviceConfig = K40C,
    coalescing: CoalescingKnobs | None = None,
    shmem: SharedMemoryKnobs | None = None,
    divergence: DivergenceKnobs | None = None,
    confluence_operator: str = "mean",
) -> ExecutionPlan:
    """Build the execution plan for one technique (or their combination).

    ``technique`` is one of :data:`TECHNIQUES`.  ``"combined"`` applies
    divergence padding, then the shared-memory plan, then the coalescing
    transform — each on the previous one's output graph, mirroring the
    paper's remark that the techniques complement each other.

    With :mod:`repro.cache` enabled, the finished plan is memoized on
    ``(graph fingerprint, technique, knobs, device, confluence
    operator)``: a transformed plan is identical across all five
    algorithms and across repeated sweeps, so only the first request per
    knob setting pays the transform.  The on-disk tier round-trips
    through :mod:`repro.core.serialize` (whose tests certify loaded
    plans execute identically).
    """
    if technique not in TECHNIQUES:
        raise TransformError(
            f"unknown technique {technique!r}; choose from {TECHNIQUES}"
        )
    params = {
        "technique": technique,
        "device": device,
        # normalize None to the defaults the stages would apply, so an
        # explicit default knob object and "no knobs" share one key
        "coalescing": coalescing or CoalescingKnobs(),
        "shmem": shmem or SharedMemoryKnobs(),
        "divergence": divergence or DivergenceKnobs(),
        "confluence_operator": confluence_operator,
    }
    return memoize(
        "transform.build_plan",
        graph,
        params,
        lambda: _build_plan_traced(
            graph,
            technique,
            device=device,
            coalescing=coalescing,
            shmem=shmem,
            divergence=divergence,
            confluence_operator=confluence_operator,
        ),
        save=_save_plan_payload,
        load=_load_plan_payload,
    )


def _save_plan_payload(plan: ExecutionPlan, path) -> None:
    from .serialize import save_plan  # local import: serialize imports us

    save_plan(plan, path)


def _load_plan_payload(path, _meta: dict) -> ExecutionPlan:
    from .serialize import load_plan  # local import: serialize imports us

    return load_plan(path)


def _build_plan_traced(
    graph: CSRGraph,
    technique: str,
    *,
    device: DeviceConfig,
    coalescing: CoalescingKnobs | None,
    shmem: SharedMemoryKnobs | None,
    divergence: DivergenceKnobs | None,
    confluence_operator: str,
) -> ExecutionPlan:
    fault_point("transform", technique)
    obs_metrics.counter(f"transform.plans.{technique}").inc()
    with obs_trace.span(
        "transform.build_plan",
        technique=technique,
        nodes=graph.num_nodes,
        edges=graph.num_edges,
    ) as sp:
        plan = _build_plan_stages(
            graph,
            technique,
            device=device,
            coalescing=coalescing,
            shmem=shmem,
            divergence=divergence,
            confluence_operator=confluence_operator,
        )
    if sp is not None:
        sp.set(
            edges_added=plan.edges_added,
            preprocess_seconds=plan.preprocess_seconds,
            plan_nodes=plan.graph.num_nodes,
            plan_edges=plan.graph.num_edges,
        )
    return plan


def _build_plan_stages(
    graph: CSRGraph,
    technique: str,
    *,
    device: DeviceConfig,
    coalescing: CoalescingKnobs | None,
    shmem: SharedMemoryKnobs | None,
    divergence: DivergenceKnobs | None,
    confluence_operator: str,
) -> ExecutionPlan:
    n = graph.num_nodes
    t0 = time.perf_counter()

    if technique == "exact":
        return ExecutionPlan(
            technique="exact",
            graph=graph,
            num_original=n,
            preprocess_seconds=time.perf_counter() - t0,
        )

    if technique == "divergence":
        with obs_trace.span("transform.divergence"):
            plan = normalize_degrees(graph, divergence, device)
        return ExecutionPlan(
            technique=technique,
            graph=plan.graph,
            num_original=n,
            order=plan.order,
            edges_added=plan.edges_added,
            preprocess_seconds=time.perf_counter() - t0,
            _divergence=plan,
        )

    if technique == "shmem":
        with obs_trace.span("transform.shmem"):
            plan = plan_shared_memory(graph, shmem, device)
        return ExecutionPlan(
            technique=technique,
            graph=plan.graph,
            num_original=n,
            resident_mask=plan.resident_mask,
            cluster_graph=plan.cluster_graph,
            local_iterations=plan.local_iterations,
            edges_added=plan.edges_added,
            preprocess_seconds=time.perf_counter() - t0,
            _shmem=plan,
        )

    if technique == "coalescing":
        with obs_trace.span("transform.coalesce"):
            gg = transform_graph(graph, coalescing)
        return ExecutionPlan(
            technique=technique,
            graph=gg.graph,
            num_original=n,
            graffix=gg,
            confluence_operator=confluence_operator,
            edges_added=gg.edges_added,
            preprocess_seconds=time.perf_counter() - t0,
        )

    # combined: divergence -> shmem -> coalescing
    with obs_trace.span("transform.divergence"):
        div_plan = normalize_degrees(graph, divergence, device)
    with obs_trace.span("transform.shmem"):
        shm_plan = plan_shared_memory(div_plan.graph, shmem, device)
    with obs_trace.span("transform.coalesce"):
        gg = transform_graph(shm_plan.graph, coalescing)
    # residency and cluster edges must be lifted into slot space
    slot_resident = np.zeros(gg.num_slots, dtype=bool)
    occupied = gg.rep_of >= 0
    slot_resident[occupied] = shm_plan.resident_mask[gg.rep_of[occupied]]
    c_src = gg.renumbering.new_id[shm_plan.cluster_graph.edge_sources()]
    c_dst = gg.renumbering.new_id[shm_plan.cluster_graph.indices]
    cluster_graph = CSRGraph.from_edges(
        gg.num_slots,
        c_src.astype(np.int64),
        c_dst.astype(np.int64),
        shm_plan.cluster_graph.weights,
    )
    return ExecutionPlan(
        technique="combined",
        graph=gg.graph,
        num_original=n,
        resident_mask=slot_resident,
        cluster_graph=cluster_graph,
        local_iterations=shm_plan.local_iterations,
        graffix=gg,
        confluence_operator=confluence_operator,
        edges_added=div_plan.edges_added + shm_plan.edges_added + gg.edges_added,
        preprocess_seconds=time.perf_counter() - t0,
        _shmem=shm_plan,
        _divergence=div_plan,
    )
