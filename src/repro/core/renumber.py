"""Graffix vertex renumbering (Algorithm 2, step 1).

The scheme builds a BFS forest from highest-out-degree roots, then assigns
new ids level by level.  Two properties distinguish it from classic
locality renumbering (RCM, degree sort):

1. **round-robin child order** — within a level, ids go to "the first
   neighbor of each of the parents from the previous level … followed by
   all the second-neighbors, and so on", so the nodes that a warp's lanes
   touch *at the same step j* receive adjacent ids; and
2. **chunk-aligned levels** — each level's ids start at a multiple of the
   chunk size ``k``, which leaves *holes* (unassigned slots) at the end of
   each level block.  The holes are the real estate that step 2
   (replication) later fills.

The output is exact: ignoring holes, the renumbered graph is isomorphic to
the input (tests certify this via
:func:`repro.graphs.validate.assert_isomorphic_relabelling`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.properties import bfs_forest_levels

__all__ = ["RenumberResult", "renumber"]


@dataclass(frozen=True)
class RenumberResult:
    """Outcome of the Graffix renumbering.

    Attributes
    ----------
    new_id:
        ``new_id[old] -> slot``; slots are the ids in the renumbered
        (hole-padded) space.
    rep_of:
        ``rep_of[slot] -> old`` node id, or ``-1`` for a hole.
    levels:
        BFS-forest level of each *old* node.
    level_starts:
        slot where each level's block begins; ``level_starts[i+1] -
        level_starts[i]`` is the block width (a multiple of ``k`` except
        possibly the last).
    num_slots:
        total slots (``>= num_nodes``, a multiple of ``k``).
    chunk_size:
        the ``k`` used.
    """

    new_id: np.ndarray
    rep_of: np.ndarray
    levels: np.ndarray
    level_starts: np.ndarray
    num_slots: int
    chunk_size: int

    @property
    def num_holes(self) -> int:
        return int(np.count_nonzero(self.rep_of < 0))

    @property
    def num_levels(self) -> int:
        return int(self.level_starts.size - 1)

    def holes(self) -> np.ndarray:
        """Slot ids of all holes, ascending."""
        return np.nonzero(self.rep_of < 0)[0].astype(np.int64)

    def level_of_slot(self, slot: int) -> int:
        """BFS level whose block contains ``slot``."""
        return int(np.searchsorted(self.level_starts, slot, side="right") - 1)

    def slot_levels(self) -> np.ndarray:
        """Level of every slot (vectorized form of :meth:`level_of_slot`)."""
        return (
            np.searchsorted(
                self.level_starts, np.arange(self.num_slots), side="right"
            )
            - 1
        ).astype(np.int64)


def _round_up(value: int, k: int) -> int:
    return -(-value // k) * k


def renumber(graph: CSRGraph, chunk_size: int = 16) -> RenumberResult:
    """Run the Graffix renumbering on ``graph``.

    Implements ``RenumberVertex`` of Algorithm 2: level-0 nodes (BFS forest
    roots and their co-level peers) are numbered in decreasing-degree
    order; each subsequent level is numbered round-robin over parents'
    neighbor positions; each level's ids start at the next multiple of
    ``chunk_size``.
    """
    if chunk_size < 1:
        raise TransformError(f"chunk_size must be >= 1, got {chunk_size}")
    n = graph.num_nodes
    if n == 0:
        raise TransformError("cannot renumber an empty graph")

    levels, _roots = bfs_forest_levels(graph)
    num_levels = int(levels.max()) + 1
    out_deg = graph.out_degrees()

    new_id = np.full(n, -1, dtype=np.int64)
    level_starts = np.zeros(num_levels + 1, dtype=np.int64)

    # ---- level 0: decreasing degree, ties by old id ---------------------
    level_nodes = np.nonzero(levels == 0)[0]
    order0 = level_nodes[np.lexsort((level_nodes, -out_deg[level_nodes]))]
    new_id[order0] = np.arange(order0.size, dtype=np.int64)
    g_id = int(order0.size)

    offsets, indices = graph.offsets, graph.indices
    prev_level_nodes_by_rank = order0  # already in new-id order

    for lev in range(1, num_levels):
        g_id = _round_up(g_id, chunk_size)
        level_starts[lev] = g_id

        parents = prev_level_nodes_by_rank
        # expand all parent edges with their neighbor position j
        degs = (offsets[parents + 1] - offsets[parents]).astype(np.int64)
        total = int(degs.sum())
        assigned_order: list[np.ndarray] = []
        if total:
            seg_starts = np.concatenate(([0], np.cumsum(degs)[:-1]))
            j = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, degs)
            parent_rank = np.repeat(
                np.arange(parents.size, dtype=np.int64), degs
            )
            child = indices[
                np.repeat(offsets[parents].astype(np.int64), degs) + j
            ].astype(np.int64)
            pick = levels[child] == lev
            j, parent_rank, child = j[pick], parent_rank[pick], child[pick]
            if child.size:
                # round-robin: order by (j, parent_rank), keep the first
                # occurrence of each child
                order = np.lexsort((parent_rank, j))
                child_sorted = child[order]
                # vectorized "first occurrence in this ordering": sort by
                # (child, position-in-ordering) and keep rank-0 entries.
                first = np.zeros(child_sorted.size, dtype=bool)
                pos = np.arange(child_sorted.size, dtype=np.int64)
                by_child = np.lexsort((pos, child_sorted))
                cs = child_sorted[by_child]
                first_of_child = np.ones(cs.size, dtype=bool)
                first_of_child[1:] = cs[1:] != cs[:-1]
                first[by_child[first_of_child]] = True
                uniq_children = child_sorted[first]
                assigned_order.append(uniq_children)

        enumerated = (
            assigned_order[0] if assigned_order else np.empty(0, dtype=np.int64)
        )
        # fallback: any level-`lev` node not reachable as a parent's listed
        # neighbor (shouldn't happen for proper BFS forests, but guards
        # level-lowering corner cases) is appended in old-id order.
        lev_nodes = np.nonzero(levels == lev)[0]
        missing_mask = np.ones(n, dtype=bool)
        missing_mask[enumerated] = False
        missing = lev_nodes[missing_mask[lev_nodes]]
        full_order = (
            np.concatenate([enumerated, missing]) if missing.size else enumerated
        )
        new_id[full_order] = g_id + np.arange(full_order.size, dtype=np.int64)
        g_id += int(full_order.size)
        prev_level_nodes_by_rank = full_order

    num_slots = _round_up(g_id, chunk_size)
    level_starts[num_levels] = num_slots

    if np.any(new_id < 0):
        raise TransformError("renumbering failed to assign every node an id")

    rep_of = np.full(num_slots, -1, dtype=np.int64)
    rep_of[new_id] = np.arange(n, dtype=np.int64)

    return RenumberResult(
        new_id=new_id,
        rep_of=rep_of,
        levels=levels,
        level_starts=level_starts,
        num_slots=num_slots,
        chunk_size=chunk_size,
    )
