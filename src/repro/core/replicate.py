"""Graffix node replication (Algorithm 2, step 2).

After renumbering, the slot array is divided into chunks of ``k``.  A node
``n`` that is *well-connected* to a chunk ``C`` — i.e. ``connectedness =
edges(n -> C) / non_hole_nodes(C)`` reaches the threshold — earns a replica
``n'`` placed in a hole of the chunk at the previous BFS level (``C``'s
parent chunk region).  The replica takes over ``n``'s edges into ``C`` and
gains new edges to its 2-hop neighbours inside ``C`` (this is the
approximation: the new edges speed up propagation at a small accuracy
cost).  When candidates outnumber holes, higher edge-counts win (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from .knobs import CoalescingKnobs
from .renumber import RenumberResult

__all__ = ["ReplicationResult", "replicate"]


@dataclass(frozen=True)
class ReplicationResult:
    """Outcome of filling renumbering holes with node replicas.

    Attributes
    ----------
    graph:
        the slot-space CSR graph *after* replication (``num_slots`` nodes;
        unfilled holes remain as isolated degree-0 slots).
    rep_of:
        ``rep_of[slot] -> original node id`` (-1 for an unfilled hole).
        Replica slots map to the node they duplicate.
    primary_slot:
        ``primary_slot[orig] -> slot`` of the node's principal copy.
    replicas:
        ``(slot, original)`` pairs for every replica created.
    edges_moved / edges_added:
        bookkeeping for the approximation report: moved edges are exact
        (just re-homed onto the replica); added 2-hop edges are the
        approximation.
    """

    graph: CSRGraph
    rep_of: np.ndarray
    primary_slot: np.ndarray
    replicas: np.ndarray
    edges_moved: int
    edges_added: int


def _slot_edges(
    graph: CSRGraph, ren: RenumberResult
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """The graph's edges relabelled into slot space."""
    src = ren.new_id[graph.edge_sources()]
    dst = ren.new_id[graph.indices]
    return src.astype(np.int64), dst.astype(np.int64), graph.weights


def replicate(
    graph: CSRGraph, ren: RenumberResult, knobs: CoalescingKnobs
) -> ReplicationResult:
    """Run ``ReplicateVertex`` on a renumbered graph."""
    if ren.chunk_size != knobs.chunk_size:
        raise TransformError(
            f"renumbering used k={ren.chunk_size} but knobs say k={knobs.chunk_size}"
        )
    k = knobs.chunk_size
    num_slots = ren.num_slots
    src, dst, weights = _slot_edges(graph, ren)
    w = weights.copy() if weights is not None else None
    src = src.copy()

    chunk_of = np.arange(num_slots, dtype=np.int64) // k
    num_chunks = num_slots // k
    slot_levels = ren.slot_levels()
    rep_of = ren.rep_of.copy()
    non_hole = rep_of >= 0
    non_hole_per_chunk = np.bincount(
        chunk_of[non_hole], minlength=num_chunks
    ).astype(np.int64)

    # --- group edges by (src slot, destination chunk) once -----------------
    edge_key = src * num_chunks + chunk_of[dst]
    edge_order = np.argsort(edge_key, kind="stable")
    sorted_keys = edge_key[edge_order]
    uniq_keys, key_starts, key_counts = np.unique(
        sorted_keys, return_index=True, return_counts=True
    )
    cand_src = (uniq_keys // num_chunks).astype(np.int64)
    cand_chunk = (uniq_keys % num_chunks).astype(np.int64)

    # chunks eligible as replication targets: level >= 1 and their parent
    # level block contains at least one hole
    chunk_level = slot_levels[np.arange(num_chunks) * k]
    holes_by_level: dict[int, list[int]] = {}
    for slot in ren.holes():
        holes_by_level.setdefault(int(slot_levels[slot]), []).append(int(slot))

    denom = non_hole_per_chunk[cand_chunk].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        connectedness = np.where(denom > 0, key_counts / denom, 0.0)
    eligible = (
        (connectedness >= knobs.connectedness_threshold)
        & (chunk_level[cand_chunk] >= 1)
        & non_hole[np.minimum(cand_src, num_slots - 1)]
    )
    # prioritize higher raw edge counts (§2.3), ties by connectedness
    order = np.lexsort((-connectedness, -key_counts))
    order = order[eligible[order]]

    # --- slot-space CSR for 2-hop lookup -----------------------------------
    # adjacency lists are sorted by *new* id: round-robin children of a
    # parent receive ascending ids in round order, so sorting preserves
    # the step-j alignment the renumbering creates while also keeping the
    # low-segment clustering that sorted CSR inputs give the baseline.
    slot_graph = CSRGraph.from_edges(num_slots, src, dst, w, sort_neighbors=True)
    # from_edges reorders edges; rebuild flat arrays aligned with it so the
    # move step below edits the arrays we will finally build from.
    src = slot_graph.edge_sources().astype(np.int64)
    dst = slot_graph.indices.astype(np.int64)
    w = slot_graph.weights
    edge_key = src * num_chunks + chunk_of[dst]
    edge_order = np.argsort(edge_key, kind="stable")
    sorted_keys = edge_key[edge_order]

    replicas_per_node: dict[int, int] = {}
    replica_rows: list[tuple[int, int]] = []
    add_src: list[np.ndarray] = []
    add_dst: list[np.ndarray] = []
    add_w: list[np.ndarray] = []
    edges_moved = 0
    edges_added = 0

    for idx in order:
        u_slot = int(cand_src[idx])
        c = int(cand_chunk[idx])
        lev = int(chunk_level[c])
        pool = holes_by_level.get(lev - 1)
        if not pool:
            continue
        orig = int(rep_of[u_slot])
        if orig < 0:
            continue
        if replicas_per_node.get(orig, 0) >= knobs.max_replicas_per_node:
            continue
        hole = pool.pop(0)
        rep_of[hole] = orig
        replicas_per_node[orig] = replicas_per_node.get(orig, 0) + 1
        replica_rows.append((hole, orig))

        # move u's edges into chunk c onto the replica
        key = u_slot * num_chunks + c
        lo = int(np.searchsorted(sorted_keys, key, side="left"))
        hi = int(np.searchsorted(sorted_keys, key, side="right"))
        moved_edges = edge_order[lo:hi]
        src[moved_edges] = hole
        edges_moved += moved_edges.size

        # add edges replica -> 2-hop neighbours of u inside chunk c
        direct = slot_graph.neighbors(u_slot).astype(np.int64)
        if direct.size:
            two_hop_chunks: list[np.ndarray] = []
            two_hop_w: list[np.ndarray] = []
            for pos, mid in enumerate(direct):
                nbrs2 = slot_graph.neighbors(int(mid)).astype(np.int64)
                in_chunk = nbrs2[chunk_of[nbrs2] == c]
                if in_chunk.size == 0:
                    continue
                two_hop_chunks.append(in_chunk)
                if w is not None:
                    base = float(slot_graph.edge_weights_of(u_slot)[pos])
                    mid_w = slot_graph.edge_weights_of(int(mid))
                    two_hop_w.append(
                        base + mid_w[chunk_of[nbrs2] == c]
                    )
            if two_hop_chunks:
                targets = np.concatenate(two_hop_chunks)
                t_w = np.concatenate(two_hop_w) if w is not None else None
                # drop existing direct targets and self references
                direct_in_c = direct[chunk_of[direct] == c]
                drop = np.isin(targets, direct_in_c) | (targets == u_slot)
                targets = targets[~drop]
                if t_w is not None:
                    t_w = t_w[~drop]
                if targets.size:
                    # keep the minimum-weight path per distinct target
                    if t_w is not None:
                        o2 = np.lexsort((t_w, targets))
                        targets, t_w = targets[o2], t_w[o2]
                        firsts = np.ones(targets.size, dtype=bool)
                        firsts[1:] = targets[1:] != targets[:-1]
                        targets, t_w = targets[firsts], t_w[firsts]
                    else:
                        targets = np.unique(targets)
                    add_src.append(np.full(targets.size, hole, dtype=np.int64))
                    add_dst.append(targets)
                    if t_w is not None:
                        add_w.append(t_w)
                    edges_added += targets.size

    if add_src:
        src = np.concatenate([src] + add_src)
        dst = np.concatenate([dst] + add_dst)
        if w is not None:
            w = np.concatenate([w] + add_w)

    # no dedup here: the construction above cannot introduce duplicates
    # (added targets exclude existing direct edges; one replica per
    # (node, chunk); distinct replicas have distinct source slots), and a
    # dedup pass would re-sort adjacencies.
    final = CSRGraph.from_edges(num_slots, src, dst, w, sort_neighbors=True)

    primary_slot = ren.new_id.copy()
    replicas = (
        np.asarray(replica_rows, dtype=np.int64).reshape(-1, 2)
        if replica_rows
        else np.empty((0, 2), dtype=np.int64)
    )
    return ReplicationResult(
        graph=final,
        rep_of=rep_of,
        primary_slot=primary_slot,
        replicas=replicas,
        edges_moved=edges_moved,
        edges_added=max(0, edges_added),
    )
