"""Transform-quality reports: what a transform did, before any algorithm runs.

The paper's knobs are indirect (a threshold), but their effects are
concrete: how many holes the renumbering created and how many got filled,
how connected the replicas are, how much clustering the §3 edges bought,
how uniform the warp degrees became.  This module measures those effects
directly on the plan — plus a one-sweep cost-model probe quantifying the
expected per-sweep benefit — so a user can judge a transform *before*
paying for a full algorithm run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.properties import clustering_coefficients
from ..gpusim.costmodel import charge_sweep
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.warp import divergence_stats, form_warps
from .pipeline import ExecutionPlan

__all__ = ["TransformReport", "report_transform"]


@dataclass(frozen=True)
class TransformReport:
    """Structural + cost-probe summary of one execution plan."""

    technique: str
    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int
    edges_added: int
    holes: int
    replicas: int
    hole_occupancy: float
    resident_nodes: int
    mean_cc_before: float
    mean_cc_after: float
    divergence_before: float
    divergence_after: float
    probe_cycles_before: float
    probe_cycles_after: float

    @property
    def probe_speedup(self) -> float:
        """Single-sweep cost ratio — the per-iteration benefit estimate
        (convergence effects come on top at run time)."""
        if self.probe_cycles_after == 0:
            return float("inf")
        return self.probe_cycles_before / self.probe_cycles_after

    def render(self) -> str:
        lines = [
            f"transform report: {self.technique}",
            "-" * (18 + len(self.technique)),
            f"nodes   {self.nodes_before} -> {self.nodes_after} "
            f"({self.holes} holes, {self.replicas} replicas, "
            f"occupancy {self.hole_occupancy:.0%})",
            f"edges   {self.edges_before} -> {self.edges_after} "
            f"(+{self.edges_added} approximation edges)",
            f"resident in shared memory: {self.resident_nodes} nodes",
            f"mean clustering coefficient {self.mean_cc_before:.3f} -> "
            f"{self.mean_cc_after:.3f}",
            f"divergence ratio {self.divergence_before:.2f} -> "
            f"{self.divergence_after:.2f}",
            f"one-sweep cost probe: {self.probe_cycles_before:,.0f} -> "
            f"{self.probe_cycles_after:,.0f} cycles "
            f"({self.probe_speedup:.2f}x per sweep)",
        ]
        return "\n".join(lines)


def report_transform(
    original: CSRGraph,
    plan: ExecutionPlan,
    *,
    device: DeviceConfig = K40C,
    probe_cc: bool = True,
) -> TransformReport:
    """Measure what ``plan`` did to ``original``.

    ``probe_cc=False`` skips the clustering-coefficient recomputation
    (the costliest part) for quick inspection loops.
    """
    if plan.num_original != original.num_nodes:
        raise TransformError(
            "plan was not built from this graph "
            f"({plan.num_original} vs {original.num_nodes} nodes)"
        )
    if plan.graffix is not None:
        holes = plan.graffix.num_holes + plan.graffix.num_replicas
        replicas = plan.graffix.num_replicas
        occupancy = replicas / holes if holes else 1.0
    else:
        holes = 0
        replicas = 0
        occupancy = 1.0

    resident = (
        int(plan.resident_mask.sum()) if plan.resident_mask is not None else 0
    )

    if probe_cc:
        cc_before = float(clustering_coefficients(original).mean())
        # compare like with like: measure CC over the occupied transformed
        # structure (holes have no edges and would only dilute the mean)
        cc_after = float(clustering_coefficients(plan.graph).mean()) * (
            plan.graph.num_nodes / max(1, original.num_nodes)
        )
    else:
        cc_before = cc_after = float("nan")

    dev = device
    order_before = np.arange(original.num_nodes, dtype=np.int64)
    div_before = divergence_stats(
        form_warps(order_before, dev.warp_size),
        original.out_degrees().astype(np.int64),
        dev.warp_size,
    ).divergence_ratio
    order_after = (
        plan.order
        if plan.order is not None
        else np.arange(plan.graph.num_nodes, dtype=np.int64)
    )
    div_after = divergence_stats(
        form_warps(order_after, dev.warp_size),
        plan.graph.out_degrees()[order_after].astype(np.int64),
        dev.warp_size,
    ).divergence_ratio

    probe_before = charge_sweep(original, dev).cycles
    probe_after = charge_sweep(
        plan.graph,
        dev,
        order_after,
        resident_mask=plan.resident_mask,
    ).cycles

    return TransformReport(
        technique=plan.technique,
        nodes_before=original.num_nodes,
        nodes_after=plan.graph.num_nodes,
        edges_before=original.num_edges,
        edges_after=plan.graph.num_edges,
        edges_added=plan.edges_added,
        holes=holes,
        replicas=replicas,
        hole_occupancy=occupancy,
        resident_nodes=resident,
        mean_cc_before=cc_before,
        mean_cc_after=cc_after,
        divergence_before=div_before,
        divergence_after=div_after,
        probe_cycles_before=probe_before,
        probe_cycles_after=probe_after,
    )
