"""Persisting execution plans: the amortization story, operationalized.

The paper justifies its preprocessing cost by amortization over many
runs; for that to work across *processes* the whole plan — not just the
transformed CSR — must round-trip to disk: replica bookkeeping,
residency masks, cluster edges, processing order, and the knob
provenance.  Everything is numpy arrays plus a small JSON header, stored
in one ``.npz``.

`GraffixGraph` intermediates (`RenumberResult`/`ReplicationResult`) are
*not* persisted — they are inspection artifacts; a loaded plan carries a
reconstructed `GraffixGraph` with everything execution needs (slot graph,
`rep_of`, `primary_slot`, replica groups).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from .coalesce import GraffixGraph
from .pipeline import TECHNIQUES, ExecutionPlan

__all__ = ["save_plan", "load_plan"]

_FORMAT_VERSION = 1


def _pack_graph(prefix: str, graph: CSRGraph, arrays: dict) -> None:
    arrays[f"{prefix}_offsets"] = graph.offsets
    arrays[f"{prefix}_indices"] = graph.indices
    if graph.weights is not None:
        arrays[f"{prefix}_weights"] = graph.weights


def _unpack_graph(prefix: str, data) -> CSRGraph:
    return CSRGraph(
        data[f"{prefix}_offsets"],
        data[f"{prefix}_indices"],
        data[f"{prefix}_weights"] if f"{prefix}_weights" in data else None,
    )


def save_plan(plan: ExecutionPlan, path: str | Path) -> None:
    """Persist an :class:`ExecutionPlan` to ``path`` (.npz)."""
    header = {
        "format_version": _FORMAT_VERSION,
        "technique": plan.technique,
        "num_original": plan.num_original,
        "confluence_operator": plan.confluence_operator,
        "edges_added": plan.edges_added,
        "preprocess_seconds": plan.preprocess_seconds,
        "local_iterations": plan.local_iterations,
        "has_graffix": plan.graffix is not None,
        "chunk_size": plan.graffix.chunk_size if plan.graffix else 0,
    }
    arrays: dict = {"header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)}
    _pack_graph("graph", plan.graph, arrays)
    if plan.order is not None:
        arrays["order"] = plan.order
    if plan.resident_mask is not None:
        arrays["resident_mask"] = plan.resident_mask
    if plan.cluster_graph is not None:
        _pack_graph("cluster", plan.cluster_graph, arrays)
    if plan.graffix is not None:
        arrays["rep_of"] = plan.graffix.rep_of
        arrays["primary_slot"] = plan.graffix.primary_slot
    with Path(path).open("wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_plan(path: str | Path) -> ExecutionPlan:
    """Load a plan persisted by :func:`save_plan`."""
    with np.load(Path(path)) as data:
        if "header" not in data:
            raise TransformError(f"{path}: not a saved execution plan")
        header = json.loads(bytes(data["header"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise TransformError(
                f"{path}: unsupported plan format {header.get('format_version')}"
            )
        if header["technique"] not in TECHNIQUES:
            raise TransformError(f"{path}: unknown technique in header")
        graph = _unpack_graph("graph", data)
        order = data["order"] if "order" in data else None
        resident = data["resident_mask"] if "resident_mask" in data else None
        cluster = (
            _unpack_graph("cluster", data) if "cluster_offsets" in data else None
        )
        graffix = None
        if header["has_graffix"]:
            from .renumber import RenumberResult
            from .replicate import ReplicationResult

            rep_of = data["rep_of"]
            primary = data["primary_slot"]
            # minimal intermediates: enough for execution (lift/lower/
            # replica_groups); renumbering internals are reconstructed as
            # degenerate placeholders and flagged as such.
            ren = RenumberResult(
                new_id=primary.copy(),
                rep_of=rep_of.copy(),
                levels=np.zeros(header["num_original"], dtype=np.int64),
                level_starts=np.array([0, graph.num_nodes], dtype=np.int64),
                num_slots=graph.num_nodes,
                chunk_size=max(1, int(header["chunk_size"])),
            )
            occupied = rep_of >= 0
            replica_mask = occupied.copy()
            replica_mask[primary] = False
            replica_slots = np.nonzero(replica_mask)[0]
            rep = ReplicationResult(
                graph=graph,
                rep_of=rep_of,
                primary_slot=primary,
                replicas=np.stack(
                    [replica_slots, rep_of[replica_slots]], axis=1
                ).astype(np.int64)
                if replica_slots.size
                else np.empty((0, 2), dtype=np.int64),
                edges_moved=0,
                edges_added=int(header["edges_added"]),
            )
            graffix = GraffixGraph(
                graph=graph,
                rep_of=rep_of,
                primary_slot=primary,
                num_original=int(header["num_original"]),
                chunk_size=max(1, int(header["chunk_size"])),
                renumbering=ren,
                replication=rep,
            )
        return ExecutionPlan(
            technique=header["technique"],
            graph=graph,
            num_original=int(header["num_original"]),
            order=order,
            resident_mask=resident,
            cluster_graph=cluster,
            local_iterations=int(header["local_iterations"]),
            graffix=graffix,
            confluence_operator=header["confluence_operator"],
            edges_added=int(header["edges_added"]),
            preprocess_seconds=float(header["preprocess_seconds"]),
        )
