"""§3: reducing memory latency via clustering-coefficient-guided shared memory.

Nodes with high clustering coefficient sit in well-connected clusters that
iterative algorithms revisit constantly; Graffix pins such nodes *and
their 1-hop neighbours* into shared memory and iterates each pinned
subgraph locally for ``t ~ 2 x subgraph diameter`` rounds before pushing
attributes back to global memory.

Approximation enters through edge addition, in two regimes:

1. nodes whose CC is *just below* the threshold get edges between 2-hop
   neighbour pairs that already share a common neighbour, lifting the CC
   over the bar so the cluster qualifies;
2. nodes already above the threshold get edges between their least
   inter-connected sibling pairs, thickening the cluster.

A global edge budget caps the total approximation (§3: "we maintain a
global limit for the number of edges added").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.properties import clustering_coefficients
from ..gpusim.device import DeviceConfig, K40C
from .knobs import SharedMemoryKnobs

__all__ = ["SharedMemoryPlan", "plan_shared_memory"]

# hubs with enormous degree never have high CC and would make the pairwise
# sibling analysis quadratic; skip them outright.
_MAX_ANALYZED_DEGREE = 64


@dataclass
class SharedMemoryPlan:
    """Outcome of the §3 transform.

    Attributes
    ----------
    graph:
        the graph with approximation edges added.
    resident_mask:
        boolean per node: True if the node is inside some pinned cluster
        (accesses to it are charged shared-memory latency).
    clusters:
        list of node-id arrays; each is one pinned subgraph (a high-CC
        center plus its 1-hop neighbours), sized to fit
        ``device.shared_mem_words``.
    cluster_graph:
        CSR over the same node-id space containing only intra-cluster
        edges — the edge set the local iterations run over.
    local_iterations:
        the ``t`` each cluster iterates inside shared memory.
    edges_added:
        directed arcs actually added to the CSR (each logical sibling
        connection contributes two, minus dedup collisions).
    cc:
        post-transform clustering coefficients (for inspection/tests).
    """

    graph: CSRGraph
    resident_mask: np.ndarray
    clusters: list[np.ndarray]
    cluster_graph: CSRGraph
    local_iterations: int
    edges_added: int
    cc: np.ndarray


def _undirected_adjacency(graph: CSRGraph) -> list[set[int]]:
    """Neighbor sets of the undirected view, for pairwise CC reasoning."""
    und = graph.to_undirected()
    return [set(und.neighbors(v).tolist()) for v in range(und.num_nodes)]


def _cc_of(adj: list[set[int]], v: int) -> float:
    nbrs = adj[v]
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = 0
    nl = list(nbrs)
    for i, a in enumerate(nl):
        sa = adj[a]
        for b in nl[i + 1 :]:
            if b in sa:
                links += 1
    return 2.0 * links / (d * (d - 1))


def plan_shared_memory(
    graph: CSRGraph,
    knobs: SharedMemoryKnobs | None = None,
    device: DeviceConfig = K40C,
) -> SharedMemoryPlan:
    """Apply the §3 transform and build the shared-memory residency plan."""
    knobs = knobs or SharedMemoryKnobs()
    n = graph.num_nodes
    if n == 0:
        raise TransformError("cannot plan shared memory for an empty graph")

    cc = clustering_coefficients(graph)
    budget = int(knobs.edge_budget_fraction * graph.num_edges)
    adj = _undirected_adjacency(graph)
    degrees = np.array([len(s) for s in adj], dtype=np.int64)

    new_src: list[int] = []
    new_dst: list[int] = []
    new_w: list[float] = []
    weighted = graph.is_weighted
    # weight lookup for 2-hop path sums on the directed graph
    w_of: dict[tuple[int, int], float] = {}
    if weighted:
        srcs = graph.edge_sources()
        for s, d, x in zip(
            srcs.tolist(), graph.indices.tolist(), graph.weights.tolist()
        ):
            key = (s, d)
            if key not in w_of or x < w_of[key]:
                w_of[key] = x

    def path_weight(a: int, mid: int, b: int) -> float:
        # §3 gives no weight rule for its added edges (§4's sum rule is
        # specific to the divergence transform, and the paper itself calls
        # the choice "often fuzzy").  We use the mean of the two hop
        # weights: the new sibling edge then genuinely perturbs weighted
        # algorithms (it can undercut the 2-hop path), which is the source
        # of this technique's higher measured inaccuracy.
        wa = w_of.get((a, mid), w_of.get((mid, a), 1.0))
        wb = w_of.get((mid, b), w_of.get((b, mid), 1.0))
        return (wa + wb) / 2.0

    def emit(a: int, b: int, weight: float) -> None:
        # one logical (undirected) addition = two directed arcs
        new_src.extend((a, b))
        new_dst.extend((b, a))
        if weighted:
            new_w.extend((weight, weight))
        adj[a].add(b)
        adj[b].add(a)

    added = 0
    lo = max(0.0, knobs.cc_threshold - knobs.boost_band)

    # ---- case 1: boost near-threshold nodes over the bar -------------------
    boost_order = np.argsort(-cc)
    for v in boost_order:
        if added >= budget:
            break
        v = int(v)
        if not (lo <= cc[v] < knobs.cc_threshold):
            continue
        if degrees[v] < 2 or degrees[v] > _MAX_ANALYZED_DEGREE:
            continue
        nbrs = sorted(adj[v])
        # candidate pairs: neighbours of v sharing a common neighbour, not
        # yet adjacent ("preferentially between those neighbors ... that
        # have common neighbors")
        done = False
        for i, a in enumerate(nbrs):
            if done:
                break
            for b in nbrs[i + 1 :]:
                if b in adj[a]:
                    continue
                common = adj[a] & adj[b]
                if not common:
                    continue
                mid = min(common)
                emit(a, b, path_weight(a, mid, b))
                added += 2
                cur = _cc_of(adj, v)
                cc[v] = cur
                if cur >= knobs.cc_threshold or added >= budget:
                    done = True
                    break

    # ---- case 2: thicken already-high clusters ------------------------------
    high = np.nonzero(cc >= knobs.cc_threshold)[0]
    for v in high[np.argsort(-cc[high])]:
        if added >= budget:
            break
        v = int(v)
        if degrees[v] < 2 or degrees[v] > _MAX_ANALYZED_DEGREE:
            continue
        nbrs = sorted(adj[v])
        # sibling with fewest edges to the other siblings
        sib_links = {
            a: sum(1 for b in nbrs if b != a and b in adj[a]) for a in nbrs
        }
        order = sorted(nbrs, key=lambda a: (sib_links[a], a))
        # connect the two least-connected siblings if they are a 2-hop pair
        for i, a in enumerate(order):
            if added >= budget:
                break
            for b in order[i + 1 :]:
                if b in adj[a]:
                    continue
                common = adj[a] & adj[b]
                if not common:
                    continue
                mid = min(common)
                emit(a, b, path_weight(a, mid, b))
                added += 2
                break
            else:
                continue
            break  # one new edge per high-CC node keeps the budget spread

    # ---- rebuild graph with the new (bidirectional) edges -------------------
    if new_src:
        src = np.concatenate(
            [graph.edge_sources().astype(np.int64), np.asarray(new_src, dtype=np.int64)]
        )
        dst = np.concatenate(
            [graph.indices.astype(np.int64), np.asarray(new_dst, dtype=np.int64)]
        )
        w = (
            np.concatenate([graph.weights, np.asarray(new_w)])
            if weighted
            else None
        )
        out_graph = CSRGraph.from_edges(n, src, dst, w, dedup=True)
        # report the *directed* arc delta actually landed in the CSR
        # (dedup may collapse a few collisions with pre-existing arcs)
        added = out_graph.num_edges - graph.num_edges
    else:
        out_graph = graph
        added = 0

    # ---- pick clusters under the shared-memory capacity ---------------------
    final_cc = clustering_coefficients(out_graph)
    capacity = device.shared_mem_words
    resident = np.zeros(n, dtype=bool)
    clusters: list[np.ndarray] = []
    und = out_graph.to_undirected()
    for v in np.argsort(-final_cc):
        v = int(v)
        if final_cc[v] < knobs.cc_threshold:
            break
        if resident[v]:
            continue
        members = np.concatenate(([v], und.neighbors(v).astype(np.int64)))
        members = np.unique(members)
        if members.size > capacity:
            continue
        clusters.append(members)
        resident[members] = True

    # intra-cluster edge set (what the local iterations relax over)
    mask = out_graph.subgraph_edge_mask(resident)
    cluster_graph = CSRGraph.from_edges(
        n,
        out_graph.edge_sources()[mask].astype(np.int64),
        out_graph.indices[mask].astype(np.int64),
        out_graph.weights[mask] if weighted else None,
    )

    # each cluster is a center plus 1-hop neighbours: diameter <= 2 on its
    # own, so t ~ iterations_factor * 2 (§3's recommendation)
    t = max(1, int(round(knobs.iterations_factor * 2)))

    return SharedMemoryPlan(
        graph=out_graph,
        resident_mask=resident,
        clusters=clusters,
        cluster_graph=cluster_graph,
        local_iterations=t,
        edges_added=added,
        cc=final_cc,
    )
