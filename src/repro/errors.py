"""Exception hierarchy for the Graffix reproduction.

All errors raised by ``repro`` derive from :class:`ReproError` so callers can
catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(ReproError):
    """Raised when a CSR graph violates a structural invariant.

    Examples: non-monotone offsets, out-of-range edge endpoints, a weights
    array whose length does not match the number of edges.
    """


class TransformError(ReproError):
    """Raised when a Graffix graph transform cannot be applied.

    Examples: a chunk size that is not a positive divisor-compatible value,
    a threshold outside ``[0, 1]``, or a transform applied to an empty graph.
    """


class KnobError(TransformError):
    """Raised when a tunable knob value is outside its valid range."""


class SimulationError(ReproError):
    """Raised when the GPU simulator is configured inconsistently.

    Examples: a warp size that is not a power of two, a shared-memory
    residency mask whose length does not match the node count.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm is invoked with invalid inputs.

    Examples: an SSSP source that is out of range, PageRank with a damping
    factor outside ``(0, 1)``, BC sampling with zero sources.
    """
