"""Exception hierarchy for the Graffix reproduction.

All errors raised by ``repro`` derive from :class:`ReproError` so callers can
catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphFormatError(ReproError):
    """Raised when a CSR graph violates a structural invariant.

    Examples: non-monotone offsets, out-of-range edge endpoints, a weights
    array whose length does not match the number of edges.
    """


class TransformError(ReproError):
    """Raised when a Graffix graph transform cannot be applied.

    Examples: a chunk size that is not a positive divisor-compatible value,
    a threshold outside ``[0, 1]``, or a transform applied to an empty graph.
    """


class KnobError(TransformError):
    """Raised when a tunable knob value is outside its valid range."""


class SimulationError(ReproError):
    """Raised when the GPU simulator is configured inconsistently.

    Examples: a warp size that is not a power of two, a shared-memory
    residency mask whose length does not match the node count.
    """


class AlgorithmError(ReproError):
    """Raised when an algorithm is invoked with invalid inputs.

    Examples: an SSSP source that is out of range, PageRank with a damping
    factor outside ``(0, 1)``, BC sampling with zero sources.
    """


class ResilienceError(ReproError):
    """Raised by the fault-tolerant execution layer (:mod:`repro.resilience`).

    Examples: a resume journal whose recorded scale/seed do not match the
    requested run, or a cell whose measurement is unusable and degradation
    was disabled.
    """


class WorkerTimeout(ResilienceError):
    """Raised when a sweep worker exceeds its per-task deadline.

    The parallel table runner terminates the worker process and either
    retries the task (with exponential backoff) or marks its cells failed.
    """


class DegradedResult(ResilienceError):
    """Raised when a cell would have to degrade but degradation is disabled.

    Example: an approximate run reporting zero simulated cycles, which
    would otherwise emit an infinite speedup into tables and exports.
    """


class CacheError(ReproError):
    """Raised when the artifact cache (:mod:`repro.cache`) is misused.

    Examples: configuring a disk tier on a path that exists but is not a
    directory, or a CLI invocation with no cache directory configured.
    Corrupted cache *entries* never raise — they are detected, counted on
    ``cache.disk.corrupt``, discarded, and recomputed.
    """


class VerificationError(ReproError):
    """Raised by :mod:`repro.verify` when an oracle finds violations.

    Carries the individual violations (structured, machine-readable) in
    ``violations`` so callers can report every failed invariant at once
    instead of stopping at the first.
    """

    def __init__(self, message: str, violations: list | None = None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])


class FaultInjected(ResilienceError):
    """Raised by :mod:`repro.resilience.faults` at an armed fault point.

    Only ever seen when fault injection is explicitly enabled (the
    ``REPRO_FAULTS`` environment variable or :func:`~repro.resilience.faults.install`).
    """


class ServeError(ReproError):
    """Raised by the analytics serving layer (:mod:`repro.serve`).

    Examples: a malformed request line, an unknown query op, or a server
    started on a port that is already bound.
    """


class ProtocolError(ServeError):
    """Raised when a request line violates the serve wire protocol.

    Examples: a line that is not a JSON object, a missing ``op`` field,
    or query parameters of the wrong type.  The server answers these
    with ``status="error"`` instead of dropping the connection.
    """


class DeadlineExceeded(ServeError):
    """Raised when a request's latency budget runs out mid-pipeline.

    Checked at admission, between pipeline stages, and inside sweep
    loops, so an already-late request releases its worker promptly
    instead of finishing work nobody is waiting for.
    """


class Overloaded(ServeError):
    """Raised by admission control when the server sheds a request.

    Carries ``retry_after_ms`` — the client-visible hint for how long to
    back off before retrying (scaled by current queue pressure).
    """

    def __init__(self, message: str, retry_after_ms: float = 50.0) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)
