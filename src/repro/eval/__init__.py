"""Evaluation: accuracy metrics, exact-vs-approx harness, tables, figures."""

from .accuracy import (
    accuracy_percent,
    attribute_inaccuracy,
    mst_inaccuracy,
    scc_inaccuracy,
)
from .figures import (
    SweepPoint,
    figure7_connectedness,
    figure8_cc_threshold,
    figure9_degree_sim,
)
from .harness import ExperimentResult, Harness, run_experiment
from .parallel import parallel_technique_rows
from .reporting import format_speedup_table, format_table, geomean
from .agreement import TableAgreement, agreement_report, score_table
from .export import rows_to_csv, rows_to_json, write_csv, write_json
from .plots import ascii_figure, ascii_series
from .suite import TARGETS, run_targets
from .tables import (
    TableRunner,
    table1_graphs,
    table2_baseline1_exact,
    table3_tigr_exact,
    table4_gunrock_exact,
    table5_preprocessing,
    table6_coalescing,
    table7_shmem,
    table8_divergence,
    table9_coalescing_vs_tigr,
    table10_shmem_vs_tigr,
    table11_divergence_vs_tigr,
    table12_coalescing_vs_gunrock,
    table13_shmem_vs_gunrock,
    table14_divergence_vs_gunrock,
)

__all__ = [
    "ExperimentResult",
    "Harness",
    "SweepPoint",
    "TableRunner",
    "accuracy_percent",
    "attribute_inaccuracy",
    "figure7_connectedness",
    "figure8_cc_threshold",
    "figure9_degree_sim",
    "TARGETS",
    "TableAgreement",
    "agreement_report",
    "score_table",
    "ascii_figure",
    "ascii_series",
    "rows_to_csv",
    "rows_to_json",
    "write_csv",
    "write_json",
    "format_speedup_table",
    "run_targets",
    "format_table",
    "geomean",
    "mst_inaccuracy",
    "parallel_technique_rows",
    "run_experiment",
    "scc_inaccuracy",
    "table1_graphs",
    "table2_baseline1_exact",
    "table3_tigr_exact",
    "table4_gunrock_exact",
    "table5_preprocessing",
    "table6_coalescing",
    "table7_shmem",
    "table8_divergence",
    "table9_coalescing_vs_tigr",
    "table10_shmem_vs_tigr",
    "table11_divergence_vs_tigr",
    "table12_coalescing_vs_gunrock",
    "table13_shmem_vs_gunrock",
    "table14_divergence_vs_gunrock",
]
