"""The paper's inaccuracy metrics (§5, "Machine Configuration" paragraph).

"We measure the inaccuracy incurred for each of the techniques by
averaging the absolute difference between the attribute values of the
vertices for the exact and the approximate versions" — distance for SSSP,
rank for PR, centrality for BC; for SCC the difference in component
counts; for MST the difference in forest weights.

To report the paper's percentages we normalize the mean absolute
difference by the mean exact magnitude (a normalized MAE).  Reachability
mismatches (finite in one run, infinite in the other) count as 100 %
wrong for that vertex — an infinite "absolute difference" would otherwise
poison the average, and ignoring them would hide real approximation error
(Graffix's added edges can only *create* reachability, never destroy it).
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError

__all__ = [
    "attribute_inaccuracy",
    "scc_inaccuracy",
    "mst_inaccuracy",
    "accuracy_percent",
]


def attribute_inaccuracy(exact: np.ndarray, approx: np.ndarray) -> float:
    """Normalized mean absolute error of per-vertex attributes, in percent.

    ``100 * mean(|a - e|) / mean(|e|)`` over vertices finite in both runs;
    vertices finite in exactly one run contribute one mean-exact-magnitude
    unit of error each (i.e. they are "100 % wrong").
    """
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if exact.shape != approx.shape:
        raise AlgorithmError(
            f"attribute vectors differ in shape: {exact.shape} vs {approx.shape}"
        )
    if exact.size == 0:
        return 0.0
    fe = np.isfinite(exact)
    fa = np.isfinite(approx)
    both = fe & fa
    mismatch = fe ^ fa
    n_scored = int(both.sum() + mismatch.sum())
    if n_scored == 0:
        return 0.0
    base = float(np.abs(exact[both]).mean()) if both.any() else 1.0
    if base == 0.0:
        # all-zero exact attribute (e.g. BC on a path-free sample): score
        # absolute drift directly against 1.0
        base = 1.0
    err = float(np.abs(approx[both] - exact[both]).sum()) / base
    err += float(mismatch.sum())  # each mismatch = one full unit
    return 100.0 * err / n_scored


def scc_inaccuracy(exact_count: int, approx_count: int) -> float:
    """Relative difference in SCC counts, in percent."""
    if exact_count <= 0:
        raise AlgorithmError("exact SCC count must be positive")
    return 100.0 * abs(approx_count - exact_count) / exact_count


def mst_inaccuracy(exact_weight: float, approx_weight: float) -> float:
    """Relative difference in spanning-forest weights, in percent."""
    if exact_weight <= 0:
        raise AlgorithmError("exact MSF weight must be positive")
    return 100.0 * abs(approx_weight - exact_weight) / exact_weight


def accuracy_percent(inaccuracy_percent: float) -> float:
    """Complement convenience: ``100 - inaccuracy`` floored at 0."""
    return max(0.0, 100.0 - inaccuracy_percent)
