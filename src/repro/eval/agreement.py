"""Computed agreement between the reproduction and the paper's numbers.

Given measured table rows (from :mod:`repro.eval.tables`) and the
transcribed paper values (:mod:`repro.eval.paper_data`), this module
scores the reproduction on the axes that are meaningful across a
substrate change:

* **direction agreement** — fraction of cells where measured speedup
  lands on the same side of 1.0 as the paper's;
* **rank correlation** — Spearman correlation between measured and paper
  speedups across cells (does the reproduction order the easy/hard cells
  the same way?);
* **geomean ratio** — measured geomean / paper geomean (1.0 = exact
  magnitude match, which a simulator is *not* expected to deliver);
* **ordering checks** — the cross-table claims (divergence is the mildest
  technique; Tigr gains below Baseline-I gains for coalescing and
  divergence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ReproError
from . import paper_data
from .reporting import format_table, geomean

__all__ = ["TableAgreement", "score_table", "agreement_report"]


@dataclass(frozen=True)
class TableAgreement:
    """Agreement scores for one technique table."""

    table: str
    cells: int
    direction_agreement: float
    spearman_speedup: float
    geomean_ratio: float
    measured_geomean: float
    paper_geomean: float

    def as_row(self) -> dict:
        return {
            "table": self.table,
            "cells": self.cells,
            "direction_agreement": self.direction_agreement,
            "spearman_speedup": self.spearman_speedup,
            "measured_geomean": self.measured_geomean,
            "paper_geomean": self.paper_geomean,
            "geomean_ratio": self.geomean_ratio,
        }


def _paper_cells(table: str) -> dict[tuple[str, str], tuple[float, float]]:
    if table not in paper_data.TECHNIQUE_TABLES:
        raise ReproError(
            f"no paper data for {table!r}; have {sorted(paper_data.TECHNIQUE_TABLES)}"
        )
    cells, _gm, _baseline, _algos = paper_data.TECHNIQUE_TABLES[table]
    return {
        (algo, graph): pair
        for algo, per_graph in cells.items()
        for graph, pair in per_graph.items()
    }


def score_table(table: str, measured_rows: list[dict]) -> TableAgreement:
    """Score measured rows (from ``tables.tableN_*``) against the paper.

    ``measured_rows`` must carry ``algorithm``, ``graph``, ``speedup``.
    Only cells present on both sides are scored.
    """
    paper_cells = _paper_cells(table)
    pairs: list[tuple[float, float]] = []
    for row in measured_rows:
        key = (str(row["algorithm"]), str(row["graph"]))
        if key in paper_cells:
            pairs.append((float(row["speedup"]), paper_cells[key][0]))
    if not pairs:
        raise ReproError(f"no overlapping cells between measurement and {table}")

    measured = np.array([p[0] for p in pairs])
    paper = np.array([p[1] for p in pairs])
    direction = float(np.mean((measured >= 1.0) == (paper >= 1.0)))
    if np.unique(measured).size > 1 and np.unique(paper).size > 1:
        rho = float(stats.spearmanr(measured, paper).statistic)
    else:
        rho = 0.0
    measured_gm = geomean(measured)
    paper_gm = paper_data.TECHNIQUE_TABLES[table][1][0]
    return TableAgreement(
        table=table,
        cells=len(pairs),
        direction_agreement=direction,
        spearman_speedup=rho,
        geomean_ratio=measured_gm / paper_gm,
        measured_geomean=measured_gm,
        paper_geomean=paper_gm,
    )


def agreement_report(results: dict[str, list[dict]]) -> str:
    """Score several tables and render the summary + cross-table checks.

    ``results`` maps ``"table6"``.. to the measured row lists.
    """
    scored = [score_table(name, rows) for name, rows in sorted(results.items())]
    text = format_table(
        [s.as_row() for s in scored],
        [
            "table",
            "cells",
            "direction_agreement",
            "spearman_speedup",
            "measured_geomean",
            "paper_geomean",
            "geomean_ratio",
        ],
        title="Agreement with the paper (per technique table)",
    )

    lines = [text, "", "cross-table ordering checks:"]
    by_name = {s.table: s for s in scored}

    def check(label: str, ok: bool) -> None:
        lines.append(f"  [{'ok' if ok else 'MISS'}] {label}")

    if {"table6", "table7", "table8"} <= by_name.keys():
        check(
            "divergence is the mildest technique vs Baseline-I "
            "(paper: 1.07 < 1.16/1.20)",
            by_name["table8"].measured_geomean
            <= min(
                by_name["table6"].measured_geomean,
                by_name["table7"].measured_geomean,
            )
            + 1e-9,
        )
    if {"table8", "table11"} <= by_name.keys():
        check(
            "divergence gains over Tigr below gains over Baseline-I "
            "(paper: 1.03 < 1.07)",
            by_name["table11"].measured_geomean
            < by_name["table8"].measured_geomean + 0.05,
        )
    if {"table6", "table12"} <= by_name.keys():
        check(
            "coalescing gains over Gunrock similar to Baseline-I "
            "(paper: 1.14 ~ 1.16)",
            abs(
                by_name["table12"].measured_geomean
                - by_name["table6"].measured_geomean
            )
            < 0.25,
        )
    return "\n".join(lines)
