"""Machine-readable export of harness/table results (CSV + JSON).

The rendered text tables are for eyes; downstream analysis (plotting the
Figure 7–9 sweeps, diffing runs across scales) wants structured output.
Everything the tables/figures return — lists of flat row dicts or
:class:`~repro.eval.figures.SweepPoint` series — exports through here.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Mapping, Sequence

from ..errors import ReproError

__all__ = ["rows_to_csv", "rows_to_json", "write_csv", "write_json", "normalize_rows"]


def normalize_rows(rows: Sequence) -> list[dict]:
    """Coerce row dicts / dataclass instances into plain dicts."""
    out: list[dict] = []
    for row in rows:
        if dataclasses.is_dataclass(row) and not isinstance(row, type):
            out.append(dataclasses.asdict(row))
        elif isinstance(row, Mapping):
            out.append(dict(row))
        else:
            raise ReproError(
                f"cannot export row of type {type(row).__name__}; "
                "expected a mapping or dataclass"
            )
    return out


def _columns(rows: list[dict]) -> list[str]:
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return cols


def rows_to_csv(rows: Sequence) -> str:
    """Render rows as CSV text (union of keys, insertion-ordered)."""
    normalized = normalize_rows(rows)
    if not normalized:
        return ""
    import io

    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_columns(normalized))
    writer.writeheader()
    for row in normalized:
        writer.writerow(row)
    return buf.getvalue()


def rows_to_json(rows: Sequence, *, indent: int = 2) -> str:
    """Render rows as a JSON array."""
    return json.dumps(normalize_rows(rows), indent=indent, default=float)


def write_csv(rows: Sequence, path: str | Path) -> None:
    Path(path).write_text(rows_to_csv(rows))


def write_json(rows: Sequence, path: str | Path) -> None:
    Path(path).write_text(rows_to_json(rows) + "\n")
