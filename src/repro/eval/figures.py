"""Regeneration of the paper's knob-sweep figures (Figures 7-9).

Each ``figureN`` function sweeps one technique's primary threshold against
Baseline-I and returns per-threshold (geomean speedup, geomean inaccuracy)
series — the two curves each paper figure plots.  Output is numeric (rows
plus a text rendering); plotting is left to the caller since the paper's
claims are about the curve *shapes*:

* Figure 7 (connectedness): speedup rises to a peak (~0.6 for scale-free)
  then declines; inaccuracy falls monotonically as the threshold rises.
* Figure 8 (clustering coefficient): speedup rises with the threshold and
  dips as it approaches 1.0; inaccuracy rises then falls past ~0.8.
* Figure 9 (degreeSim): speedup peaks near 0.3; inaccuracy rises
  monotonically with the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.knobs import CoalescingKnobs, DivergenceKnobs, SharedMemoryKnobs
from ..core.pipeline import build_plan
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from .harness import Harness
from .reporting import format_table, geomean

__all__ = [
    "SweepPoint",
    "figure7_connectedness",
    "figure8_cc_threshold",
    "figure9_degree_sim",
]

#: algorithms aggregated in the sweep figures (kept small for runtime; the
#: trends are technique properties, not algorithm properties)
SWEEP_ALGOS = ("sssp", "pr")


@dataclass(frozen=True)
class SweepPoint:
    threshold: float
    speedup: float
    inaccuracy_percent: float
    edges_added: int


def _sweep(
    graph: CSRGraph,
    technique: str,
    thresholds: list[float],
    make_knobs,
    device: DeviceConfig,
    algorithms: tuple[str, ...],
) -> list[SweepPoint]:
    harness = Harness(device=device, num_bc_sources=2)
    points = []
    for thr in thresholds:
        kw = make_knobs(thr)
        speedups: list[float] = []
        inaccs: list[float] = []
        edges_added = 0
        plan = build_plan(graph, technique, device=device, **kw)
        for algo in algorithms:
            res = harness.run(
                graph, algo, technique, baseline="baseline1", plan=plan
            )
            speedups.append(res.speedup)
            inaccs.append(max(res.inaccuracy_percent, 1e-9))
            edges_added = res.edges_added
        points.append(
            SweepPoint(
                threshold=thr,
                speedup=geomean(speedups),
                inaccuracy_percent=geomean(inaccs),
                edges_added=edges_added,
            )
        )
    return points


def _render(points: list[SweepPoint], title: str) -> str:
    rows = [
        {
            "threshold": p.threshold,
            "speedup": p.speedup,
            "inaccuracy_percent": p.inaccuracy_percent,
            "edges_added": p.edges_added,
        }
        for p in points
    ]
    return format_table(
        rows,
        ["threshold", "speedup", "inaccuracy_percent", "edges_added"],
        title=title,
        floatfmt="{:.3f}",
    )


def figure7_connectedness(
    graph: CSRGraph,
    *,
    thresholds: list[float] | None = None,
    chunk_size: int = 16,
    device: DeviceConfig = K40C,
    algorithms: tuple[str, ...] = SWEEP_ALGOS,
) -> tuple[list[SweepPoint], str]:
    """Figure 7: sweep the node-replication connectedness threshold."""
    thresholds = thresholds or [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    points = _sweep(
        graph,
        "coalescing",
        thresholds,
        lambda thr: {
            "coalescing": CoalescingKnobs(
                chunk_size=chunk_size, connectedness_threshold=thr
            )
        },
        device,
        algorithms,
    )
    return points, _render(
        points, "Figure 7: varying the threshold for node replication"
    )


def figure8_cc_threshold(
    graph: CSRGraph,
    *,
    thresholds: list[float] | None = None,
    device: DeviceConfig = K40C,
    algorithms: tuple[str, ...] = SWEEP_ALGOS,
) -> tuple[list[SweepPoint], str]:
    """Figure 8: sweep the clustering-coefficient threshold."""
    thresholds = thresholds or [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95]
    points = _sweep(
        graph,
        "shmem",
        thresholds,
        lambda thr: {"shmem": SharedMemoryKnobs(cc_threshold=thr)},
        device,
        algorithms,
    )
    return points, _render(
        points, "Figure 8: varying the threshold for clustering-coefficient"
    )


def figure9_degree_sim(
    graph: CSRGraph,
    *,
    thresholds: list[float] | None = None,
    device: DeviceConfig = K40C,
    algorithms: tuple[str, ...] = SWEEP_ALGOS,
) -> tuple[list[SweepPoint], str]:
    """Figure 9: sweep the degreeSim threshold for degree normalization."""
    thresholds = thresholds or [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    points = _sweep(
        graph,
        "divergence",
        thresholds,
        lambda thr: {"divergence": DivergenceKnobs(degree_sim_threshold=thr)},
        device,
        algorithms,
    )
    return points, _render(
        points, "Figure 9: varying the threshold for degree normalization"
    )
