"""Exact-vs-approximate comparison harness.

One :func:`run_experiment` call reproduces one cell of the paper's Tables
6–14: run the chosen baseline's exact kernel on the original graph, run
the same kernel on the Graffix-transformed graph, and report

* **speedup** — exact simulated cycles / approximate simulated cycles
  (kernel time only, excluding preprocessing — matching the paper's
  measurement protocol, which amortizes the one-time transform), and
* **inaccuracy** — the paper's per-algorithm attribute metric.

Exact runs are memoized per (graph, algorithm, baseline, params) so a
table sweep does not recompute its baseline column for every technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.bc import pick_sources
from ..baselines import BASELINES
from ..cache.keys import params_fingerprint
from ..cache.lru import LRUCache
from ..core.knobs import CoalescingKnobs, DivergenceKnobs, SharedMemoryKnobs
from ..core.pipeline import ExecutionPlan, build_plan
from ..errors import AlgorithmError, DegradedResult, ReproError, TransformError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..resilience.faults import fault_point
from .accuracy import attribute_inaccuracy, mst_inaccuracy, scc_inaccuracy

logger = get_logger("eval.harness")

__all__ = ["ExperimentResult", "Harness", "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """One table cell: technique x algorithm x graph x baseline.

    ``degraded`` marks a cell whose approximation step failed and which
    fell back to the exact baseline (speedup 1.0, inaccuracy 0.0);
    ``degraded_reason`` records why, so tables can footnote the gap.
    """

    algorithm: str
    technique: str
    baseline: str
    speedup: float
    inaccuracy_percent: float
    exact_cycles: float
    approx_cycles: float
    exact_seconds: float
    approx_seconds: float
    preprocess_seconds: float
    extra_space_percent: float
    edges_added: int
    exact_iterations: int
    approx_iterations: int
    degraded: bool = False
    degraded_reason: str = ""


@dataclass
class Harness:
    """Caches exact baseline runs across experiments on the same graph.

    The cache is a small LRU (``exact_cache_size`` entries): a long sweep
    over many graphs would otherwise pin every exact result — values,
    aux arrays, metrics — in memory for the whole run.  Hits and misses
    are counted on the ``harness.exact_cache.{hit,miss}`` metrics (and
    ``...evict`` when the bound trims the oldest entry).
    """

    device: DeviceConfig = K40C
    source: int | None = None
    num_bc_sources: int = 4
    seed: int = 0
    exact_cache_size: int = 64
    _exact_cache: LRUCache = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._exact_cache is None:
            self._exact_cache = LRUCache(
                self.exact_cache_size, metric_prefix="harness.exact_cache"
            )

    # ------------------------------------------------------------------
    def _source_for(self, graph: CSRGraph) -> int:
        """SSSP source: highest out-degree node unless pinned.

        GPU graph papers traverse from a well-connected source so the
        computation touches most of the graph; a random source in a
        directed graph can reach almost nothing and measure noise.
        """
        if self.source is not None:
            return self.source
        return int(np.argmax(graph.out_degrees()))

    def _baseline_params(self, graph: CSRGraph) -> dict:
        return {
            "source": self._source_for(graph),
            "bc_sources": pick_sources(
                graph.num_nodes, self.num_bc_sources, self.seed
            ),
            "seed": self.seed,
            "device": self.device,
        }

    def _exact_key(
        self, graph: CSRGraph, algorithm: str, baseline: str
    ) -> tuple:
        """Cache identity of one exact baseline run.

        Includes every :meth:`_baseline_params` input — resolved source,
        BC sources, seed, and the device model — so mutating a harness
        field between runs can never silently return a stale exact
        result computed under the old parameters.
        """
        return (
            graph.fingerprint(),
            algorithm,
            baseline,
            params_fingerprint(self._baseline_params(graph)),
        )

    def exact_run(self, graph: CSRGraph, algorithm: str, baseline: str):
        """Memoized exact baseline execution.

        Keyed on the graph's content fingerprint, not ``id(graph)`` — an
        id can be reused after GC, which would silently return a stale
        exact result for a different graph — plus the baseline params
        (see :meth:`_exact_key`).
        """
        key = self._exact_key(graph, algorithm, baseline)
        cached = self._exact_cache.get(key)
        if cached is not None:
            return cached
        module = BASELINES[baseline]
        if algorithm not in module.SUPPORTED:
            raise AlgorithmError(
                f"{baseline} does not support {algorithm!r}"
            )
        fault_point("baseline", f"{baseline}:{algorithm}")
        with obs_trace.span(
            "solve.exact_run", algorithm=algorithm, baseline=baseline
        ) as sp:
            result = module.run(
                algorithm, graph, **self._baseline_params(graph)
            )
        if sp is not None:
            sp.set(
                sim_cycles=result.metrics.cycles, iterations=result.iterations
            )
        self._exact_cache.put(key, result)
        return result

    def degraded_result(
        self, graph: CSRGraph, algorithm: str, baseline: str, *, reason: str
    ) -> ExperimentResult:
        """The graceful-degradation fallback for one failed cell.

        Degrading to ``technique="exact"`` means the cell reports the
        exact baseline against itself: speedup 1.0, inaccuracy 0.0, no
        preprocessing or extra space — an honest "no benefit here", with
        the flag and reason preserved for the table footnote.
        """
        obs_metrics.counter("harness.degraded").inc()
        logger.warning(
            "degrading %s/%s cell to exact: %s", algorithm, baseline, reason,
            extra={"algorithm": algorithm, "baseline": baseline},
        )
        obs_trace.add_attributes(degraded=True, degraded_reason=reason)
        exact = self.exact_run(graph, algorithm, baseline)
        cycles = exact.metrics.cycles
        return ExperimentResult(
            algorithm=algorithm,
            technique="exact",
            baseline=baseline,
            speedup=1.0,
            inaccuracy_percent=0.0,
            exact_cycles=cycles,
            approx_cycles=cycles,
            exact_seconds=exact.metrics.seconds,
            approx_seconds=exact.metrics.seconds,
            preprocess_seconds=0.0,
            extra_space_percent=0.0,
            edges_added=0,
            exact_iterations=exact.iterations,
            approx_iterations=exact.iterations,
            degraded=True,
            degraded_reason=reason,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        algorithm: str,
        technique: str,
        *,
        baseline: str = "baseline1",
        coalescing: CoalescingKnobs | None = None,
        shmem: SharedMemoryKnobs | None = None,
        divergence: DivergenceKnobs | None = None,
        plan: ExecutionPlan | None = None,
        degrade: bool = False,
    ) -> ExperimentResult:
        """One exact-vs-approximate comparison.

        ``plan`` short-circuits transform construction (useful when one
        transformed graph is reused across the five algorithms, which is
        the paper's amortization argument in action).

        With ``degrade=True`` a failed approximation step — the transform
        raising :class:`TransformError`/:class:`MemoryError`, or the
        approximate run reporting zero cycles — falls back to
        :meth:`degraded_result` instead of propagating, so a table sweep
        renders complete with footnoted gaps.
        """
        if baseline not in BASELINES:
            raise ReproError(
                f"unknown baseline {baseline!r}; choose from {sorted(BASELINES)}"
            )
        with obs_trace.span(
            "harness.run",
            algorithm=algorithm,
            technique=technique,
            baseline=baseline,
        ) as sp:
            result = self._run_cell(
                graph,
                algorithm,
                technique,
                baseline=baseline,
                coalescing=coalescing,
                shmem=shmem,
                divergence=divergence,
                plan=plan,
                degrade=degrade,
            )
        if sp is not None:
            sp.set(
                speedup=result.speedup,
                inaccuracy_percent=result.inaccuracy_percent,
                exact_cycles=result.exact_cycles,
                approx_cycles=result.approx_cycles,
                degraded=result.degraded,
            )
        obs_metrics.counter("harness.cells").inc()
        return result

    def _run_cell(
        self,
        graph: CSRGraph,
        algorithm: str,
        technique: str,
        *,
        baseline: str,
        coalescing: CoalescingKnobs | None,
        shmem: SharedMemoryKnobs | None,
        divergence: DivergenceKnobs | None,
        plan: ExecutionPlan | None,
        degrade: bool,
    ) -> ExperimentResult:
        module = BASELINES[baseline]
        exact = self.exact_run(graph, algorithm, baseline)

        try:
            if plan is None:
                plan = build_plan(
                    graph,
                    technique,
                    device=self.device,
                    coalescing=coalescing,
                    shmem=shmem,
                    divergence=divergence,
                )
            with obs_trace.span(
                "solve.approx_run",
                algorithm=algorithm,
                technique=technique,
                baseline=baseline,
            ) as sp:
                approx = module.run(
                    algorithm, plan, **self._baseline_params(graph)
                )
            if sp is not None:
                sp.set(
                    sim_cycles=approx.metrics.cycles,
                    iterations=approx.iterations,
                )
        except (TransformError, MemoryError) as exc:
            if not degrade:
                raise
            return self.degraded_result(
                graph, algorithm, baseline,
                reason=f"{type(exc).__name__}: {exc}",
            )

        inaccuracy = self._inaccuracy(algorithm, exact, approx)
        extra_space = self._extra_space_percent(graph, plan)
        exact_cycles = exact.metrics.cycles
        approx_cycles = approx.metrics.cycles
        if approx_cycles <= 0:
            # never emit an infinite speedup into tables/exports
            reason = "approximate run reported zero simulated cycles"
            if not degrade:
                raise DegradedResult(
                    f"{algorithm}/{technique}/{baseline}: {reason}"
                )
            return self.degraded_result(graph, algorithm, baseline, reason=reason)
        return ExperimentResult(
            algorithm=algorithm,
            technique=technique,
            baseline=baseline,
            speedup=exact_cycles / approx_cycles,
            inaccuracy_percent=inaccuracy,
            exact_cycles=exact_cycles,
            approx_cycles=approx_cycles,
            exact_seconds=exact.metrics.seconds,
            approx_seconds=approx.metrics.seconds,
            preprocess_seconds=plan.preprocess_seconds,
            extra_space_percent=extra_space,
            edges_added=plan.edges_added,
            exact_iterations=exact.iterations,
            approx_iterations=approx.iterations,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _inaccuracy(algorithm: str, exact, approx) -> float:
        if algorithm == "scc":
            assert exact.aux is not None and approx.aux is not None
            return scc_inaccuracy(
                int(exact.aux["num_components"]), int(approx.aux["num_components"])
            )
        if algorithm == "mst":
            assert exact.aux is not None and approx.aux is not None
            return mst_inaccuracy(
                float(exact.aux["weight"]), float(approx.aux["weight"])
            )
        return attribute_inaccuracy(exact.values, approx.values)

    @staticmethod
    def _extra_space_percent(graph: CSRGraph, plan: ExecutionPlan) -> float:
        if plan.technique == "exact":
            return 0.0
        if plan.graffix is not None:
            return 100.0 * plan.graffix.extra_space_fraction(graph)
        orig_words = graph.num_nodes + 1 + graph.num_edges * (
            2 if graph.is_weighted else 1
        )
        new_words = plan.graph.num_nodes + 1 + plan.graph.num_edges * (
            2 if plan.graph.is_weighted else 1
        )
        if plan.cluster_graph is not None:
            # the shared-memory staging copies occupy extra device memory
            new_words += plan.cluster_graph.num_edges
        return 100.0 * (new_words - orig_words) / orig_words


def run_experiment(
    graph: CSRGraph,
    algorithm: str,
    technique: str,
    *,
    baseline: str = "baseline1",
    device: DeviceConfig = K40C,
    **kwargs,
) -> ExperimentResult:
    """One-shot convenience wrapper around :class:`Harness`."""
    return Harness(device=device).run(
        graph, algorithm, technique, baseline=baseline, **kwargs
    )
