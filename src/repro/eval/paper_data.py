"""The paper's reported numbers, transcribed as data.

Every table of Singh & Nasre (ICPP 2020) §5, keyed the way our harness
keys its own rows, so agreement between the reproduction and the paper
can be *computed* rather than eyeballed (see :mod:`repro.eval.agreement`).

Transcription notes:

* graph keys follow our suite names: ``rmat`` (= rmat26), ``random``
  (= random26), ``livejournal`` (= LiveJournal), ``usa-road``
  (= USA-road), ``twitter``;
* Tables 2–4 are seconds on the authors' K40C; Tables 6–14 are
  (speedup, inaccuracy-percent) pairs;
* Table 5 times are seconds, space overheads percentages.
"""

from __future__ import annotations

GRAPHS = ("rmat", "random", "livejournal", "usa-road", "twitter")

#: Table 1 — |V|, |E| in millions
TABLE1_INPUTS = {
    "rmat": (67.1, 1073.7),
    "random": (67.1, 1073.7),
    "livejournal": (4.8, 68.9),
    "usa-road": (23.9, 57.7),
    "twitter": (41.6, 1468.3),
}

#: Table 2 — Baseline-I exact times (seconds): sssp, mst, scc, pr, bc
TABLE2_BASELINE1_SECONDS = {
    "rmat": {"sssp": 37, "mst": 8996, "scc": 21, "pr": 12, "bc": 15223},
    "random": {"sssp": 29, "mst": 10087, "scc": 23, "pr": 16, "bc": 13127},
    "livejournal": {"sssp": 2, "mst": 3424, "scc": 7, "pr": 1, "bc": 1711},
    "usa-road": {"sssp": 152, "mst": 82, "scc": 12, "pr": 1, "bc": 2043},
    "twitter": {"sssp": 231, "mst": 10943, "scc": 37, "pr": 18, "bc": 21462},
}

#: Table 3 — Tigr exact times (seconds)
TABLE3_TIGR_SECONDS = {
    "rmat": {"sssp": 6, "pr": 0.914, "bc": 587},
    "random": {"sssp": 4, "pr": 1.180, "bc": 498},
    "livejournal": {"sssp": 0.046, "pr": 0.452, "bc": 66},
    "usa-road": {"sssp": 12, "pr": 0.130, "bc": 38},
    "twitter": {"sssp": 17, "pr": 3.000, "bc": 827},
}

#: Table 4 — Gunrock exact times (seconds)
TABLE4_GUNROCK_SECONDS = {
    "rmat": {"sssp": 19, "pr": 1.070, "bc": 872},
    "random": {"sssp": 8, "pr": 1.500, "bc": 740},
    "livejournal": {"sssp": 0.142, "pr": 0.530, "bc": 98},
    "usa-road": {"sssp": 25.139, "pr": 0.181, "bc": 56},
    "twitter": {"sssp": 53, "pr": 4.000, "bc": 1227},
}

#: Table 5 — preprocessing (seconds, extra-space %) per technique x graph
TABLE5_PREPROCESSING = {
    "coalescing": {
        "rmat": (76, 9.0), "random": (59, 11.0), "livejournal": (8, 6.0),
        "usa-road": (304, 8.0), "twitter": (463, 7.0),
    },
    "shmem": {
        "rmat": (155, 5.0), "random": (107, 8.0), "livejournal": (21, 5.0),
        "usa-road": (348, 4.0), "twitter": (532, 7.0),
    },
    "divergence": {
        "rmat": (42, 2.0), "random": (46, 3.0), "livejournal": (5, 2.0),
        "usa-road": (38, 1.5), "twitter": (157, 4.0),
    },
}

# ---------------------------------------------------------------------------
# Tables 6-8: techniques vs Baseline-I — {algo: {graph: (speedup, inacc%)}}
# ---------------------------------------------------------------------------
TABLE6_COALESCING_VS_BASELINE1 = {
    "sssp": {"rmat": (1.22, 12), "random": (1.13, 10), "livejournal": (1.18, 11),
             "usa-road": (1.15, 9), "twitter": (1.17, 12)},
    "mst": {"rmat": (1.18, 13), "random": (1.13, 15), "livejournal": (1.14, 12),
            "usa-road": (1.23, 11), "twitter": (1.17, 13)},
    "scc": {"rmat": (1.14, 8), "random": (1.08, 14), "livejournal": (1.13, 7),
            "usa-road": (1.16, 11), "twitter": (1.15, 12)},
    "pr": {"rmat": (1.20, 5), "random": (1.15, 7), "livejournal": (1.21, 7),
           "usa-road": (1.19, 6), "twitter": (1.22, 7)},
    "bc": {"rmat": (1.17, 9), "random": (1.12, 13), "livejournal": (1.15, 10),
           "usa-road": (1.19, 12), "twitter": (1.14, 11)},
}
TABLE6_GEOMEAN = (1.16, 10)

TABLE7_SHMEM_VS_BASELINE1 = {
    "sssp": {"rmat": (1.26, 12), "random": (1.08, 17), "livejournal": (1.22, 13),
             "usa-road": (1.30, 13), "twitter": (1.18, 12)},
    "mst": {"rmat": (1.22, 16), "random": (1.10, 18), "livejournal": (1.18, 16),
            "usa-road": (1.20, 19), "twitter": (1.16, 15)},
    "scc": {"rmat": (1.20, 12), "random": (1.10, 16), "livejournal": (1.22, 13),
            "usa-road": (1.20, 12), "twitter": (1.18, 13)},
    "pr": {"rmat": (1.32, 7), "random": (1.16, 11), "livejournal": (1.26, 7),
           "usa-road": (1.30, 5), "twitter": (1.22, 9)},
    "bc": {"rmat": (1.24, 14), "random": (1.13, 18), "livejournal": (1.21, 16),
           "usa-road": (1.26, 15), "twitter": (1.17, 13)},
}
TABLE7_GEOMEAN = (1.20, 13)

TABLE8_DIVERGENCE_VS_BASELINE1 = {
    "sssp": {"rmat": (1.06, 8), "random": (1.03, 9), "livejournal": (1.07, 8),
             "usa-road": (1.12, 7), "twitter": (1.09, 6)},
    "mst": {"rmat": (1.05, 10), "random": (1.02, 11), "livejournal": (1.07, 8),
            "usa-road": (1.09, 10), "twitter": (1.05, 9)},
    "scc": {"rmat": (1.04, 9), "random": (1.00, 7), "livejournal": (1.04, 6),
            "usa-road": (1.05, 9), "twitter": (1.06, 8)},
    "pr": {"rmat": (1.10, 4), "random": (1.04, 9), "livejournal": (1.08, 5),
           "usa-road": (1.06, 8), "twitter": (1.09, 8)},
    "bc": {"rmat": (1.11, 11), "random": (1.05, 14), "livejournal": (1.09, 9),
           "usa-road": (1.12, 7), "twitter": (1.06, 12)},
}
TABLE8_GEOMEAN = (1.07, 8)

# ---------------------------------------------------------------------------
# Tables 9-11: vs Tigr (SSSP/PR/BC only)
# ---------------------------------------------------------------------------
TABLE9_COALESCING_VS_TIGR = {
    "sssp": {"rmat": (1.16, 12), "random": (1.06, 10), "livejournal": (1.13, 11),
             "usa-road": (1.08, 9), "twitter": (1.12, 12)},
    "pr": {"rmat": (1.14, 5), "random": (1.08, 7), "livejournal": (1.15, 7),
           "usa-road": (1.12, 6), "twitter": (1.15, 7)},
    "bc": {"rmat": (1.09, 9), "random": (1.05, 13), "livejournal": (1.07, 10),
           "usa-road": (1.11, 12), "twitter": (1.06, 11)},
}
TABLE9_GEOMEAN = (1.10, 9)

TABLE10_SHMEM_VS_TIGR = {
    "sssp": {"rmat": (1.24, 12), "random": (1.07, 17), "livejournal": (1.20, 13),
             "usa-road": (1.26, 13), "twitter": (1.15, 12)},
    "pr": {"rmat": (1.30, 7), "random": (1.14, 11), "livejournal": (1.26, 7),
           "usa-road": (1.28, 5), "twitter": (1.22, 9)},
    "bc": {"rmat": (1.19, 14), "random": (1.11, 18), "livejournal": (1.17, 16),
           "usa-road": (1.23, 15), "twitter": (1.16, 13)},
}
TABLE10_GEOMEAN = (1.19, 12)

TABLE11_DIVERGENCE_VS_TIGR = {
    "sssp": {"rmat": (1.02, 8), "random": (1.01, 9), "livejournal": (1.02, 8),
             "usa-road": (1.04, 7), "twitter": (1.03, 6)},
    "pr": {"rmat": (1.06, 4), "random": (1.02, 9), "livejournal": (1.04, 5),
           "usa-road": (1.03, 8), "twitter": (1.05, 8)},
    "bc": {"rmat": (1.04, 11), "random": (1.01, 14), "livejournal": (1.02, 9),
           "usa-road": (1.05, 7), "twitter": (1.03, 12)},
}
TABLE11_GEOMEAN = (1.03, 8)

# ---------------------------------------------------------------------------
# Tables 12-14: vs Gunrock (SSSP/PR/BC only)
# ---------------------------------------------------------------------------
TABLE12_COALESCING_VS_GUNROCK = {
    "sssp": {"rmat": (1.20, 12), "random": (1.10, 10), "livejournal": (1.17, 11),
             "usa-road": (1.12, 9), "twitter": (1.16, 12)},
    "pr": {"rmat": (1.17, 5), "random": (1.13, 7), "livejournal": (1.19, 7),
           "usa-road": (1.18, 6), "twitter": (1.20, 7)},
    "bc": {"rmat": (1.11, 9), "random": (1.07, 13), "livejournal": (1.09, 10),
           "usa-road": (1.16, 12), "twitter": (1.09, 11)},
}
TABLE12_GEOMEAN = (1.14, 9)

TABLE13_SHMEM_VS_GUNROCK = {
    "sssp": {"rmat": (1.22, 12), "random": (1.06, 17), "livejournal": (1.23, 13),
             "usa-road": (1.28, 13), "twitter": (1.16, 12)},
    "pr": {"rmat": (1.27, 7), "random": (1.12, 11), "livejournal": (1.19, 7),
           "usa-road": (1.25, 5), "twitter": (1.17, 9)},
    "bc": {"rmat": (1.21, 14), "random": (1.13, 18), "livejournal": (1.19, 16),
           "usa-road": (1.24, 15), "twitter": (1.14, 13)},
}
TABLE13_GEOMEAN = (1.19, 12)

TABLE14_DIVERGENCE_VS_GUNROCK = {
    "sssp": {"rmat": (1.07, 7), "random": (1.03, 8), "livejournal": (1.06, 7),
             "usa-road": (1.08, 7), "twitter": (1.05, 6)},
    "pr": {"rmat": (1.09, 5), "random": (1.03, 6), "livejournal": (1.10, 5),
           "usa-road": (1.07, 8), "twitter": (1.08, 8)},
    "bc": {"rmat": (1.06, 11), "random": (1.04, 13), "livejournal": (1.08, 10),
           "usa-road": (1.10, 6), "twitter": (1.07, 12)},
}
TABLE14_GEOMEAN = (1.07, 8)

#: technique-table registry: name -> (cells, geomean, baseline, algorithms)
TECHNIQUE_TABLES = {
    "table6": (TABLE6_COALESCING_VS_BASELINE1, TABLE6_GEOMEAN, "baseline1",
               ("sssp", "mst", "scc", "pr", "bc")),
    "table7": (TABLE7_SHMEM_VS_BASELINE1, TABLE7_GEOMEAN, "baseline1",
               ("sssp", "mst", "scc", "pr", "bc")),
    "table8": (TABLE8_DIVERGENCE_VS_BASELINE1, TABLE8_GEOMEAN, "baseline1",
               ("sssp", "mst", "scc", "pr", "bc")),
    "table9": (TABLE9_COALESCING_VS_TIGR, TABLE9_GEOMEAN, "tigr",
               ("sssp", "pr", "bc")),
    "table10": (TABLE10_SHMEM_VS_TIGR, TABLE10_GEOMEAN, "tigr",
                ("sssp", "pr", "bc")),
    "table11": (TABLE11_DIVERGENCE_VS_TIGR, TABLE11_GEOMEAN, "tigr",
                ("sssp", "pr", "bc")),
    "table12": (TABLE12_COALESCING_VS_GUNROCK, TABLE12_GEOMEAN, "gunrock",
                ("sssp", "pr", "bc")),
    "table13": (TABLE13_SHMEM_VS_GUNROCK, TABLE13_GEOMEAN, "gunrock",
                ("sssp", "pr", "bc")),
    "table14": (TABLE14_DIVERGENCE_VS_GUNROCK, TABLE14_GEOMEAN, "gunrock",
                ("sssp", "pr", "bc")),
}

#: table -> technique name used by our harness
TABLE_TECHNIQUE = {
    "table6": "coalescing", "table7": "shmem", "table8": "divergence",
    "table9": "coalescing", "table10": "shmem", "table11": "divergence",
    "table12": "coalescing", "table13": "shmem", "table14": "divergence",
}
