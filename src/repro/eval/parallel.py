"""Fault-tolerant process-parallel table generation.

Each table cell (graph x algorithm x technique x baseline) is
independent once the transformed plan exists, so the sweep
embarrassingly parallelizes across processes.  Work is sharded by
*graph* (each worker builds its graph and plans locally — graphs are
regenerated from seeds rather than pickled, keeping task payloads tiny),
following the scientific-Python guidance to parallelize at the coarsest
grain that balances load.

Unlike a bare ``ProcessPoolExecutor``, this scheduler survives partial
failure:

* every worker runs in its own process with an optional **deadline**
  (``worker_timeout``); a worker that stalls is terminated rather than
  sinking the pool;
* a worker that times out or raises is **retried** up to ``max_retries``
  times with exponential backoff;
* a task that exhausts its retries has its cells **marked failed** (rows
  carry ``failed=True`` and the error) while every other task completes;
* with a :class:`~repro.resilience.journal.RunJournal`, each completed
  cell is checkpointed the moment its worker reports it, so a killed
  sweep resumes from the journal instead of starting over.

This is the scale-out path for ``REPRO_BENCH_SCALE=medium`` and beyond;
the sequential :class:`~repro.eval.tables.TableRunner` remains the simple
default.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

from ..errors import ReproError, WorkerTimeout
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..resilience.faults import fault_point
from ..resilience.journal import RunJournal, cell_key
from ..resilience.retry import RetryPolicy
from .tables import ALL_ALGOS, TableRunner

__all__ = ["parallel_technique_rows", "worker_rows"]

_POLL_SECONDS = 0.02

logger = get_logger("eval.parallel")


def worker_rows(
    graph_name: str,
    technique: str,
    baseline: str,
    algorithms: tuple[str, ...],
    scale: str,
    seed: int,
    num_bc_sources: int,
    attempt: int = 0,
    degrade: bool = True,
    cache_dir: str | None = None,
) -> list[dict]:
    """One worker's share: every requested algorithm for one suite graph.

    Module-level (picklable) so worker processes can ship it; the worker
    rebuilds its graph from the generator seed, transforms it once, and
    runs all algorithms against it.  ``attempt`` is embedded in the fault
    key so injection rules can target "first attempt only" deterministically
    across process boundaries.  With ``cache_dir``, every worker attaches
    to the same on-disk artifact store (writes are atomic, so concurrent
    workers can share it) and skips transforms other workers already paid
    for.
    """
    fault_point("worker", f"{graph_name}:attempt{attempt}")
    runner = TableRunner(
        scale=scale,
        seed=seed,
        num_bc_sources=num_bc_sources,
        degrade=degrade,
        cache_dir=cache_dir,
    )
    return [
        runner.cell_row(graph_name, algo, technique, baseline)
        for algo in algorithms
    ]


def _worker_entry(conn, kwargs: dict) -> None:
    """Child-process entry: run the share, report ("ok"|"error", payload, metrics).

    The third element is the worker's :func:`repro.obs.metrics.snapshot`
    — its private counter registry (exact-cache hits, sweeps, degrades)
    shipped back through the pipe so the parent can aggregate one
    cross-worker view.
    """
    obs_metrics.reset()  # count only this task, not inherited parent state
    try:
        rows = worker_rows(**kwargs)
        message = ("ok", rows, obs_metrics.snapshot())
    except BaseException as exc:  # must not die silently — report and exit
        message = ("error", f"{type(exc).__name__}: {exc}", obs_metrics.snapshot())
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass  # parent already gave up on us (timeout); nothing to tell
    finally:
        conn.close()


class _Task:
    """One unit of schedulable work: a graph's remaining algorithms."""

    __slots__ = ("graph", "algorithms", "attempt", "not_before", "last_error")

    def __init__(self, graph: str, algorithms: tuple[str, ...]):
        self.graph = graph
        self.algorithms = algorithms
        self.attempt = 0
        self.not_before = 0.0
        self.last_error = ""


def _cache_provenance(worker_metrics: dict | None) -> dict | None:
    """The ``cache.*`` counter slice of a worker's metrics snapshot.

    Journaled per cell (kind ``"cache"``) so a resumed run can tell which
    cells were served from the artifact cache versus computed fresh.
    Returns ``None`` when the worker ran without any cache activity.
    """
    if not worker_metrics:
        return None
    counters = worker_metrics.get("counters") or {}
    prov = {n: v for n, v in counters.items() if n.startswith("cache.")}
    return prov or None


def _failed_row(algo: str, graph: str, error: str) -> dict:
    return {
        "algorithm": algo,
        "graph": graph,
        "speedup": 0.0,
        "inaccuracy_percent": 0.0,
        "exact_cycles": 0.0,
        "approx_cycles": 0.0,
        "failed": True,
        "error": error,
    }


def parallel_technique_rows(
    technique: str,
    *,
    baseline: str = "baseline1",
    algorithms: tuple[str, ...] = ALL_ALGOS,
    scale: str = "small",
    seed: int = 7,
    num_bc_sources: int = 3,
    max_workers: int | None = None,
    max_retries: int = 2,
    worker_timeout: float | None = None,
    backoff_base: float = 0.25,
    journal: RunJournal | None = None,
    failures: list[dict] | None = None,
    degrade: bool = True,
    cache_dir: str | None = None,
) -> list[dict]:
    """The fault-tolerant parallel equivalent of ``TableRunner._technique_rows``.

    Returns the same row dicts (sorted by algorithm then graph for
    deterministic output regardless of completion order).  Cells already
    present in ``journal`` are replayed without re-running; cells whose
    task exhausts its retries come back with ``failed=True`` and are
    appended to ``failures`` (as are degraded cells).
    """
    if technique not in ("coalescing", "shmem", "divergence", "combined"):
        raise ReproError(f"unknown technique {technique!r}")
    policy = RetryPolicy(max_retries=max_retries, backoff_base=backoff_base)
    probe = TableRunner(scale=scale, seed=seed)
    graph_names = list(probe.suite)
    if failures is None:
        failures = []

    def key_of(algo: str, graph: str) -> dict:
        return cell_key(
            technique, baseline, algo, graph, scale, seed, num_bc_sources
        )

    rows: list[dict] = []
    pending: list[_Task] = []
    for name in graph_names:
        remaining = []
        for algo in algorithms:
            cached = journal.get("cell", key_of(algo, name)) if journal else None
            if cached is not None:
                rows.append(cached)
            else:
                remaining.append(algo)
        if remaining:
            pending.append(_Task(name, tuple(remaining)))

    def note_failure(kind: str, row: dict) -> None:
        failures.append(
            {
                "kind": kind,
                "technique": technique,
                "baseline": baseline,
                "algorithm": row["algorithm"],
                "graph": row["graph"],
                "reason": row.get("degraded_reason") or row.get("error", ""),
            }
        )

    # worker snapshots are collected here and merged *after* the pool
    # drains, in sorted key order with the commutative gauge policy —
    # so the aggregated registry is identical however the completion
    # order raced (see obs.metrics.merge_snapshot's gauge_merge doc)
    worker_snapshots: dict[tuple[str, int], dict] = {}

    def finish_ok(task: _Task, payload: list[dict], worker_metrics: dict | None) -> None:
        if worker_metrics:
            worker_snapshots[(task.graph, task.attempt)] = worker_metrics
        cache_prov = _cache_provenance(worker_metrics)
        for row in payload:
            if journal is not None:
                key = key_of(row["algorithm"], row["graph"])
                journal.record("cell", key, row)
                if worker_metrics:
                    journal.record("metrics", key, worker_metrics)
                if cache_prov is not None:
                    journal.record("cache", key, cache_prov)
            if row.get("degraded"):
                note_failure("degraded", row)
            obs_metrics.counter("parallel.cells_completed").inc()
            rows.append(row)

    def finish_failed(task: _Task, error: str) -> None:
        # deliberately NOT journaled: a resumed run should retry these
        logger.error(
            "task %s gave up after %d attempts: %s",
            task.graph, task.attempt + 1, error,
        )
        for algo in task.algorithms:
            row = _failed_row(algo, task.graph, error)
            note_failure("failed", row)
            obs_metrics.counter("parallel.cells_failed").inc()
            rows.append(row)

    ctx = mp.get_context()
    max_workers = max_workers or os.cpu_count() or 1
    running: list[list] = []  # [process, parent_conn, task, deadline, started]
    try:
        while pending or running:
            now = time.monotonic()
            while pending and len(running) < max_workers:
                task = next((t for t in pending if t.not_before <= now), None)
                if task is None:
                    break
                pending.remove(task)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(
                        child_conn,
                        dict(
                            graph_name=task.graph,
                            technique=technique,
                            baseline=baseline,
                            algorithms=task.algorithms,
                            scale=scale,
                            seed=seed,
                            num_bc_sources=num_bc_sources,
                            attempt=task.attempt,
                            degrade=degrade,
                            cache_dir=cache_dir,
                        ),
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                logger.debug(
                    "spawned worker for graph %s attempt %d (pid %s)",
                    task.graph, task.attempt, proc.pid,
                )
                deadline = (
                    now + worker_timeout if worker_timeout is not None else None
                )
                running.append(
                    [proc, parent_conn, task, deadline, time.perf_counter()]
                )

            progressed = False
            for entry in list(running):
                proc, conn, task, deadline, started = entry
                outcome = None
                if conn.poll(0):
                    try:
                        outcome = conn.recv()
                    except (EOFError, OSError):
                        outcome = ("error", "worker died without reporting", None)
                elif not proc.is_alive():
                    outcome = (
                        "error",
                        f"worker exited with code {proc.exitcode} "
                        "without reporting",
                        None,
                    )
                elif deadline is not None and time.monotonic() > deadline:
                    proc.terminate()
                    obs_metrics.counter("parallel.timeouts").inc()
                    outcome = (
                        "error",
                        str(
                            WorkerTimeout(
                                f"graph {task.graph!r} attempt {task.attempt} "
                                f"exceeded {worker_timeout:g}s deadline"
                            )
                        ),
                        None,
                    )
                if outcome is None:
                    continue
                progressed = True
                running.remove(entry)
                conn.close()
                proc.join(timeout=5)
                if proc.is_alive():  # terminate() raced with real work
                    proc.kill()
                    proc.join(timeout=5)
                status, payload, worker_metrics = outcome
                obs_trace.record_span(
                    "parallel.task",
                    started,
                    graph=task.graph,
                    technique=technique,
                    attempt=task.attempt,
                    status=status,
                    algorithms=",".join(task.algorithms),
                )
                if status == "ok":
                    finish_ok(task, payload, worker_metrics)
                elif task.attempt < policy.max_retries:
                    logger.warning(
                        "retrying graph %s (attempt %d failed: %s)",
                        task.graph, task.attempt, payload,
                    )
                    obs_metrics.counter("parallel.retries").inc()
                    task.last_error = payload
                    task.not_before = time.monotonic() + policy.delay(task.attempt)
                    task.attempt += 1
                    pending.append(task)
                else:
                    finish_failed(task, payload)
            if not progressed:
                time.sleep(_POLL_SECONDS)
    finally:
        for proc, conn, _task, _deadline, _started in running:
            proc.terminate()
            conn.close()
            proc.join(timeout=5)

    for key in sorted(worker_snapshots):
        obs_metrics.merge_snapshot(worker_snapshots[key], gauge_merge="max")

    algo_rank = {a: i for i, a in enumerate(algorithms)}
    graph_rank = {g: i for i, g in enumerate(graph_names)}
    rows.sort(key=lambda r: (algo_rank[r["algorithm"]], graph_rank[r["graph"]]))
    return rows
