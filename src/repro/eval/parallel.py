"""Process-parallel table generation for the larger suite scales.

Each table cell (graph x algorithm x technique x baseline) is
independent once the transformed plan exists, so the sweep
embarrassingly parallelizes across processes.  Work is sharded by
*graph* (each worker builds its graph and plans locally — graphs are
regenerated from seeds rather than pickled, keeping task payloads tiny),
following the scientific-Python guidance to parallelize at the coarsest
grain that balances load.

This is the scale-out path for ``REPRO_BENCH_SCALE=medium`` and beyond;
the sequential :class:`~repro.eval.tables.TableRunner` remains the simple
default.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..errors import ReproError
from .tables import ALL_ALGOS, TableRunner

__all__ = ["parallel_technique_rows", "worker_rows"]


def worker_rows(
    graph_name: str,
    technique: str,
    baseline: str,
    algorithms: tuple[str, ...],
    scale: str,
    seed: int,
    num_bc_sources: int,
) -> list[dict]:
    """One worker's share: every algorithm for one suite graph.

    Module-level (picklable) so ProcessPoolExecutor can ship it; the
    worker rebuilds its graph from the generator seed, transforms it
    once, and runs all algorithms against it.
    """
    runner = TableRunner(scale=scale, seed=seed, num_bc_sources=num_bc_sources)
    graph = runner.suite[graph_name]
    plan = runner.plan_for(graph_name, technique)
    rows = []
    for algo in algorithms:
        res = runner.harness.run(
            graph, algo, technique, baseline=baseline, plan=plan
        )
        rows.append(
            {
                "algorithm": algo,
                "graph": graph_name,
                "speedup": res.speedup,
                "inaccuracy_percent": res.inaccuracy_percent,
                "exact_cycles": res.exact_cycles,
                "approx_cycles": res.approx_cycles,
            }
        )
    return rows


def parallel_technique_rows(
    technique: str,
    *,
    baseline: str = "baseline1",
    algorithms: tuple[str, ...] = ALL_ALGOS,
    scale: str = "small",
    seed: int = 7,
    num_bc_sources: int = 3,
    max_workers: int | None = None,
) -> list[dict]:
    """The parallel equivalent of ``TableRunner._technique_rows``.

    Returns the same row dicts (sorted by algorithm then graph for
    deterministic output regardless of completion order).
    """
    if technique not in ("coalescing", "shmem", "divergence", "combined"):
        raise ReproError(f"unknown technique {technique!r}")
    probe = TableRunner(scale=scale, seed=seed)
    graph_names = list(probe.suite)

    rows: list[dict] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(
                worker_rows,
                name,
                technique,
                baseline,
                algorithms,
                scale,
                seed,
                num_bc_sources,
            )
            for name in graph_names
        ]
        for fut in futures:
            rows.extend(fut.result())

    algo_rank = {a: i for i, a in enumerate(algorithms)}
    graph_rank = {g: i for i, g in enumerate(graph_names)}
    rows.sort(key=lambda r: (algo_rank[r["algorithm"]], graph_rank[r["graph"]]))
    return rows
