"""Dependency-free ASCII rendering of the knob-sweep figures.

The paper's Figures 7–9 each plot two curves (speedup, inaccuracy)
against a threshold.  We have no plotting stack offline, so this module
renders the same series as aligned ASCII charts — enough to *see* the
shapes the reproduction claims (rising/falling/peaked) directly in a
terminal or in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError
from .figures import SweepPoint

__all__ = ["ascii_series", "ascii_figure"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def ascii_series(
    values: Sequence[float], *, width: int | None = None
) -> str:
    """A one-line sparkline of ``values`` using unicode block glyphs."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def ascii_figure(
    points: Sequence[SweepPoint],
    *,
    title: str,
    height: int = 8,
    col_width: int = 7,
) -> str:
    """A two-panel ASCII chart (speedup above, inaccuracy below).

    Columns are thresholds; each panel scales independently; the numeric
    extremes are annotated so the chart is quantitative, not just shape.
    """
    if not points:
        raise ReproError("cannot render an empty sweep")
    if height < 2:
        raise ReproError("height must be >= 2")

    def panel(vals: list[float], label: str) -> list[str]:
        lo, hi = min(vals), max(vals)
        span = hi - lo or 1.0
        rows = []
        for level in range(height, 0, -1):
            cutoff = lo + span * (level - 0.5) / height
            cells = []
            for v in vals:
                cells.append(("█" if v >= cutoff else " ").center(col_width))
            prefix = f"{hi:8.2f} |" if level == height else (
                f"{lo:8.2f} |" if level == 1 else " " * 9 + "|"
            )
            rows.append(prefix + "".join(cells))
        rows.append(" " * 9 + "+" + "-" * (col_width * len(vals)))
        rows.append(" " * 8 + label)
        return rows

    speedups = [p.speedup for p in points]
    inaccs = [p.inaccuracy_percent for p in points]
    thresholds = "".join(f"{p.threshold:^{col_width}.2f}" for p in points)

    lines = [title, "=" * len(title)]
    lines.extend(panel(speedups, "speedup (x)"))
    lines.append("")
    lines.extend(panel(inaccs, "inaccuracy (%)"))
    lines.append(" " * 10 + thresholds)
    lines.append(" " * 10 + "threshold".center(col_width * len(points)))
    lines.append(
        f"sparklines: speedup {ascii_series(speedups)}  "
        f"inaccuracy {ascii_series(inaccs)}"
    )
    return "\n".join(lines)
