"""Plain-text table rendering and aggregate statistics for the harness.

The benchmark targets print the same row layout as the paper's tables so
a reader can diff shapes by eye; EXPERIMENTS.md is generated from these
renderers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..obs.trace import traced

__all__ = [
    "geomean",
    "format_table",
    "format_speedup_table",
    "format_failure_summary",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups/inaccuracies)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    if np.any(arr <= 0):
        # inaccuracies of exactly 0 would zero out the geomean; clamp to a
        # tiny epsilon so a single perfect cell doesn't hide the rest
        arr = np.maximum(arr, 1e-9)
    return float(np.exp(np.log(arr).mean()))


@traced("report.format_table")
def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    *,
    title: str | None = None,
    floatfmt: str = "{:.3f}",
) -> str:
    """Render rows of dicts as an aligned plain-text table."""
    header = [str(c) for c in columns]
    body: list[list[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            if isinstance(v, float):
                cells.append(floatfmt.format(v))
            else:
                cells.append(str(v))
        body.append(cells)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


@traced("report.format_speedup_table")
def format_speedup_table(
    rows: Sequence[Mapping[str, object]], *, title: str | None = None
) -> str:
    """Render the paper's speedup/inaccuracy table layout with a summary row.

    Speedups aggregate by geometric mean (the paper's choice); the
    inaccuracy column aggregates by arithmetic mean — several cells are
    exactly 0 % (value-preserving transforms), which would collapse a
    geometric mean to nothing.

    Degraded cells (approximation fell back to exact) render with a ``*``
    and a footnote; failed cells (worker exhausted its retries) render as
    ``FAILED`` and are excluded from the aggregates.
    """
    ok_rows = [r for r in rows if not r.get("failed")]
    display: list[dict] = []
    degraded_n = failed_n = 0
    for r in rows:
        d = dict(r)
        if r.get("failed"):
            failed_n += 1
            d["speedup"] = "FAILED"
            d["inaccuracy_percent"] = "-"
        elif r.get("degraded"):
            degraded_n += 1
            d["speedup"] = "{:.2f}*".format(float(r["speedup"]))
        display.append(d)
    if ok_rows:
        speedups = [float(r["speedup"]) for r in ok_rows]
        inaccs = [float(r["inaccuracy_percent"]) for r in ok_rows]
        display.append(
            {
                "algorithm": "",
                "graph": "Geomean",
                "speedup": geomean(speedups),
                "inaccuracy_percent": float(np.mean(inaccs)),
            }
        )
    text = format_table(
        display,
        ["algorithm", "graph", "speedup", "inaccuracy_percent"],
        title=title,
        floatfmt="{:.2f}",
    )
    notes = []
    if degraded_n:
        notes.append(
            f"* {degraded_n} cell(s) degraded to the exact baseline "
            "(approximation failed; speedup 1.00, inaccuracy 0.00)"
        )
    if failed_n:
        notes.append(
            f"! {failed_n} cell(s) FAILED after exhausting retries "
            "(excluded from the Geomean; re-run with --resume to retry)"
        )
    if notes:
        text = text + "\n" + "\n".join(notes)
    return text


@traced("report.format_failure_summary")
def format_failure_summary(failures: Sequence[Mapping[str, object]]) -> str:
    """The end-of-run report of every degraded or failed cell."""
    if not failures:
        return "failure summary: all cells completed cleanly"
    degraded = [f for f in failures if f.get("kind") == "degraded"]
    failed = [f for f in failures if f.get("kind") == "failed"]
    lines = [
        "failure summary: "
        f"{len(degraded)} degraded cell(s), {len(failed)} failed cell(s)"
    ]
    for f in failures:
        lines.append(
            "  [{kind}] {technique}/{baseline} {algorithm} on {graph}: "
            "{reason}".format(
                kind=f.get("kind", "?"),
                technique=f.get("technique", "?"),
                baseline=f.get("baseline", "?"),
                algorithm=f.get("algorithm", "?"),
                graph=f.get("graph", "?"),
                reason=f.get("reason", "") or "unspecified",
            )
        )
    return "\n".join(lines)
