"""Command-line evaluation suite: regenerate any paper table or figure.

Usage (also reachable as ``python -m repro``)::

    python -m repro --list
    python -m repro --scale tiny table6 figure9
    python -m repro --scale small all --output-dir results/
    python -m repro --scale small all --output-dir results/ --resume

Each target prints its rendered table/series; ``--output-dir`` also
persists them as text files (the same format the benchmark harness
emits) plus a ``journal.jsonl`` checkpoint of every completed cell.
``--resume`` replays the journal, skipping finished cells byte-for-byte
and re-running only the gaps; ``--parallel`` routes technique sweeps
through the fault-tolerant worker pool (``--max-retries``,
``--worker-timeout``).  A failure summary of every degraded or failed
cell is logged at the end and lands in ``failures.txt``.

Telemetry (see ``docs/observability.md``):

* ``--trace-out trace.json`` records spans for the whole run — Chrome
  ``trace_event`` JSON for a ``.json`` suffix (load in
  ``chrome://tracing`` / Perfetto), JSONL otherwise (feed to
  ``python -m repro stats``);
* ``--metrics-out metrics.json`` writes the aggregated counter/gauge/
  histogram snapshot, including metrics merged back from ``--parallel``
  workers;
* ``--log-level debug`` (or ``REPRO_LOG=debug``) surfaces status,
  retry, and degradation chatter on stderr; tables stay on stdout;
* ``--profile PREFIX`` (or ``REPRO_PROFILE=PREFIX``) samples the run
  with :mod:`repro.obs.prof`: ``PREFIX.collapsed`` is flamegraph input,
  ``PREFIX.json`` the per-span self-time report.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Callable

from .. import cache as repro_cache
from ..gpusim.device import K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger, setup_logging
from ..resilience.journal import RunJournal
from . import figures, tables
from .reporting import format_failure_summary

__all__ = ["TARGETS", "run_targets", "main"]

logger = get_logger("eval.suite")


def _figure(fn, graph_name: str):
    def runner_fn(runner: tables.TableRunner):
        return fn(runner.suite[graph_name])

    return runner_fn


def _agreement_target(runner: tables.TableRunner):
    """Run Tables 6-14 and score them against the paper's numbers."""
    from .agreement import agreement_report

    fns = {
        "table6": tables.table6_coalescing,
        "table7": tables.table7_shmem,
        "table8": tables.table8_divergence,
        "table9": tables.table9_coalescing_vs_tigr,
        "table10": tables.table10_shmem_vs_tigr,
        "table11": tables.table11_divergence_vs_tigr,
        "table12": tables.table12_coalescing_vs_gunrock,
        "table13": tables.table13_shmem_vs_gunrock,
        "table14": tables.table14_divergence_vs_gunrock,
    }
    results = {name: fn(runner)[0] for name, fn in fns.items()}
    return results, agreement_report(results)


#: target name -> callable(TableRunner) -> (rows_or_points, rendered text)
TARGETS: dict[str, Callable] = {
    "table1": tables.table1_graphs,
    "table2": tables.table2_baseline1_exact,
    "table3": tables.table3_tigr_exact,
    "table4": tables.table4_gunrock_exact,
    "table5": tables.table5_preprocessing,
    "table6": tables.table6_coalescing,
    "table7": tables.table7_shmem,
    "table8": tables.table8_divergence,
    "table9": tables.table9_coalescing_vs_tigr,
    "table10": tables.table10_shmem_vs_tigr,
    "table11": tables.table11_divergence_vs_tigr,
    "table12": tables.table12_coalescing_vs_gunrock,
    "table13": tables.table13_shmem_vs_gunrock,
    "table14": tables.table14_divergence_vs_gunrock,
    "combined": tables.table_combined,
    "figure7": _figure(figures.figure7_connectedness, "livejournal"),
    "figure8": _figure(figures.figure8_cc_threshold, "rmat"),
    "figure9": _figure(figures.figure9_degree_sim, "rmat"),
    "agreement": _agreement_target,
}


def run_targets(
    names: list[str],
    *,
    scale: str = "tiny",
    seed: int = 7,
    output_dir: str | Path | None = None,
    resume: bool = False,
    parallel: bool = False,
    max_workers: int | None = None,
    max_retries: int = 2,
    worker_timeout: float | None = None,
    failures: list[dict] | None = None,
    cache_dir: str | None = None,
) -> dict[str, str]:
    """Run the named targets; returns ``{name: rendered text}``.

    With ``output_dir`` set, every completed table cell is checkpointed to
    ``<output_dir>/journal.jsonl``; ``resume=True`` replays that journal
    (skipping finished cells) instead of starting fresh.  Pass a list as
    ``failures`` to receive one entry per degraded/failed cell.

    ``cache_dir`` enables the content-addressed artifact cache
    (``docs/caching.md``): transforms and analytics memoize to that
    directory, so a repeated or resumed sweep skips them entirely, and
    parallel workers share the store.
    """
    if "all" in names:
        names = list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        raise KeyError(
            f"unknown targets {unknown}; available: {sorted(TARGETS)} or 'all'"
        )
    journal = None
    if output_dir is not None:
        path = Path(output_dir)
        path.mkdir(parents=True, exist_ok=True)
        journal = RunJournal(
            path / "journal.jsonl",
            resume=resume,
            meta={"scale": scale, "seed": seed},
        )
    runner = tables.TableRunner(
        scale=scale,
        seed=seed,
        device=K40C,
        journal=journal,
        parallel=parallel,
        max_workers=max_workers,
        max_retries=max_retries,
        worker_timeout=worker_timeout,
        cache_dir=cache_dir,
    )
    if failures is not None:
        runner.failures = failures
    out: dict[str, str] = {}
    for name in names:
        logger.info("running target %s (scale=%s)", name, scale)
        with obs_trace.span("harness.target", target=name, scale=scale):
            _rows, text = TARGETS[name](runner)
        out[name] = text
        if output_dir is not None:
            with obs_trace.span("report.write", target=name):
                (Path(output_dir) / f"{name}.txt").write_text(text + "\n")
    if output_dir is not None and runner.failures:
        (Path(output_dir) / "failures.txt").write_text(
            format_failure_summary(runner.failures) + "\n"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Graffix paper's tables and figures "
        "on the synthetic suite (simulated GPU).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        help="table1..table14, figure7..figure9, or 'all' (default)",
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=("tiny", "small", "medium"),
        help="input-suite scale (default tiny)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output-dir", default=None)
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay <output-dir>/journal.jsonl, re-running only missing cells",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run technique sweeps on the fault-tolerant worker pool",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="worker processes for --parallel (default: cpu count)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failed/timed-out worker before marking cells failed",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        help="per-worker deadline in seconds (--parallel; default: none)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(repro_cache.ENV_VAR),
        help="enable the content-addressed artifact cache at this "
        "directory: transforms/analytics are memoized across runs and "
        "shared by parallel workers (default: $REPRO_CACHE_DIR; "
        "see docs/caching.md and `python -m repro cache`)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="record spans for the run: Chrome trace_event JSON for a "
        ".json path (chrome://tracing / Perfetto), JSONL otherwise "
        "(python -m repro stats)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the aggregated metrics snapshot (counters/gauges/"
        "histograms, workers included) as JSON",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help="logging level for status/failure chatter on stderr "
        "(overrides REPRO_LOG; default warning)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PREFIX",
        help="sample the run: writes PREFIX.collapsed (flamegraph input) "
        "+ PREFIX.json (per-span report); REPRO_PROFILE env works too",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available targets and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in TARGETS:
            print(name)
        return 0
    if args.resume and args.output_dir is None:
        parser.error("--resume requires --output-dir (the journal lives there)")

    setup_logging(args.log_level)
    tracer = obs_trace.install_tracer() if args.trace_out else None

    from ..obs import prof as obs_prof

    profiler, profile_prefix = obs_prof.start_from_cli(args.profile)
    failures: list[dict] = []
    try:
        results = run_targets(
            args.targets or ["all"],
            scale=args.scale,
            seed=args.seed,
            output_dir=args.output_dir,
            resume=args.resume,
            parallel=args.parallel,
            max_workers=args.max_workers,
            max_retries=args.max_retries,
            worker_timeout=args.worker_timeout,
            failures=failures,
            cache_dir=args.cache_dir,
        )
    finally:
        if profiler is not None:
            obs_prof.write_outputs(profiler, profile_prefix)
        if tracer is not None:
            obs_trace.uninstall_tracer()
            path = Path(args.trace_out)
            if path.suffix == ".json":
                tracer.export_chrome(path)
            else:
                tracer.export_jsonl(path)
            logger.info(
                "wrote %d spans to %s (%d dropped)",
                len(tracer.spans), path, tracer.dropped,
            )
        if args.metrics_out:
            snap = obs_metrics.snapshot()
            Path(args.metrics_out).write_text(json.dumps(snap, indent=2) + "\n")
            logger.info("wrote metrics snapshot to %s", args.metrics_out)

    for name, text in results.items():
        print(text)
        print()
    summary = format_failure_summary(failures)
    if failures:
        logger.warning("%s", summary)
    else:
        logger.info("%s", summary)
    return 0
