"""Command-line evaluation suite: regenerate any paper table or figure.

Usage (also reachable as ``python -m repro``)::

    python -m repro --list
    python -m repro --scale tiny table6 figure9
    python -m repro --scale small all --output-dir results/

Each target prints its rendered table/series; ``--output-dir`` also
persists them as text files (the same format the benchmark harness
emits).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable

from ..gpusim.device import K40C
from . import figures, tables

__all__ = ["TARGETS", "run_targets", "main"]


def _figure(fn, graph_name: str):
    def runner_fn(runner: tables.TableRunner):
        return fn(runner.suite[graph_name])

    return runner_fn


def _agreement_target(runner: tables.TableRunner):
    """Run Tables 6-14 and score them against the paper's numbers."""
    from .agreement import agreement_report

    fns = {
        "table6": tables.table6_coalescing,
        "table7": tables.table7_shmem,
        "table8": tables.table8_divergence,
        "table9": tables.table9_coalescing_vs_tigr,
        "table10": tables.table10_shmem_vs_tigr,
        "table11": tables.table11_divergence_vs_tigr,
        "table12": tables.table12_coalescing_vs_gunrock,
        "table13": tables.table13_shmem_vs_gunrock,
        "table14": tables.table14_divergence_vs_gunrock,
    }
    results = {name: fn(runner)[0] for name, fn in fns.items()}
    return results, agreement_report(results)


#: target name -> callable(TableRunner) -> (rows_or_points, rendered text)
TARGETS: dict[str, Callable] = {
    "table1": tables.table1_graphs,
    "table2": tables.table2_baseline1_exact,
    "table3": tables.table3_tigr_exact,
    "table4": tables.table4_gunrock_exact,
    "table5": tables.table5_preprocessing,
    "table6": tables.table6_coalescing,
    "table7": tables.table7_shmem,
    "table8": tables.table8_divergence,
    "table9": tables.table9_coalescing_vs_tigr,
    "table10": tables.table10_shmem_vs_tigr,
    "table11": tables.table11_divergence_vs_tigr,
    "table12": tables.table12_coalescing_vs_gunrock,
    "table13": tables.table13_shmem_vs_gunrock,
    "table14": tables.table14_divergence_vs_gunrock,
    "combined": tables.table_combined,
    "figure7": _figure(figures.figure7_connectedness, "livejournal"),
    "figure8": _figure(figures.figure8_cc_threshold, "rmat"),
    "figure9": _figure(figures.figure9_degree_sim, "rmat"),
    "agreement": _agreement_target,
}


def run_targets(
    names: list[str],
    *,
    scale: str = "tiny",
    seed: int = 7,
    output_dir: str | Path | None = None,
) -> dict[str, str]:
    """Run the named targets; returns ``{name: rendered text}``."""
    if "all" in names:
        names = list(TARGETS)
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        raise KeyError(
            f"unknown targets {unknown}; available: {sorted(TARGETS)} or 'all'"
        )
    runner = tables.TableRunner(scale=scale, seed=seed, device=K40C)
    out: dict[str, str] = {}
    for name in names:
        _rows, text = TARGETS[name](runner)
        out[name] = text
        if output_dir is not None:
            path = Path(output_dir)
            path.mkdir(parents=True, exist_ok=True)
            (path / f"{name}.txt").write_text(text + "\n")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Graffix paper's tables and figures "
        "on the synthetic suite (simulated GPU).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["all"],
        help="table1..table14, figure7..figure9, or 'all' (default)",
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=("tiny", "small", "medium"),
        help="input-suite scale (default tiny)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output-dir", default=None)
    parser.add_argument(
        "--list", action="store_true", help="list available targets and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in TARGETS:
            print(name)
        return 0

    results = run_targets(
        args.targets or ["all"],
        scale=args.scale,
        seed=args.seed,
        output_dir=args.output_dir,
    )
    for name, text in results.items():
        print(text)
        print()
    return 0
