"""Regeneration of every table in the paper's evaluation (§5).

Each ``tableN`` function returns ``(rows, text)``: the raw row dicts and a
formatted table whose layout mirrors the paper's.  A :class:`TableRunner`
holds the graph suite plus caches (exact baseline runs, per-technique
transformed plans) so regenerating all thirteen tables transforms each
graph at most once per technique — the paper's amortization argument,
operationalized.

Absolute numbers are simulator cycles/sim-seconds and will not match the
paper's K40C wall-clock; the *shape* (which technique helps which
algorithm/graph, by roughly what factor, at what accuracy cost) is the
reproduction target.  See EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import cache as repro_cache
from ..core.knobs import (
    CoalescingKnobs,
    DivergenceKnobs,
    SharedMemoryKnobs,
    recommended_cc_threshold,
    recommended_connectedness,
)
from ..core.pipeline import TECHNIQUES, ExecutionPlan, build_plan
from ..errors import TransformError
from ..graphs.csr import CSRGraph
from ..graphs.generators import paper_suite
from ..graphs.properties import clustering_coefficients, gini_of_degrees, graph_stats
from ..gpusim.device import DeviceConfig, K40C
from ..resilience.journal import RunJournal, cell_key, exact_row_key
from .harness import Harness
from .reporting import format_speedup_table, format_table

__all__ = [
    "TableRunner",
    "table1_graphs",
    "table2_baseline1_exact",
    "table3_tigr_exact",
    "table4_gunrock_exact",
    "table5_preprocessing",
    "table6_coalescing",
    "table7_shmem",
    "table8_divergence",
    "table9_coalescing_vs_tigr",
    "table10_shmem_vs_tigr",
    "table11_divergence_vs_tigr",
    "table12_coalescing_vs_gunrock",
    "table13_shmem_vs_gunrock",
    "table14_divergence_vs_gunrock",
    "table_combined",
    "ALL_ALGOS",
    "TIGR_GUNROCK_ALGOS",
]

ALL_ALGOS = ("sssp", "mst", "scc", "pr", "bc")
TIGR_GUNROCK_ALGOS = ("sssp", "pr", "bc")


@dataclass
class TableRunner:
    """Shared state for regenerating the paper's tables on one suite.

    The resilience fields make a sweep survivable: ``journal`` checkpoints
    each completed cell (so ``--resume`` skips finished work), ``degrade``
    lets a failed transform fall back to the exact baseline with a
    footnoted ``degraded`` flag instead of aborting the run, and the
    ``parallel``/``max_retries``/``worker_timeout`` knobs route technique
    sweeps through the fault-tolerant process pool in
    :mod:`repro.eval.parallel`.  Every degraded or failed cell is appended
    to ``failures`` for the end-of-run summary.
    """

    scale: str = "tiny"
    seed: int = 7
    device: DeviceConfig = K40C
    num_bc_sources: int = 3
    suite: dict[str, CSRGraph] = field(default_factory=dict)
    harness: Harness = field(default=None)  # type: ignore[assignment]
    degrade: bool = True
    journal: RunJournal | None = None
    failures: list[dict] = field(default_factory=list)
    parallel: bool = False
    max_workers: int | None = None
    max_retries: int = 2
    worker_timeout: float | None = None
    cache_dir: str | None = None
    _plans: dict[tuple[str, str], ExecutionPlan] = field(default_factory=dict)
    _knob_cache: dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cache_dir is not None:
            # share transform/analytics artifacts across runs and workers
            # (see docs/caching.md); idempotent for a repeated directory
            repro_cache.configure(cache_dir=self.cache_dir)
        if not self.suite:
            self.suite = paper_suite(self.scale, seed=self.seed)
        if self.harness is None:
            self.harness = Harness(
                device=self.device, num_bc_sources=self.num_bc_sources, seed=self.seed
            )

    # ------------------------------------------------------------------
    def knobs_for(self, name: str) -> dict:
        """Per-graph knob defaults following the paper's guidelines:
        connectedness 0.6 for scale-free / 0.4 for road (§5.2), CC cut-off
        scaled to the graph's mean clustering (§5.3), degreeSim 0.3 (§5.4).
        """
        if name not in self._knob_cache:
            g = self.suite[name]
            gini = gini_of_degrees(g)
            cc = clustering_coefficients(g)
            self._knob_cache[name] = {
                "coalescing": CoalescingKnobs(
                    connectedness_threshold=recommended_connectedness(gini)
                ),
                "shmem": SharedMemoryKnobs(
                    cc_threshold=recommended_cc_threshold(cc)
                ),
                "divergence": DivergenceKnobs(),
            }
        return self._knob_cache[name]

    def plan_for(self, name: str, technique: str) -> ExecutionPlan:
        """Build (and cache) one graph's transformed plan.

        A transform failure is cached too — as the exception, re-raised on
        every lookup — so a degrading sweep does not rebuild a doomed plan
        once per algorithm.
        """
        key = (name, technique)
        if key not in self._plans:
            knobs = self.knobs_for(name)
            try:
                self._plans[key] = build_plan(
                    self.suite[name],
                    technique,
                    device=self.device,
                    coalescing=knobs["coalescing"],
                    shmem=knobs["shmem"],
                    divergence=knobs["divergence"],
                )
            except (TransformError, MemoryError) as exc:
                self._plans[key] = exc
        cached = self._plans[key]
        if isinstance(cached, BaseException):
            raise cached
        return cached

    # ------------------------------------------------------------------
    def cell_row(
        self, name: str, algo: str, technique: str, baseline: str
    ) -> dict:
        """One table cell as a flat row dict, degrading on transform failure."""
        graph = self.suite[name]
        try:
            plan = self.plan_for(name, technique)
            res = self.harness.run(
                graph, algo, technique, baseline=baseline, plan=plan,
                degrade=self.degrade,
            )
        except (TransformError, MemoryError) as exc:
            if not self.degrade:
                raise
            res = self.harness.degraded_result(
                graph, algo, baseline, reason=f"{type(exc).__name__}: {exc}"
            )
        row = {
            "algorithm": algo,
            "graph": name,
            "speedup": res.speedup,
            "inaccuracy_percent": res.inaccuracy_percent,
            "exact_cycles": res.exact_cycles,
            "approx_cycles": res.approx_cycles,
        }
        if res.degraded:
            row["degraded"] = True
            row["degraded_reason"] = res.degraded_reason
        return row

    def _note_failure(self, technique: str, baseline: str, row: dict) -> None:
        if row.get("degraded") or row.get("failed"):
            self.failures.append(
                {
                    "kind": "failed" if row.get("failed") else "degraded",
                    "technique": technique,
                    "baseline": baseline,
                    "algorithm": row["algorithm"],
                    "graph": row["graph"],
                    "reason": row.get("degraded_reason") or row.get("error", ""),
                }
            )

    def _technique_rows(
        self, technique: str, baseline: str, algorithms: tuple[str, ...]
    ) -> list[dict]:
        # validate upfront: degradation must never paper over a typo'd
        # technique name by silently rendering an all-exact table
        if technique not in TECHNIQUES:
            raise TransformError(
                f"unknown technique {technique!r}; choose from {TECHNIQUES}"
            )
        if self.parallel:
            from .parallel import parallel_technique_rows

            return parallel_technique_rows(
                technique,
                baseline=baseline,
                algorithms=algorithms,
                scale=self.scale,
                seed=self.seed,
                num_bc_sources=self.num_bc_sources,
                max_workers=self.max_workers,
                max_retries=self.max_retries,
                worker_timeout=self.worker_timeout,
                journal=self.journal,
                failures=self.failures,
                degrade=self.degrade,
                cache_dir=self.cache_dir,
            )
        rows = []
        for algo in algorithms:
            for name in self.suite:
                key = cell_key(
                    technique, baseline, algo, name,
                    self.scale, self.seed, self.num_bc_sources,
                )
                cached = self.journal.get("cell", key) if self.journal else None
                if cached is not None:
                    rows.append(cached)
                    continue
                row = self.cell_row(name, algo, technique, baseline)
                if self.journal is not None:
                    self.journal.record("cell", key, row)
                self._note_failure(technique, baseline, row)
                rows.append(row)
        return rows


# --------------------------------------------------------------------------
# Table 1: input graphs
# --------------------------------------------------------------------------
def table1_graphs(runner: TableRunner) -> tuple[list[dict], str]:
    rows = []
    for name, graph in runner.suite.items():
        st = graph_stats(graph)
        rows.append(
            {
                "graph": name,
                "nodes": st.num_nodes,
                "edges": st.num_edges,
                "mean_degree": st.mean_degree,
                "max_degree": st.max_degree,
                "degree_gini": st.degree_gini,
                "mean_cc": st.mean_clustering,
                "diameter_est": st.diameter_estimate,
            }
        )
    text = format_table(
        rows,
        [
            "graph",
            "nodes",
            "edges",
            "mean_degree",
            "max_degree",
            "degree_gini",
            "mean_cc",
            "diameter_est",
        ],
        title="Table 1: input graphs (scaled stand-ins, see DESIGN.md)",
    )
    return rows, text


# --------------------------------------------------------------------------
# Tables 2-4: exact baseline execution times
# --------------------------------------------------------------------------
def _exact_table(
    runner: TableRunner, baseline: str, algorithms: tuple[str, ...], title: str
) -> tuple[list[dict], str]:
    rows = []
    for name, graph in runner.suite.items():
        key = exact_row_key(
            baseline, name, algorithms,
            runner.scale, runner.seed, runner.num_bc_sources,
        )
        cached = runner.journal.get("exact_row", key) if runner.journal else None
        if cached is not None:
            rows.append(cached)
            continue
        row: dict = {"graph": name}
        for algo in algorithms:
            res = runner.harness.exact_run(graph, algo, baseline)
            row[f"{algo}_cycles"] = res.metrics.cycles
            row[f"{algo}_sim_seconds"] = res.metrics.seconds
        if runner.journal is not None:
            runner.journal.record("exact_row", key, row)
        rows.append(row)
    cols = ["graph"] + [f"{a}_sim_seconds" for a in algorithms]
    text = format_table(rows, cols, title=title, floatfmt="{:.6f}")
    return rows, text


def table2_baseline1_exact(runner: TableRunner) -> tuple[list[dict], str]:
    return _exact_table(
        runner,
        "baseline1",
        ALL_ALGOS,
        "Table 2: Baseline-I exact execution (sim seconds)",
    )


def table3_tigr_exact(runner: TableRunner) -> tuple[list[dict], str]:
    return _exact_table(
        runner,
        "tigr",
        TIGR_GUNROCK_ALGOS,
        "Table 3: Baseline-II (Tigr) exact execution (sim seconds)",
    )


def table4_gunrock_exact(runner: TableRunner) -> tuple[list[dict], str]:
    return _exact_table(
        runner,
        "gunrock",
        TIGR_GUNROCK_ALGOS,
        "Table 4: Baseline-III (Gunrock) exact execution (sim seconds)",
    )


# --------------------------------------------------------------------------
# Table 5: preprocessing overhead
# --------------------------------------------------------------------------
def table5_preprocessing(runner: TableRunner) -> tuple[list[dict], str]:
    rows = []
    for technique, label in (
        ("coalescing", "Improving coalescing"),
        ("shmem", "Reducing latency"),
        ("divergence", "Reducing thread divergence"),
    ):
        for name, graph in runner.suite.items():
            try:
                plan = runner.plan_for(name, technique)
            except (TransformError, MemoryError) as exc:
                if not runner.degrade:
                    raise
                rows.append(
                    {
                        "technique": label,
                        "graph": name,
                        "time_seconds": 0.0,
                        "extra_space_percent": 0.0,
                        "degraded": True,
                        "degraded_reason": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            rows.append(
                {
                    "technique": label,
                    "graph": name,
                    "time_seconds": plan.preprocess_seconds,
                    "extra_space_percent": Harness._extra_space_percent(graph, plan),
                }
            )
    text = format_table(
        rows,
        ["technique", "graph", "time_seconds", "extra_space_percent"],
        title="Table 5: preprocessing overhead (wall-clock of our transforms)",
        floatfmt="{:.4f}",
    )
    return rows, text


# --------------------------------------------------------------------------
# Tables 6-8: techniques vs Baseline-I
# --------------------------------------------------------------------------
def table6_coalescing(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("coalescing", "baseline1", ALL_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 6: effect of memory coalescing (vs Baseline-I)"
    )


def table7_shmem(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("shmem", "baseline1", ALL_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 7: effect of shared memory (vs Baseline-I)"
    )


def table8_divergence(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("divergence", "baseline1", ALL_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 8: effect of thread divergence (vs Baseline-I)"
    )


def table_combined(runner: TableRunner) -> tuple[list[dict], str]:
    """Extension table (no paper counterpart): all three techniques
    composed, vs Baseline-I — quantifying §1's claim that the techniques
    "can be combined for improved benefits"."""
    rows = runner._technique_rows("combined", "baseline1", ALL_ALGOS)
    return rows, format_speedup_table(
        rows,
        title="Extension: combined coalescing+shmem+divergence (vs Baseline-I)",
    )


# --------------------------------------------------------------------------
# Tables 9-11: techniques vs Tigr
# --------------------------------------------------------------------------
def table9_coalescing_vs_tigr(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("coalescing", "tigr", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 9: effect of memory coalescing (vs Tigr)"
    )


def table10_shmem_vs_tigr(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("shmem", "tigr", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 10: effect of shared memory (vs Tigr)"
    )


def table11_divergence_vs_tigr(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("divergence", "tigr", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 11: effect of thread divergence (vs Tigr)"
    )


# --------------------------------------------------------------------------
# Tables 12-14: techniques vs Gunrock
# --------------------------------------------------------------------------
def table12_coalescing_vs_gunrock(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("coalescing", "gunrock", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 12: effect of memory coalescing (vs Gunrock)"
    )


def table13_shmem_vs_gunrock(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("shmem", "gunrock", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 13: effect of shared memory (vs Gunrock)"
    )


def table14_divergence_vs_gunrock(runner: TableRunner) -> tuple[list[dict], str]:
    rows = runner._technique_rows("divergence", "gunrock", TIGR_GUNROCK_ALGOS)
    return rows, format_speedup_table(
        rows, title="Table 14: effect of thread divergence (vs Gunrock)"
    )
