"""Warp-level GPU execution simulator (the hardware substrate).

The paper runs CUDA kernels on an Nvidia K40C; this package substitutes a
cost-model simulator that accounts memory-coalescing transactions,
global/shared-memory latency, and thread-divergence serialization — the
three effects Graffix's transforms target.  See DESIGN.md §2 for why this
substitution preserves the paper's conclusions.
"""

from .costmodel import SweepCost, charge_sweep, expand_accesses
from .device import K40C, DeviceConfig
from .kernel import ExecutionContext
from .memory import TransactionCount, count_transactions, split_transactions
from .metrics import SimMetrics
from .microbench import (
    MicrobenchResult,
    hub_pattern,
    microbench_report,
    random_pattern,
    run_microbenches,
    stream_pattern,
    strided_pattern,
)
from .profile import CycleBreakdown, breakdown, compare_report, profile_report
from .trace import SweepTrace, hot_segments, trace_sweep, transactions_per_step
from .warp import DivergenceStats, WarpSchedule, divergence_stats, form_warps

__all__ = [
    "DeviceConfig",
    "DivergenceStats",
    "ExecutionContext",
    "K40C",
    "SimMetrics",
    "CycleBreakdown",
    "MicrobenchResult",
    "SweepTrace",
    "hot_segments",
    "hub_pattern",
    "microbench_report",
    "random_pattern",
    "run_microbenches",
    "stream_pattern",
    "strided_pattern",
    "trace_sweep",
    "transactions_per_step",
    "breakdown",
    "compare_report",
    "profile_report",
    "SweepCost",
    "TransactionCount",
    "WarpSchedule",
    "charge_sweep",
    "count_transactions",
    "divergence_stats",
    "expand_accesses",
    "form_warps",
    "split_transactions",
]
