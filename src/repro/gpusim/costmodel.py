"""The cycle-accounting heart of the GPU simulator.

:func:`charge_sweep` analyses one vertex-centric kernel sweep over a CSR
graph and returns a :class:`SweepCost` with the three cost components the
paper optimizes:

1. **compute / divergence** — each warp serializes ``max`` lane degree
   neighbor-loop steps (idle lanes don't help);
2. **memory transactions** — per warp step, distinct ``line_words``
   segments touched in (a) the edges array (reading neighbor ids), and
   (b) the node-attribute array (reading/atomically-updating the
   destination's attribute), plus one coalesced-ish pass over the source
   attributes;
3. **latency class** — attribute transactions whose destination is marked
   *resident* (simulated shared memory) are charged ``shared_latency``
   instead of ``global_latency``.

The function never computes algorithm values — value updates are done by
the (vectorized, honest) algorithm implementations; this separation keeps
the simulator deterministic and testable against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from .device import DeviceConfig
from .memory import count_transactions, split_transactions
from .warp import DivergenceStats, divergence_stats, form_warps

__all__ = ["SweepCost", "charge_sweep", "expand_accesses"]


@dataclass(frozen=True)
class SweepCost:
    """Cost breakdown of one kernel sweep (all counts summed over warps)."""

    serial_steps: int = 0
    busy_lane_steps: int = 0
    idle_lane_steps: int = 0
    edge_transactions: int = 0
    attr_global_transactions: int = 0
    attr_shared_transactions: int = 0
    src_transactions: int = 0
    atomic_ops: int = 0
    cycles: float = 0.0

    def __add__(self, other: "SweepCost") -> "SweepCost":
        if not isinstance(other, SweepCost):
            return NotImplemented
        return SweepCost(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(SweepCost)
            }
        )

    @property
    def total_transactions(self) -> int:
        return (
            self.edge_transactions
            + self.attr_global_transactions
            + self.attr_shared_transactions
            + self.src_transactions
        )

    @property
    def divergence_ratio(self) -> float:
        total = self.busy_lane_steps + self.idle_lane_steps
        return self.idle_lane_steps / total if total else 0.0


def expand_accesses(
    graph: CSRGraph, active: np.ndarray, warp_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the neighbor loops of ``active`` nodes into access records.

    Returns parallel arrays ``(warp, step, edge_pos, dst)``: for the
    ``j``-th neighbor of the node at position ``p`` of the active list,
    ``warp = p // warp_size``, ``step = j``, ``edge_pos`` is the index into
    the edges array being read, ``dst`` the neighbor id whose attribute is
    touched.
    """
    active = np.asarray(active, dtype=np.int64)
    degs = (graph.offsets[active + 1] - graph.offsets[active]).astype(np.int64)
    total = int(degs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    positions = np.arange(active.size, dtype=np.int64)
    warp = np.repeat(positions // warp_size, degs)
    # step j within each adjacency: global arange minus each segment start
    seg_starts = np.concatenate(([0], np.cumsum(degs)[:-1]))
    step = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, degs)
    edge_pos = np.repeat(graph.offsets[active].astype(np.int64), degs) + step
    dst = graph.indices[edge_pos].astype(np.int64)
    return warp, step, edge_pos, dst


def charge_sweep(
    graph: CSRGraph,
    device: DeviceConfig,
    active: np.ndarray | None = None,
    *,
    resident_mask: np.ndarray | None = None,
    all_shared: bool = False,
) -> SweepCost:
    """Account the cycles of one vertex-centric sweep.

    Parameters
    ----------
    graph:
        the CSR graph the kernel runs over (possibly Graffix-transformed).
    active:
        node ids in processing order; ``None`` means all nodes in id order
        (topology-driven kernel).
    resident_mask:
        optional boolean per node: attribute accesses to resident nodes are
        charged at shared-memory latency (§3's pinned clusters).
    all_shared:
        charge *every* access (edges array included) at shared latency —
        used for the intra-cluster iterations of the §3 runner, where the
        whole subgraph lives in shared memory.
    """
    if active is None:
        active = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        active = np.asarray(active, dtype=np.int64)
        if active.size and (active.min() < 0 or active.max() >= graph.num_nodes):
            raise SimulationError("active node id out of range")
    if resident_mask is not None:
        resident_mask = np.asarray(resident_mask, dtype=bool)
        if resident_mask.size != graph.num_nodes:
            raise SimulationError("resident_mask length must equal num_nodes")

    if active.size == 0:
        return SweepCost()

    schedule = form_warps(active, device.warp_size)
    degs = (graph.offsets[active + 1] - graph.offsets[active]).astype(np.int64)
    div: DivergenceStats = divergence_stats(schedule, degs, device.warp_size)

    warp, step, edge_pos, dst = expand_accesses(graph, active, device.warp_size)

    # (1) reading the edges array itself
    edge_tc = count_transactions(warp, step, edge_pos, device.line_words)

    # (2) destination-attribute accesses, split by residency
    if all_shared:
        attr_global_t = 0
        attr_shared_t = count_transactions(warp, step, dst, device.line_words).transactions
        edge_latency = device.shared_latency
    else:
        if resident_mask is not None and dst.size:
            g_tc, s_tc = split_transactions(
                warp, step, dst, device.line_words, resident_mask[dst]
            )
            attr_global_t, attr_shared_t = g_tc.transactions, s_tc.transactions
        else:
            attr_global_t = count_transactions(
                warp, step, dst, device.line_words
            ).transactions
            attr_shared_t = 0
        edge_latency = device.edge_latency

    # (3) one source-attribute pass: lane p reads/writes attribute of its own
    # node; coalesced iff active ids are clustered.
    src_tc = count_transactions(
        schedule.warp_of_position,
        np.zeros(active.size, dtype=np.int64),
        active,
        device.line_words,
    )
    src_latency = device.shared_latency if all_shared else device.global_latency

    atomic_ops = int(dst.size)
    cycles = (
        div.serial_steps * device.issue_cycles
        + edge_tc.transactions * edge_latency
        + attr_global_t * device.global_latency
        + attr_shared_t * device.shared_latency
        + src_tc.transactions * src_latency
        + atomic_ops * device.atomic_cycles
    )
    return SweepCost(
        serial_steps=div.serial_steps,
        busy_lane_steps=div.busy_lane_steps,
        idle_lane_steps=div.idle_lane_steps,
        edge_transactions=edge_tc.transactions,
        attr_global_transactions=attr_global_t,
        attr_shared_transactions=attr_shared_t,
        src_transactions=src_tc.transactions,
        atomic_ops=atomic_ops,
        cycles=float(cycles),
    )
