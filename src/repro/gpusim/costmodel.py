"""The cycle-accounting heart of the GPU simulator.

:func:`charge_sweep` analyses one vertex-centric kernel sweep over a CSR
graph and returns a :class:`SweepCost` with the three cost components the
paper optimizes:

1. **compute / divergence** — each warp serializes ``max`` lane degree
   neighbor-loop steps (idle lanes don't help);
2. **memory transactions** — per warp step, distinct ``line_words``
   segments touched in (a) the edges array (reading neighbor ids), and
   (b) the node-attribute array (reading/atomically-updating the
   destination's attribute), plus one coalesced-ish pass over the source
   attributes;
3. **latency class** — attribute transactions whose destination is marked
   *resident* (simulated shared memory) are charged ``shared_latency``
   instead of ``global_latency``.

The function never computes algorithm values — value updates are done by
the (vectorized, honest) algorithm implementations; this separation keeps
the simulator deterministic and testable against brute force.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from ..graphs.properties import ragged_arange
from .device import DeviceConfig

__all__ = [
    "SweepCost",
    "charge_lane_sweeps",
    "charge_sweep",
    "charge_sweeps_batched",
    "expand_accesses",
]

_INT64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class SweepCost:
    """Cost breakdown of one kernel sweep (all counts summed over warps)."""

    serial_steps: int = 0
    busy_lane_steps: int = 0
    idle_lane_steps: int = 0
    edge_transactions: int = 0
    attr_global_transactions: int = 0
    attr_shared_transactions: int = 0
    src_transactions: int = 0
    atomic_ops: int = 0
    cycles: float = 0.0

    def __add__(self, other: "SweepCost") -> "SweepCost":
        if not isinstance(other, SweepCost):
            return NotImplemented
        # spelled out positionally: this runs once per simulated sweep,
        # and dataclasses.fields() + kwargs construction showed up in
        # solver profiles
        return SweepCost(
            self.serial_steps + other.serial_steps,
            self.busy_lane_steps + other.busy_lane_steps,
            self.idle_lane_steps + other.idle_lane_steps,
            self.edge_transactions + other.edge_transactions,
            self.attr_global_transactions + other.attr_global_transactions,
            self.attr_shared_transactions + other.attr_shared_transactions,
            self.src_transactions + other.src_transactions,
            self.atomic_ops + other.atomic_ops,
            self.cycles + other.cycles,
        )

    @property
    def total_transactions(self) -> int:
        return (
            self.edge_transactions
            + self.attr_global_transactions
            + self.attr_shared_transactions
            + self.src_transactions
        )

    @property
    def divergence_ratio(self) -> float:
        total = self.busy_lane_steps + self.idle_lane_steps
        return self.idle_lane_steps / total if total else 0.0


def expand_accesses(
    graph: CSRGraph, active: np.ndarray, warp_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the neighbor loops of ``active`` nodes into access records.

    Returns parallel arrays ``(warp, step, edge_pos, dst)``: for the
    ``j``-th neighbor of the node at position ``p`` of the active list,
    ``warp = p // warp_size``, ``step = j``, ``edge_pos`` is the index into
    the edges array being read, ``dst`` the neighbor id whose attribute is
    touched.
    """
    active = np.asarray(active, dtype=np.int64)
    degs = (graph.offsets[active + 1] - graph.offsets[active]).astype(np.int64)
    total = int(degs.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    positions = np.arange(active.size, dtype=np.int64)
    warp = np.repeat(positions // warp_size, degs)
    # step j within each adjacency: global arange minus each segment start
    seg_starts = np.concatenate(([0], np.cumsum(degs)[:-1]))
    step = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, degs)
    edge_pos = np.repeat(graph.offsets[active].astype(np.int64), degs) + step
    dst = graph.indices[edge_pos].astype(np.int64)
    return warp, step, edge_pos, dst


def _distinct_groups(
    group: np.ndarray, segment: np.ndarray, s_span: int
) -> int:
    """Distinct ``(group, segment)`` pairs, assuming ``segment < s_span``.

    ``group`` is the pre-packed warp-step id.  The count is exactly what
    :func:`repro.gpusim.memory.count_transactions` derives via its
    data-scanned key spans — any injective packing yields the same number
    of distinct keys — but with no extra reductions and an in-place sort
    of a throwaway key array instead of a hash table.
    """
    if group.size == 0:
        return 0
    keys = group * s_span + segment
    keys.sort()
    return 1 + int(np.count_nonzero(keys[1:] != keys[:-1]))


def _region_distinct(keys: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Per-region distinct-value counts of region-monotone ``keys``.

    ``bounds`` (length K+1) delimits K concatenated key regions; every
    key of region k must be strictly below every key of region k+1, so
    one global in-place sort keeps regions contiguous and a prefix sum
    of adjacent-change flags yields each region's distinct count.
    """
    if keys.size == 0:
        return np.zeros(bounds.size - 1, dtype=np.int64)
    keys.sort()
    # run starts except position 0; each region's first element is one
    # (keys change across region boundaries), so counting run starts in
    # [lo, hi) needs only a +1 for the run at position 0
    rs = np.nonzero(keys[1:] != keys[:-1])[0] + 1
    lo = bounds[:-1]
    hi = bounds[1:]
    cnt = np.searchsorted(rs, hi) - np.searchsorted(rs, lo)
    return np.where(hi > lo, cnt + (lo == 0), 0)


def charge_sweeps_batched(
    graph: CSRGraph,
    device: DeviceConfig,
    sweeps,
    *,
    resident_mask: np.ndarray | None = None,
) -> list[SweepCost]:
    """Vectorized equivalent of one :func:`charge_sweep` per expansion.

    ``sweeps`` is a sequence of precomputed expansions (duck-typed like
    :class:`~repro.perf.gather.SweepExpansion`), each describing one
    sweep's active list *in processing order* over ``graph``.  Returns
    exactly the :class:`SweepCost` objects the per-sweep calls would —
    same integers, bit-identical cycles — but with the warp schedule,
    divergence stats, and transaction counts of every sweep computed in
    one pass over the concatenated arrays.  This is what makes per-sweep
    cost accounting cheap for level-synchronous solvers, whose hundreds
    of small frontiers otherwise pay fixed numpy overhead per sweep.

    ``all_shared`` sweeps are not supported (the §3 cluster iterations
    charge eagerly); ``resident_mask`` works as in :func:`charge_sweep`.
    """
    if device.warp_size <= 0:
        raise SimulationError("warp_size must be positive")
    line = device.line_words
    if line <= 0:
        raise SimulationError("line_words must be positive")
    if resident_mask is not None:
        resident_mask = np.asarray(resident_mask, dtype=bool)
        if resident_mask.size != graph.num_nodes:
            raise SimulationError("resident_mask length must equal num_nodes")
    sweeps = list(sweeps)
    live = [s for s in sweeps if s.frontier.size]
    if not live:
        return [SweepCost() for _ in sweeps]

    ws = device.warp_size
    active = np.concatenate([s.frontier for s in live])
    if active.min() < 0 or active.max() >= graph.num_nodes:
        raise SimulationError("active node id out of range")
    counts = np.array([s.frontier.size for s in live], dtype=np.int64)
    pos_bounds = np.concatenate(([0], np.cumsum(counts)))
    degs = np.concatenate([s.degs for s in live])
    edge_bounds = np.concatenate(
        ([0], np.cumsum([s.epos.size for s in live]))
    ).astype(np.int64)
    busy_k = np.diff(edge_bounds)

    # warp schedule: warps restart at every sweep boundary, numbered
    # globally so keys below stay sweep-monotone
    num_warps_k = -(-counts // ws)
    warp_offsets = np.concatenate(([0], np.cumsum(num_warps_k)))[:-1]
    pos_in_sweep = ragged_arange(counts)
    gwarp_of_pos = pos_in_sweep // ws + np.repeat(warp_offsets, counts)
    warp_start_pos = np.nonzero(pos_in_sweep % ws == 0)[0]
    warp_max = np.maximum.reduceat(degs, warp_start_pos)
    lanes = np.diff(np.append(warp_start_pos, active.size))
    serial_k = np.add.reduceat(warp_max, warp_offsets)
    idle_k = np.add.reduceat(warp_max * lanes, warp_offsets) - busy_k

    step_span = max(int(warp_max.max()), 1)
    edge_seg_span = graph.num_edges // line + 1
    node_seg_span = graph.num_nodes // line + 1
    total_warps = int(num_warps_k.sum())
    if total_warps * step_span * max(edge_seg_span, node_seg_span) >= _INT64_MAX:
        raise SimulationError("access space too large to encode in int64 keys")

    K = len(live)
    if int(busy_k.sum()):
        step = np.concatenate([s.step for s in live])
        epos = np.concatenate([s.epos for s in live])
        dst = np.concatenate([s.e_dst for s in live])
        gid = np.repeat(gwarp_of_pos * step_span, degs) + step
        edge_t_k = _region_distinct(gid * edge_seg_span + epos // line, edge_bounds)
        dst_seg = dst // line
        if resident_mask is not None:
            shared = resident_mask[dst]
            sh_pre = np.concatenate(
                ([0], np.cumsum(shared, dtype=np.int64))
            )
            sh_bounds = sh_pre[edge_bounds]
            gl_bounds = edge_bounds - sh_bounds
            attr_keys = gid * node_seg_span + dst_seg
            attr_global_k = _region_distinct(attr_keys[~shared], gl_bounds)
            attr_shared_k = _region_distinct(attr_keys[shared], sh_bounds)
        else:
            attr_global_k = _region_distinct(
                gid * node_seg_span + dst_seg, edge_bounds
            )
            attr_shared_k = np.zeros(K, dtype=np.int64)
    else:
        edge_t_k = attr_global_k = np.zeros(K, dtype=np.int64)
        attr_shared_k = np.zeros(K, dtype=np.int64)

    src_t_k = _region_distinct(
        gwarp_of_pos * node_seg_span + active // line, pos_bounds
    )

    costs = iter(
        SweepCost(
            serial_steps=int(serial_k[i]),
            busy_lane_steps=int(busy_k[i]),
            idle_lane_steps=int(idle_k[i]),
            edge_transactions=int(edge_t_k[i]),
            attr_global_transactions=int(attr_global_k[i]),
            attr_shared_transactions=int(attr_shared_k[i]),
            src_transactions=int(src_t_k[i]),
            atomic_ops=int(busy_k[i]),
            cycles=float(
                serial_k[i] * device.issue_cycles
                + edge_t_k[i] * device.edge_latency
                + attr_global_k[i] * device.global_latency
                + attr_shared_k[i] * device.shared_latency
                + src_t_k[i] * device.global_latency
                + busy_k[i] * device.atomic_cycles
            ),
        )
        for i in range(K)
    )
    return [next(costs) if s.frontier.size else SweepCost() for s in sweeps]


def charge_lane_sweeps(
    graph: CSRGraph,
    device: DeviceConfig,
    sweeps,
    *,
    resident_mask: np.ndarray | None = None,
) -> list[SweepCost]:
    """Per-lane charge attribution for a stacked multi-source sweep.

    A batched engine (:mod:`repro.perf.batched`) expands many lanes'
    frontiers in one concatenated gather, but each lane's costs must stay
    attributable to its source as if that source had run alone.  Pass the
    per-lane expansion slices here and every lane gets the exact
    :class:`SweepCost` its looped :func:`charge_sweep` call would return
    — same integers, bit-identical cycles.  The decomposition is exact
    because the warp schedule restarts at every lane boundary (warps
    never straddle lanes) and all transaction keys are lane-monotone, so
    one global pass counts each lane's distinct accesses independently;
    ``differential:batched`` and the batched-charging equivalence tests
    prove this against the looped engine rather than assuming it.

    This is :func:`charge_sweeps_batched` under a name that states the
    contract; it exists so callers attributing per-lane charges don't
    look like they are merely batching for host speed.
    """
    return charge_sweeps_batched(
        graph, device, sweeps, resident_mask=resident_mask
    )


def charge_sweep(
    graph: CSRGraph,
    device: DeviceConfig,
    active: np.ndarray | None = None,
    *,
    resident_mask: np.ndarray | None = None,
    all_shared: bool = False,
    expansion=None,
    partition: str = "vertex",
) -> SweepCost:
    """Account the cycles of one vertex-centric sweep.

    Parameters
    ----------
    graph:
        the CSR graph the kernel runs over (possibly Graffix-transformed).
    active:
        node ids in processing order; ``None`` means all nodes in id order
        (topology-driven kernel).
    resident_mask:
        optional boolean per node: attribute accesses to resident nodes are
        charged at shared-memory latency (§3's pinned clusters).
    all_shared:
        charge *every* access (edges array included) at shared latency —
        used for the intra-cluster iterations of the §3 runner, where the
        whole subgraph lives in shared memory.
    expansion:
        optional :class:`~repro.perf.gather.SweepExpansion` of exactly
        ``active`` (same nodes, same order) over ``graph`` — lets a
        gather-engine solver hand over the adjacency arrays it already
        built instead of having them recomputed here.  The caller is
        trusted on the match (``ExecutionContext.charge`` verifies it);
        the resulting cost is identical either way.
    partition:
        ``"vertex"`` (default) assigns one warp lane per active node —
        the classic vertex-balanced kernel whose divergence the model
        was built to expose.  ``"edge"`` assigns one lane per gathered
        edge record instead: warps of consecutive edge records, one
        neighbor-loop step each, so divergence vanishes
        (``idle_lane_steps`` only from the ragged last warp) at the
        price of a per-record *source*-attribute read replacing the
        per-node source pass.  Schedules pick this via
        ``SweepDecision.partition``.
    """
    if partition not in ("vertex", "edge"):
        raise SimulationError(
            f"unknown partition {partition!r}; choose 'vertex' or 'edge'"
        )
    if active is None:
        active = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        active = np.asarray(active, dtype=np.int64)
        if active.size and (active.min() < 0 or active.max() >= graph.num_nodes):
            raise SimulationError("active node id out of range")
    if resident_mask is not None:
        resident_mask = np.asarray(resident_mask, dtype=bool)
        if resident_mask.size != graph.num_nodes:
            raise SimulationError("resident_mask length must equal num_nodes")

    if active.size == 0:
        return SweepCost()
    if device.warp_size <= 0:
        raise SimulationError("warp_size must be positive")
    line = device.line_words
    if line <= 0:
        raise SimulationError("line_words must be positive")
    if partition == "edge":
        return _charge_sweep_edge(
            graph,
            device,
            active,
            resident_mask=resident_mask,
            all_shared=all_shared,
            expansion=expansion,
        )

    # This is the per-sweep hot path of the whole simulator: it runs once
    # per frontier per solver iteration, usually on small actives where
    # fixed numpy overhead dominates.  It therefore computes the warp
    # schedule, divergence stats, and access expansion inline (sharing
    # the degree array) and counts transactions with structural key
    # spans instead of data-scanned ones — the packing changes, but any
    # injective packing yields the identical distinct-segment count the
    # composable pieces (`form_warps` + `expand_accesses` +
    # `count_transactions`, kept for tests and external callers) produce.
    ws = device.warp_size
    count = active.size
    num_warps = -(-count // ws)
    if expansion is None:
        starts = graph.offsets[active].astype(np.int64)
        degs = graph.offsets[active + 1].astype(np.int64) - starts
    else:
        starts = None
        degs = expansion.degs
    warp_of_pos = np.arange(count, dtype=np.int64) // ws
    warp_starts = np.arange(0, count, ws, dtype=np.int64)
    warp_max = np.maximum.reduceat(degs, warp_starts)
    lanes = np.full(num_warps, ws, dtype=np.int64)
    lanes[-1] = count - warp_starts[-1]
    busy = int(degs.sum())
    serial = int(warp_max.sum())
    idle = int((warp_max * lanes).sum()) - busy

    # structural span bounds (no data scans); the guard mirrors
    # memory._encode_keys' int64 overflow refusal
    step_span = max(int(warp_max.max()), 1) if count else 1
    edge_seg_span = graph.num_edges // line + 1
    node_seg_span = graph.num_nodes // line + 1
    if num_warps * step_span * max(edge_seg_span, node_seg_span) >= _INT64_MAX:
        raise SimulationError("access space too large to encode in int64 keys")

    if busy:
        if expansion is None:
            step = ragged_arange(degs)
            edge_pos = np.repeat(starts, degs) + step
            dst = graph.indices[edge_pos].astype(np.int64)
        else:
            step = expansion.step
            edge_pos = expansion.epos
            dst = expansion.e_dst
        gid = np.repeat(warp_of_pos, degs) * step_span + step
        # (1) reading the edges array itself
        edge_t = _distinct_groups(gid, edge_pos // line, edge_seg_span)
        # (2) destination-attribute accesses, split by residency
        dst_seg = dst // line
        if all_shared:
            attr_global_t = 0
            attr_shared_t = _distinct_groups(gid, dst_seg, node_seg_span)
        elif resident_mask is not None:
            shared = resident_mask[dst]
            glob = ~shared
            attr_global_t = _distinct_groups(
                gid[glob], dst_seg[glob], node_seg_span
            )
            attr_shared_t = _distinct_groups(
                gid[shared], dst_seg[shared], node_seg_span
            )
        else:
            attr_global_t = _distinct_groups(gid, dst_seg, node_seg_span)
            attr_shared_t = 0
    else:
        edge_t = attr_global_t = attr_shared_t = 0
    edge_latency = device.shared_latency if all_shared else device.edge_latency

    # (3) one source-attribute pass: lane p reads/writes attribute of its own
    # node; coalesced iff active ids are clustered.
    src_t = _distinct_groups(warp_of_pos, active // line, node_seg_span)
    src_latency = device.shared_latency if all_shared else device.global_latency

    atomic_ops = busy
    cycles = (
        serial * device.issue_cycles
        + edge_t * edge_latency
        + attr_global_t * device.global_latency
        + attr_shared_t * device.shared_latency
        + src_t * src_latency
        + atomic_ops * device.atomic_cycles
    )
    return SweepCost(
        serial_steps=serial,
        busy_lane_steps=busy,
        idle_lane_steps=idle,
        edge_transactions=edge_t,
        attr_global_transactions=attr_global_t,
        attr_shared_transactions=attr_shared_t,
        src_transactions=src_t,
        atomic_ops=atomic_ops,
        cycles=float(cycles),
    )


def _charge_sweep_edge(
    graph: CSRGraph,
    device: DeviceConfig,
    active: np.ndarray,
    *,
    resident_mask: np.ndarray | None,
    all_shared: bool,
    expansion,
) -> SweepCost:
    """Edge-balanced variant of :func:`charge_sweep`.

    The work items are the gathered edge *records* themselves: warps of
    ``warp_size`` consecutive records, each lane handling exactly one
    record in one neighbor-loop step.  Degree skew therefore costs
    nothing — ``serial_steps = ceil(E / warp_size)`` and the only idle
    lanes sit in the ragged final warp — which is the whole point of
    edge-balanced load partitioning (Gunrock's LB advance).  The price
    the model charges: every lane must read its *own record's source
    attribute* (lanes no longer share one node per lane), so the
    source-attribute pass becomes per-record transactions grouped by
    the edge-warp, typically more traffic than the vertex-balanced
    per-node pass on clustered frontiers.
    """
    line = device.line_words
    if expansion is None:
        starts = graph.offsets[active].astype(np.int64)
        degs = graph.offsets[active + 1].astype(np.int64) - starts
        total = int(degs.sum())
        if total:
            step = ragged_arange(degs)
            edge_pos = np.repeat(starts, degs) + step
            dst = graph.indices[edge_pos].astype(np.int64)
            e_src = np.repeat(active, degs)
    else:
        degs = expansion.degs
        total = int(expansion.epos.size)
        if total:
            edge_pos = expansion.epos
            dst = expansion.e_dst
            e_src = expansion.e_src
            if e_src is None:
                e_src = np.repeat(expansion.frontier, degs)
    if total == 0:
        return SweepCost()

    ws = device.warp_size
    num_warps = -(-total // ws)
    edge_seg_span = graph.num_edges // line + 1
    node_seg_span = graph.num_nodes // line + 1
    if num_warps * max(edge_seg_span, node_seg_span) >= _INT64_MAX:
        raise SimulationError("access space too large to encode in int64 keys")

    # one record per lane, one step per warp: no degree divergence
    serial = num_warps
    busy = total
    idle = num_warps * ws - total
    gid = np.arange(total, dtype=np.int64) // ws

    edge_t = _distinct_groups(gid, edge_pos // line, edge_seg_span)
    dst_seg = dst // line
    if all_shared:
        attr_global_t = 0
        attr_shared_t = _distinct_groups(gid, dst_seg, node_seg_span)
    elif resident_mask is not None:
        shared = resident_mask[dst]
        glob = ~shared
        attr_global_t = _distinct_groups(gid[glob], dst_seg[glob], node_seg_span)
        attr_shared_t = _distinct_groups(
            gid[shared], dst_seg[shared], node_seg_span
        )
    else:
        attr_global_t = _distinct_groups(gid, dst_seg, node_seg_span)
        attr_shared_t = 0
    edge_latency = device.shared_latency if all_shared else device.edge_latency

    # per-record source-attribute read, coalesced within each edge-warp
    src_t = _distinct_groups(gid, e_src // line, node_seg_span)
    src_latency = device.shared_latency if all_shared else device.global_latency

    atomic_ops = busy
    cycles = (
        serial * device.issue_cycles
        + edge_t * edge_latency
        + attr_global_t * device.global_latency
        + attr_shared_t * device.shared_latency
        + src_t * src_latency
        + atomic_ops * device.atomic_cycles
    )
    return SweepCost(
        serial_steps=serial,
        busy_lane_steps=busy,
        idle_lane_steps=idle,
        edge_transactions=edge_t,
        attr_global_transactions=attr_global_t,
        attr_shared_transactions=attr_shared_t,
        src_transactions=src_t,
        atomic_ops=atomic_ops,
        cycles=float(cycles),
    )
