"""GPU device model configuration.

The paper measures on an Nvidia K40C (Kepler: 15 SMX, 2880 cores, 12 GB,
warp size 32, 48 KB shared memory per block, 128-byte global-memory
transactions).  We have no GPU, so ``repro.gpusim`` *simulates* warp
execution with an explicit cost model; this module holds the knobs of that
model, with defaults shaped after the K40C.

The three cost-model terms map one-to-one onto the paper's three
optimization dimensions:

* ``line_words`` drives **memory coalescing** — a warp step that touches
  ``t`` distinct ``line_words``-sized segments of an attribute array costs
  ``t`` transactions;
* ``global_latency`` vs ``shared_latency`` drives **memory latency** — a
  transaction served from (simulated) shared memory is this much cheaper;
* serialized per-warp steps (``max`` lane degree) drive **thread
  divergence** — idle lanes don't shorten the warp's sweep.

Latencies are *effective* (post latency-hiding) cycles per transaction, not
raw DRAM latencies; with thousands of concurrent warps a K40C hides most of
the ~400-cycle raw latency, so the defaults are small multiples of the
shared-memory cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SimulationError

__all__ = ["DeviceConfig", "K40C"]


@dataclass(frozen=True)
class DeviceConfig:
    """Parameters of the simulated GPU.

    Attributes
    ----------
    warp_size:
        threads per warp (SIMD width).  Must be a power of two.
    line_words:
        words per memory transaction segment.  Accesses by one warp step
        that fall in the same segment coalesce into one transaction.  The
        paper's chunk size ``k = 16`` corresponds to 128-byte segments of
        8-byte attribute words.
    issue_cycles:
        cycles to issue one warp instruction step (the serialized unit of
        divergence accounting).
    global_latency:
        effective cycles per global-memory transaction on the *attribute*
        arrays (read-modify-write traffic that cannot use the read-only
        cache).
    edge_latency:
        effective cycles per transaction on the read-only *edges/offsets*
        arrays — Kepler streams these through the texture/read-only path
        (LonestarGPU uses ``__ldg``), so they are markedly cheaper than
        attribute traffic.
    shared_latency:
        effective cycles per shared-memory transaction.
    atomic_cycles:
        extra cycles per atomic update (one per processed edge; the
        paper's kernels use ``atomicAdd``/``atomicMin`` on the destination
        attribute).
    shared_mem_words:
        attribute words of shared memory available to one thread block;
        bounds how many nodes a §3 cluster may pin.
    num_sms / warps_per_sm:
        parallel capacity; used only to scale summed warp cycles into
        wall-clock-like "sim seconds", never affects speedup ratios.
    clock_ghz:
        nominal clock for the cycles -> seconds conversion.
    """

    warp_size: int = 32
    line_words: int = 16
    issue_cycles: int = 4
    global_latency: int = 24
    edge_latency: int = 6
    shared_latency: int = 2
    atomic_cycles: int = 2
    shared_mem_words: int = 6144
    num_sms: int = 15
    warps_per_sm: int = 4
    clock_ghz: float = 0.745

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or (self.warp_size & (self.warp_size - 1)) != 0:
            raise SimulationError(f"warp_size must be a power of two, got {self.warp_size}")
        if self.line_words <= 0:
            raise SimulationError("line_words must be positive")
        if self.global_latency < self.shared_latency:
            raise SimulationError(
                "global_latency must be >= shared_latency (otherwise shared "
                "memory would be pointless and the §3 technique meaningless)"
            )
        if self.edge_latency < self.shared_latency:
            raise SimulationError("edge_latency must be >= shared_latency")
        for name in ("issue_cycles", "shared_latency", "atomic_cycles",
                     "shared_mem_words", "num_sms", "warps_per_sm"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be positive")
        if self.clock_ghz <= 0:
            raise SimulationError("clock_ghz must be positive")

    @property
    def parallel_warps(self) -> int:
        """Warps the device retires concurrently (cycles scale divisor)."""
        return self.num_sms * self.warps_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        """Scale summed warp cycles to simulated seconds."""
        return cycles / self.parallel_warps / (self.clock_ghz * 1e9)

    def with_(self, **kwargs: object) -> "DeviceConfig":
        """A modified copy (dataclasses.replace with validation rerun)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: Default device shaped after the paper's Nvidia K40C.
K40C = DeviceConfig()
