"""Execution context: one simulated kernel stream over a graph.

Algorithms compute their values with honest vectorized numpy updates and
call :meth:`ExecutionContext.charge` once per kernel sweep so the cost
model accounts what that sweep *would* cost on the modeled GPU.  The
context owns:

* the **processing order** — how node ids map to threads (Graffix's §4
  bucket sort changes this; everything else uses id order);
* the **residency mask** — which nodes' attributes live in simulated
  shared memory (§3's pinned clusters);
* the accumulating :class:`~repro.gpusim.metrics.SimMetrics` ledger.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from ..graphs.properties import ragged_arange
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..perf.gather import SweepExpansion
from .costmodel import SweepCost, charge_sweep, charge_sweeps_batched
from .device import DeviceConfig, K40C
from .metrics import SimMetrics

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """A simulated kernel stream bound to one graph and one device."""

    #: edge count above which :meth:`charge_batch` charges a sweep on its
    #: own instead of folding it into a concatenated batch
    BATCH_EAGER_EDGES = 4096

    def __init__(
        self,
        graph: CSRGraph,
        device: DeviceConfig = K40C,
        *,
        order: np.ndarray | None = None,
        resident_mask: np.ndarray | None = None,
    ) -> None:
        self.graph = graph
        self.device = device
        n = graph.num_nodes
        self._identity_order = order is None
        if order is None:
            self._order = np.arange(n, dtype=np.int64)
        else:
            order = np.asarray(order, dtype=np.int64)
            if order.size != n:
                raise SimulationError("processing order must list every node once")
            seen = np.zeros(n, dtype=bool)
            seen[order] = True
            if not seen.all():
                raise SimulationError("processing order must be a permutation")
            self._order = order
        # rank[v] = position of node v in the processing order
        self._rank = np.empty(n, dtype=np.int64)
        self._rank[self._order] = np.arange(n, dtype=np.int64)
        if resident_mask is not None:
            resident_mask = np.asarray(resident_mask, dtype=bool)
            if resident_mask.size != n:
                raise SimulationError("resident_mask length must equal num_nodes")
        self.resident_mask = resident_mask
        self.metrics = SimMetrics(device=device)
        # lazily built full-graph expansion: topology-driven sweeps
        # (``charge(None)``) all expand the same graph-constant adjacency
        self._full_exp: SweepExpansion | None = None
        # cached instruments: charge() runs once per sweep, so skip the
        # registry lookup on the hot path
        self._sweep_counter = obs_metrics.counter("solve.sweeps")
        self._cycle_counter = obs_metrics.counter("solve.sim_cycles")

    @property
    def order(self) -> np.ndarray:
        """The full processing order (a permutation of node ids)."""
        return self._order

    def ordered(self, active: np.ndarray | None) -> np.ndarray:
        """Active node ids sorted into processing order.

        ``active`` may be a boolean mask or an id array; ``None`` selects
        every node.  On a real GPU the frontier compaction preserves the
        numbering order, which is what this reproduces.
        """
        if active is None:
            return self._order
        active = np.asarray(active)
        if active.dtype == bool:
            if active.size != self.graph.num_nodes:
                raise SimulationError("active mask length must equal num_nodes")
            ids = np.nonzero(active)[0].astype(np.int64)
        else:
            ids = active.astype(np.int64)
        if self._identity_order:
            # rank == id, so the stable argsort below reduces to a plain
            # value sort; frontiers from np.nonzero are already sorted,
            # making this near-free on the per-sweep hot path
            return np.sort(ids)
        return ids[np.argsort(self._rank[ids], kind="stable")]

    def charge(
        self,
        active: np.ndarray | None = None,
        *,
        all_shared: bool = False,
        subgraph: CSRGraph | None = None,
        expansion=None,
        partition: str = "vertex",
    ) -> SweepCost:
        """Account one sweep and add it to the ledger.

        ``subgraph`` substitutes a different CSR structure (same node-id
        space) for this sweep — the §3 runner uses it to charge
        cluster-only iterations over the cluster edge set, and pull
        schedules use it to charge gathers over the reverse view
        (:class:`~repro.perf.edgeshare.PullEdgeView.rev`).

        ``expansion`` is an optional precomputed
        :class:`~repro.perf.gather.SweepExpansion` of ``active`` over
        the charged structure (``subgraph`` when given, else
        ``self.graph``); it spares the cost model re-expanding the same
        adjacency (identical charges, less host work).  It is used only
        when the processing order is the identity — under a permuted
        order the expansion the cost model needs differs from the
        solver's and it is silently ignored.  A non-matching expansion
        raises.

        ``partition`` selects vertex- or edge-balanced warp assignment
        for the cost model (see
        :func:`~repro.gpusim.costmodel.charge_sweep`).
        """
        graph = subgraph if subgraph is not None else self.graph
        with obs_trace.span("solve.sweep") as sp:
            active_ids = self.ordered(active)
            if expansion is not None:
                if not self._identity_order:
                    expansion = None
                elif not np.array_equal(active_ids, expansion.frontier):
                    raise SimulationError(
                        "expansion does not match the active list"
                    )
            elif active is None and subgraph is None and self._identity_order:
                # a full sweep's expansion is graph-constant: build it
                # once and reuse it for every topology-driven charge
                expansion = self._full_expansion()
            cost = charge_sweep(
                graph,
                self.device,
                active_ids,
                resident_mask=None if all_shared else self.resident_mask,
                all_shared=all_shared,
                expansion=expansion,
                partition=partition,
            )
            if sp is not None:
                sp.set(
                    active=int(active_ids.size),
                    cycles=cost.cycles,
                    serial_steps=cost.serial_steps,
                    edge_transactions=cost.edge_transactions,
                    attr_global_transactions=cost.attr_global_transactions,
                    attr_shared_transactions=cost.attr_shared_transactions,
                    atomic_ops=cost.atomic_ops,
                    shared=bool(all_shared),
                )
        self.metrics.add(cost)
        self._sweep_counter.inc()
        self._cycle_counter.inc(cost.cycles)
        return cost

    def _full_expansion(self) -> SweepExpansion:
        """The (cached) CSR expansion of every node in id order."""
        if self._full_exp is None:
            g = self.graph
            degs = (g.offsets[1:] - g.offsets[:-1]).astype(np.int64)
            self._full_exp = SweepExpansion(
                self._order,
                degs,
                ragged_arange(degs),
                np.arange(g.num_edges, dtype=np.int64),
                None,
                g.indices.astype(np.int64),
            )
        return self._full_exp

    def charge_batch(self, sweeps, *, partition: str = "vertex") -> None:
        """Charge many sweeps from their precomputed expansions at once.

        ``sweeps`` is a sequence of
        :class:`~repro.perf.gather.SweepExpansion`, one per sweep, each
        already in processing order.  The ledger ends up exactly as if
        :meth:`charge` had been called once per sweep in sequence —
        same per-sweep costs, same accumulation order — but the cost
        model's work is vectorized across the whole batch, which is
        what keeps accounting cheap for level-synchronous solvers.

        With a non-identity processing order the expansions don't match
        the warp assignment, so this degrades to per-sweep charging.
        ``partition="edge"`` likewise charges per sweep — the batched
        path models vertex-balanced warps only, and edge-balanced
        schedules are exactly the ones whose huge dense sweeps the
        batch would flush eagerly anyway.

        Sweeps at or above ``BATCH_EAGER_EDGES`` edges are charged
        eagerly even inside a batch: concatenating a huge expansion
        costs more than the per-call overhead the batch saves, which
        only pays off for runs of small frontiers.  The ledger order —
        and with it the bit pattern of the accumulated float cycles —
        is the per-sweep sequence either way.
        """
        if not sweeps:
            return
        if not self._identity_order or partition != "vertex":
            for exp in sweeps:
                self.charge(exp.frontier, expansion=exp, partition=partition)
            return

        run: list = []

        def _flush() -> None:
            if not run:
                return
            with obs_trace.span("solve.sweep_batch", sweeps=len(run)):
                costs = charge_sweeps_batched(
                    self.graph,
                    self.device,
                    run,
                    resident_mask=self.resident_mask,
                )
            for cost in costs:
                self._ledger(cost)
            run.clear()

        for exp in sweeps:
            if exp.epos.size >= self.BATCH_EAGER_EDGES:
                _flush()
                self._ledger(
                    charge_sweep(
                        self.graph,
                        self.device,
                        exp.frontier,
                        resident_mask=self.resident_mask,
                        expansion=exp,
                    )
                )
            else:
                run.append(exp)
        _flush()

    def _ledger(self, cost: SweepCost) -> None:
        self.metrics.add(cost)
        self._sweep_counter.inc()
        self._cycle_counter.inc(cost.cycles)

    def charge_cost(self, cost: SweepCost) -> None:
        """Add an externally computed cost (e.g. a host-side reduction)."""
        self.metrics.add(cost)
