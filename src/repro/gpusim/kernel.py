"""Execution context: one simulated kernel stream over a graph.

Algorithms compute their values with honest vectorized numpy updates and
call :meth:`ExecutionContext.charge` once per kernel sweep so the cost
model accounts what that sweep *would* cost on the modeled GPU.  The
context owns:

* the **processing order** — how node ids map to threads (Graffix's §4
  bucket sort changes this; everything else uses id order);
* the **residency mask** — which nodes' attributes live in simulated
  shared memory (§3's pinned clusters);
* the accumulating :class:`~repro.gpusim.metrics.SimMetrics` ledger.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .costmodel import SweepCost, charge_sweep
from .device import DeviceConfig, K40C
from .metrics import SimMetrics

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """A simulated kernel stream bound to one graph and one device."""

    def __init__(
        self,
        graph: CSRGraph,
        device: DeviceConfig = K40C,
        *,
        order: np.ndarray | None = None,
        resident_mask: np.ndarray | None = None,
    ) -> None:
        self.graph = graph
        self.device = device
        n = graph.num_nodes
        if order is None:
            self._order = np.arange(n, dtype=np.int64)
        else:
            order = np.asarray(order, dtype=np.int64)
            if order.size != n:
                raise SimulationError("processing order must list every node once")
            seen = np.zeros(n, dtype=bool)
            seen[order] = True
            if not seen.all():
                raise SimulationError("processing order must be a permutation")
            self._order = order
        # rank[v] = position of node v in the processing order
        self._rank = np.empty(n, dtype=np.int64)
        self._rank[self._order] = np.arange(n, dtype=np.int64)
        if resident_mask is not None:
            resident_mask = np.asarray(resident_mask, dtype=bool)
            if resident_mask.size != n:
                raise SimulationError("resident_mask length must equal num_nodes")
        self.resident_mask = resident_mask
        self.metrics = SimMetrics(device=device)
        # cached instruments: charge() runs once per sweep, so skip the
        # registry lookup on the hot path
        self._sweep_counter = obs_metrics.counter("solve.sweeps")
        self._cycle_counter = obs_metrics.counter("solve.sim_cycles")

    @property
    def order(self) -> np.ndarray:
        """The full processing order (a permutation of node ids)."""
        return self._order

    def ordered(self, active: np.ndarray | None) -> np.ndarray:
        """Active node ids sorted into processing order.

        ``active`` may be a boolean mask or an id array; ``None`` selects
        every node.  On a real GPU the frontier compaction preserves the
        numbering order, which is what this reproduces.
        """
        if active is None:
            return self._order
        active = np.asarray(active)
        if active.dtype == bool:
            if active.size != self.graph.num_nodes:
                raise SimulationError("active mask length must equal num_nodes")
            ids = np.nonzero(active)[0].astype(np.int64)
        else:
            ids = active.astype(np.int64)
        return ids[np.argsort(self._rank[ids], kind="stable")]

    def charge(
        self,
        active: np.ndarray | None = None,
        *,
        all_shared: bool = False,
        subgraph: CSRGraph | None = None,
    ) -> SweepCost:
        """Account one sweep and add it to the ledger.

        ``subgraph`` substitutes a different CSR structure (same node-id
        space) for this sweep — the §3 runner uses it to charge
        cluster-only iterations over the cluster edge set.
        """
        graph = subgraph if subgraph is not None else self.graph
        with obs_trace.span("solve.sweep") as sp:
            active_ids = self.ordered(active)
            cost = charge_sweep(
                graph,
                self.device,
                active_ids,
                resident_mask=None if all_shared else self.resident_mask,
                all_shared=all_shared,
            )
            if sp is not None:
                sp.set(
                    active=int(active_ids.size),
                    cycles=cost.cycles,
                    serial_steps=cost.serial_steps,
                    edge_transactions=cost.edge_transactions,
                    attr_global_transactions=cost.attr_global_transactions,
                    attr_shared_transactions=cost.attr_shared_transactions,
                    atomic_ops=cost.atomic_ops,
                    shared=bool(all_shared),
                )
        self.metrics.add(cost)
        self._sweep_counter.inc()
        self._cycle_counter.inc(cost.cycles)
        return cost

    def charge_cost(self, cost: SweepCost) -> None:
        """Add an externally computed cost (e.g. a host-side reduction)."""
        self.metrics.add(cost)
