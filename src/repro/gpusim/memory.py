"""Memory-coalescing analysis: grouping warp accesses into transactions.

The GPU memory controller services one *transaction* per distinct
``line_words``-sized segment touched by the lanes of a warp in one step.
Perfectly coalesced access (32 lanes, consecutive words) costs 1–2
transactions; scattered access costs up to 32.  This module counts
transactions for a batch of ``(warp, step, address)`` access records,
fully vectorized.

This is the quantity Graffix's §2 transform exists to reduce, so its
correctness is load-bearing for the whole reproduction; the unit tests
check it against a brute-force per-warp-step ``set()`` count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["TransactionCount", "count_transactions", "split_transactions"]

_INT64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class TransactionCount:
    """Transactions and raw accesses for one batch of memory operations."""

    transactions: int
    accesses: int

    @property
    def coalescing_efficiency(self) -> float:
        """Accesses served per transaction, normalized to [0, 1].

        1.0 means perfectly coalesced (every access shared a segment with
        the rest of its warp step); approaching 0 means fully scattered.
        """
        if self.accesses == 0:
            return 1.0
        return 1.0 - (self.transactions - _min_transactions(self.accesses)) / max(
            self.accesses, 1
        )


def _min_transactions(accesses: int) -> int:
    # at least one transaction is always needed per non-empty batch
    return 1 if accesses else 0


def _encode_keys(
    warp: np.ndarray, step: np.ndarray, segment: np.ndarray
) -> np.ndarray:
    """Pack (warp, step, segment) into collision-free int64 keys."""
    if warp.size == 0:
        return np.empty(0, dtype=np.int64)
    w_span = int(step.max()) + 1
    s_span = int(segment.max()) + 1
    key_max = (int(warp.max()) + 1) * w_span * s_span
    if key_max >= _INT64_MAX:
        raise SimulationError("access space too large to encode in int64 keys")
    return (warp.astype(np.int64) * w_span + step) * s_span + segment


def count_transactions(
    warp: np.ndarray,
    step: np.ndarray,
    address: np.ndarray,
    line_words: int,
) -> TransactionCount:
    """Count memory transactions for a batch of accesses.

    Parameters
    ----------
    warp, step, address:
        parallel int arrays: lane accesses grouped by which warp issued
        them and at which serialized step; ``address`` is a word index
        into the accessed array.
    line_words:
        transaction segment size in words.
    """
    warp = np.asarray(warp, dtype=np.int64)
    step = np.asarray(step, dtype=np.int64)
    address = np.asarray(address, dtype=np.int64)
    if not (warp.shape == step.shape == address.shape):
        raise SimulationError("warp/step/address arrays must be parallel")
    if line_words <= 0:
        raise SimulationError("line_words must be positive")
    if warp.size == 0:
        return TransactionCount(0, 0)
    if address.min() < 0:
        raise SimulationError("addresses must be non-negative")
    keys = _encode_keys(warp, step, address // line_words)
    # distinct-count via in-place sort of the freshly built key array —
    # identical to ``np.unique(keys).size`` but without the hash-table
    # machinery, which dominates the whole simulator at small batch sizes
    keys.sort()
    distinct = 1 + int(np.count_nonzero(keys[1:] != keys[:-1]))
    return TransactionCount(distinct, int(keys.size))


def split_transactions(
    warp: np.ndarray,
    step: np.ndarray,
    address: np.ndarray,
    line_words: int,
    shared_mask: np.ndarray,
) -> tuple[TransactionCount, TransactionCount]:
    """Like :func:`count_transactions`, split into (global, shared) batches.

    ``shared_mask`` is a boolean per access: True means the word is
    resident in (simulated) shared memory, so its transaction is charged
    at the shared-memory latency.  Segments are counted independently per
    space — a segment straddling resident and non-resident words costs one
    transaction in each, which matches a real kernel keeping a shared-mem
    staging copy of the resident attributes.
    """
    shared_mask = np.asarray(shared_mask, dtype=bool)
    if shared_mask.shape != np.shape(warp):
        raise SimulationError("shared_mask must be parallel to the access arrays")
    g = ~shared_mask
    return (
        count_transactions(warp[g], step[g], address[g], line_words),
        count_transactions(
            warp[shared_mask], step[shared_mask], address[shared_mask], line_words
        ),
    )
