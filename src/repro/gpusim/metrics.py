"""Accumulating execution metrics across kernel sweeps.

An algorithm run is a sequence of sweeps (fixed-point iterations, BFS
levels, Borůvka rounds …); :class:`SimMetrics` sums their
:class:`~repro.gpusim.costmodel.SweepCost` breakdowns and converts the
total to the "sim seconds" reported in the Table 2–4 reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .costmodel import SweepCost
from .device import DeviceConfig

__all__ = ["SimMetrics"]


@dataclass
class SimMetrics:
    """Mutable ledger of one simulated algorithm execution."""

    device: DeviceConfig
    total: SweepCost = field(default_factory=SweepCost)
    num_sweeps: int = 0

    def add(self, cost: SweepCost) -> None:
        """Record one sweep's cost."""
        self.total = self.total + cost
        self.num_sweeps += 1

    def merge(self, other: "SimMetrics") -> None:
        """Fold another ledger (e.g. a sub-phase) into this one."""
        self.total = self.total + other.total
        self.num_sweeps += other.num_sweeps

    @property
    def cycles(self) -> float:
        return self.total.cycles

    @property
    def seconds(self) -> float:
        """Simulated wall-clock of the kernel portion of the run."""
        return self.device.cycles_to_seconds(self.total.cycles)

    @property
    def divergence_ratio(self) -> float:
        return self.total.divergence_ratio

    @property
    def shared_fraction(self) -> float:
        """Fraction of attribute transactions served from shared memory."""
        attr = self.total.attr_global_transactions + self.total.attr_shared_transactions
        if attr == 0:
            return 0.0
        return self.total.attr_shared_transactions / attr

    def summary(self) -> dict[str, float]:
        """Flat dict for reporting/benchmark output."""
        return {
            "cycles": self.total.cycles,
            "seconds": self.seconds,
            "sweeps": float(self.num_sweeps),
            "serial_steps": float(self.total.serial_steps),
            "idle_lane_steps": float(self.total.idle_lane_steps),
            "edge_transactions": float(self.total.edge_transactions),
            "attr_global_transactions": float(self.total.attr_global_transactions),
            "attr_shared_transactions": float(self.total.attr_shared_transactions),
            "src_transactions": float(self.total.src_transactions),
            "atomic_ops": float(self.total.atomic_ops),
            "divergence_ratio": self.divergence_ratio,
            "shared_fraction": self.shared_fraction,
        }
