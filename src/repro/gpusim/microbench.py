"""Cost-model microbenchmarks: synthetic access patterns with known shapes.

A cost model is only trustworthy if it ranks canonical access patterns
the way the hardware does.  This module builds tiny synthetic graphs
whose kernels exhibit *known* behaviour — fully streaming, strided,
random-scatter, hub-serialized — and charges them through the real cost
model.  The test suite asserts the orderings (stream < stride < random;
uniform < skewed divergence); users can run :func:`microbench_report` to
eyeball the model's calibration on their own DeviceConfig.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from .costmodel import SweepCost, charge_sweep
from .device import DeviceConfig, K40C

__all__ = [
    "MicrobenchResult",
    "stream_pattern",
    "strided_pattern",
    "random_pattern",
    "hub_pattern",
    "run_microbenches",
    "microbench_report",
]


def stream_pattern(n: int = 1024, degree: int = 4) -> CSRGraph:
    """Best case: node ``i``'s j-th neighbor is ``i + j`` (mod n) — warp
    lanes touch adjacent words at every step."""
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    dst = (src + np.tile(np.arange(degree, dtype=np.int64), n)) % n
    return CSRGraph.from_edges(n, src, dst, sort_neighbors=False)


def strided_pattern(n: int = 1024, degree: int = 4, stride: int = 32) -> CSRGraph:
    """Each lane's targets are ``stride`` words apart — one transaction
    per lane once the stride exceeds the line size."""
    if stride < 1:
        raise SimulationError("stride must be >= 1")
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    lane = src % n
    dst = (lane * stride + np.tile(np.arange(degree, dtype=np.int64), n)) % n
    return CSRGraph.from_edges(n, src, dst, sort_neighbors=False)


def random_pattern(n: int = 1024, degree: int = 4, seed: int = 0) -> CSRGraph:
    """Worst case: uniformly random targets."""
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    dst = rng.integers(0, n, size=src.size)
    return CSRGraph.from_edges(n, src, dst, sort_neighbors=False)


def hub_pattern(n: int = 1024, hub_degree: int = 512, leaf_degree: int = 1) -> CSRGraph:
    """Divergence stress: one hub with a huge adjacency among leaves —
    the hub's warp serializes ``hub_degree`` steps while its 31 siblings
    idle."""
    rng = np.random.default_rng(1)
    hub_dst = rng.permutation(n)[:hub_degree].astype(np.int64)
    leaf_src = np.arange(1, n, dtype=np.int64)
    leaf_dst = (leaf_src + 1) % n
    src = np.concatenate([np.zeros(hub_degree, dtype=np.int64),
                          np.repeat(leaf_src, leaf_degree)])
    dst = np.concatenate([hub_dst, np.repeat(leaf_dst, leaf_degree)])
    return CSRGraph.from_edges(n, src, dst, sort_neighbors=False)


@dataclass(frozen=True)
class MicrobenchResult:
    name: str
    cost: SweepCost

    @property
    def transactions_per_access(self) -> float:
        if self.cost.atomic_ops == 0:
            return 0.0
        return (
            self.cost.attr_global_transactions + self.cost.attr_shared_transactions
        ) / self.cost.atomic_ops


def run_microbenches(device: DeviceConfig = K40C) -> list[MicrobenchResult]:
    """Charge the four canonical patterns through the cost model."""
    patterns = {
        "stream": stream_pattern(),
        "strided": strided_pattern(stride=device.line_words * 2),
        "random": random_pattern(),
        "hub": hub_pattern(),
    }
    return [
        MicrobenchResult(name=name, cost=charge_sweep(g, device))
        for name, g in patterns.items()
    ]


def microbench_report(device: DeviceConfig = K40C) -> str:
    """Human-readable calibration check of the cost model."""
    rows = run_microbenches(device)
    lines = [
        "cost-model microbenchmarks",
        "--------------------------",
        f"{'pattern':10s} {'cycles':>12s} {'attr txn/access':>16s} "
        f"{'divergence':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:10s} {r.cost.cycles:12,.0f} "
            f"{r.transactions_per_access:16.3f} "
            f"{r.cost.divergence_ratio:11.2f}"
        )
    lines.append(
        "expected ordering: stream < strided <= random on txn/access; "
        "hub maximizes divergence"
    )
    return "\n".join(lines)
