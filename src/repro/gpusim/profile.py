"""Kernel-profile reporting: an ``nvprof``-style breakdown of a run.

The cost model produces per-sweep component counts; this module turns an
accumulated :class:`~repro.gpusim.metrics.SimMetrics` (or a pair of them)
into a human-readable profile — which cost component dominates, where the
cycles went, and, for exact-vs-approx pairs, which component the transform
actually improved.  The examples and EXPERIMENTS.md use it to make the
speedups mechanistically explainable rather than just asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceConfig
from .metrics import SimMetrics

__all__ = ["CycleBreakdown", "breakdown", "profile_report", "compare_report"]


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycles attributed to each cost-model component."""

    compute: float
    edge_memory: float
    attr_global_memory: float
    attr_shared_memory: float
    src_memory: float
    atomics: float

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.edge_memory
            + self.attr_global_memory
            + self.attr_shared_memory
            + self.src_memory
            + self.atomics
        )

    @property
    def memory_fraction(self) -> float:
        """Share of cycles spent on memory transactions — the 'graph
        algorithms are memory-bound' number."""
        mem = (
            self.edge_memory
            + self.attr_global_memory
            + self.attr_shared_memory
            + self.src_memory
        )
        return mem / self.total if self.total else 0.0

    def as_rows(self) -> list[tuple[str, float, float]]:
        total = self.total or 1.0
        items = [
            ("compute (serialized warp steps)", self.compute),
            ("edges array reads", self.edge_memory),
            ("attribute reads/writes (global)", self.attr_global_memory),
            ("attribute reads/writes (shared)", self.attr_shared_memory),
            ("source attribute pass", self.src_memory),
            ("atomic updates", self.atomics),
        ]
        return [(name, cyc, cyc / total) for name, cyc in items]


def breakdown(metrics: SimMetrics) -> CycleBreakdown:
    """Attribute a run's cycles to the cost-model components."""
    d: DeviceConfig = metrics.device
    t = metrics.total
    return CycleBreakdown(
        compute=t.serial_steps * d.issue_cycles,
        edge_memory=t.edge_transactions * d.edge_latency,
        attr_global_memory=t.attr_global_transactions * d.global_latency,
        attr_shared_memory=t.attr_shared_transactions * d.shared_latency,
        src_memory=t.src_transactions * d.global_latency,
        atomics=t.atomic_ops * d.atomic_cycles,
    )


def profile_report(metrics: SimMetrics, *, title: str = "kernel profile") -> str:
    """Render one run's cycle breakdown as an aligned text block."""
    b = breakdown(metrics)
    lines = [title, "-" * len(title)]
    for name, cyc, frac in b.as_rows():
        lines.append(f"{name:34s} {cyc:14,.0f} cyc  {frac:6.1%}")
    lines.append(
        f"{'total':34s} {b.total:14,.0f} cyc  "
        f"(memory-bound: {b.memory_fraction:.0%}, "
        f"{metrics.num_sweeps} sweeps, "
        f"divergence ratio {metrics.divergence_ratio:.2f})"
    )
    return "\n".join(lines)


def compare_report(
    exact: SimMetrics, approx: SimMetrics, *, title: str = "exact vs approx"
) -> str:
    """Side-by-side component comparison of two runs.

    Shows, per component, the exact cycles, approx cycles, and the ratio —
    making visible *which* hardware effect a transform improved (e.g. the
    coalescing transform should shrink the global attribute row).
    """
    be, ba = breakdown(exact), breakdown(approx)
    lines = [title, "-" * len(title)]
    lines.append(f"{'component':34s} {'exact':>14s} {'approx':>14s} {'ratio':>7s}")
    for (name, ce, _), (_, ca, _) in zip(be.as_rows(), ba.as_rows()):
        ratio = ce / ca if ca else float("inf")
        lines.append(f"{name:34s} {ce:14,.0f} {ca:14,.0f} {ratio:6.2f}x")
    total_ratio = be.total / ba.total if ba.total else float("inf")
    lines.append(
        f"{'total':34s} {be.total:14,.0f} {ba.total:14,.0f} {total_ratio:6.2f}x"
    )
    return "\n".join(lines)
