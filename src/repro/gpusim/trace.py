"""Access-trace capture: per-step diagnostics behind the cost totals.

``charge_sweep`` returns aggregate counts; when debugging *why* a layout
coalesces badly you need the per-step picture — how many transactions
each serialized warp step issued, which warps diverge, which memory
segments are hot.  :func:`trace_sweep` recomputes one sweep with full
detail retained; the report helpers summarize it for humans.

This is a diagnostics tool: the algorithms never pay its memory cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..graphs.csr import CSRGraph
from .costmodel import expand_accesses
from .device import DeviceConfig, K40C

__all__ = ["SweepTrace", "trace_sweep", "transactions_per_step", "hot_segments"]


@dataclass(frozen=True)
class SweepTrace:
    """Raw per-access records of one sweep.

    All arrays are parallel, one entry per (lane, step) attribute access:
    ``warp``, ``step``, ``segment`` (attribute-array segment id), and
    ``dst`` (the accessed node).  ``warp_max_deg`` and ``warp_sizes`` are
    per-warp.
    """

    warp: np.ndarray
    step: np.ndarray
    segment: np.ndarray
    dst: np.ndarray
    warp_max_deg: np.ndarray
    warp_sizes: np.ndarray
    line_words: int

    @property
    def num_accesses(self) -> int:
        return int(self.warp.size)

    @property
    def num_warps(self) -> int:
        return int(self.warp_max_deg.size)

    def transactions(self) -> int:
        """Total attribute transactions (must agree with the cost model)."""
        if self.warp.size == 0:
            return 0
        key = (
            self.warp * (int(self.step.max()) + 1) + self.step
        ) * (int(self.segment.max()) + 1) + self.segment
        return int(np.unique(key).size)


def trace_sweep(
    graph: CSRGraph,
    device: DeviceConfig = K40C,
    active: np.ndarray | None = None,
) -> SweepTrace:
    """Capture the attribute-access trace of one topology/frontier sweep."""
    if active is None:
        active = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        active = np.asarray(active, dtype=np.int64)
        if active.size and (active.min() < 0 or active.max() >= graph.num_nodes):
            raise SimulationError("active node id out of range")
    warp, step, _epos, dst = expand_accesses(graph, active, device.warp_size)
    degs = (graph.offsets[active + 1] - graph.offsets[active]).astype(np.int64)
    starts = np.arange(0, active.size, device.warp_size)
    if active.size:
        warp_max = np.maximum.reduceat(degs, starts)
        sizes = np.full(warp_max.size, device.warp_size, dtype=np.int64)
        sizes[-1] = active.size - starts[-1]
    else:
        warp_max = np.empty(0, dtype=np.int64)
        sizes = np.empty(0, dtype=np.int64)
    return SweepTrace(
        warp=warp,
        step=step,
        segment=dst // device.line_words,
        dst=dst,
        warp_max_deg=warp_max,
        warp_sizes=sizes,
        line_words=device.line_words,
    )


def transactions_per_step(trace: SweepTrace) -> np.ndarray:
    """``out[j]`` = total transactions issued at serialized step ``j``.

    A well-coalesced layout shows low, flat values; a scattered one shows
    values near the lane count for every early step.
    """
    if trace.num_accesses == 0:
        return np.empty(0, dtype=np.int64)
    max_step = int(trace.step.max())
    seg_span = int(trace.segment.max()) + 1
    key = trace.warp * seg_span + trace.segment
    out = np.zeros(max_step + 1, dtype=np.int64)
    for j in range(max_step + 1):
        mask = trace.step == j
        if mask.any():
            out[j] = np.unique(key[mask]).size
    return out


def hot_segments(trace: SweepTrace, top: int = 10) -> list[tuple[int, int]]:
    """The ``top`` most-touched attribute segments as (segment, hits).

    Hot segments are the §3 candidates: attribute words every warp keeps
    returning to (hub clusters).
    """
    if trace.num_accesses == 0:
        return []
    segs, counts = np.unique(trace.segment, return_counts=True)
    order = np.argsort(-counts)[:top]
    return [(int(segs[i]), int(counts[i])) for i in order]
