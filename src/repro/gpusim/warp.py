"""Warp formation and thread-divergence accounting.

A vertex-centric kernel assigns each thread one node from the *processing
order* (for topology-driven kernels, node-id order; for frontier kernels,
the compacted frontier).  Threads are grouped into warps of
``device.warp_size``; a warp executes in SIMD lock-step, so its neighbor
loop runs for ``max`` lane degree steps and lanes with smaller degrees sit
idle — the paper's thread-divergence cost.  §4's transform narrows the
degree spread inside each warp precisely to shrink the idle area computed
here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

__all__ = ["WarpSchedule", "form_warps", "divergence_stats"]


@dataclass(frozen=True)
class WarpSchedule:
    """Warps formed over an ordered list of active nodes.

    Attributes
    ----------
    nodes:
        active node ids in processing order.
    warp_of_position:
        warp id for each position in ``nodes``.
    warp_starts:
        index into ``nodes`` where each warp begins.
    num_warps:
        total warps launched (last one may be partially filled).
    """

    nodes: np.ndarray
    warp_of_position: np.ndarray
    warp_starts: np.ndarray
    num_warps: int


def form_warps(active_nodes: np.ndarray, warp_size: int) -> WarpSchedule:
    """Group ``active_nodes`` (already ordered) into warps."""
    nodes = np.asarray(active_nodes, dtype=np.int64)
    if warp_size <= 0:
        raise SimulationError("warp_size must be positive")
    count = nodes.size
    num_warps = -(-count // warp_size) if count else 0
    positions = np.arange(count, dtype=np.int64)
    return WarpSchedule(
        nodes=nodes,
        warp_of_position=positions // warp_size,
        warp_starts=np.arange(0, count, warp_size, dtype=np.int64),
        num_warps=num_warps,
    )


@dataclass(frozen=True)
class DivergenceStats:
    """Per-sweep divergence summary.

    ``serial_steps`` is the sum over warps of the max lane degree — the
    number of serialized neighbor-loop steps the device actually executes.
    ``busy_lane_steps`` is the sum of lane degrees (useful work);
    ``idle_lane_steps`` is the wasted SIMD area.  ``divergence_ratio`` is
    idle / total lane-steps, 0 for perfectly uniform warps.
    """

    serial_steps: int
    busy_lane_steps: int
    idle_lane_steps: int
    max_warp_degree: int

    @property
    def divergence_ratio(self) -> float:
        total = self.busy_lane_steps + self.idle_lane_steps
        if total == 0:
            return 0.0
        return self.idle_lane_steps / total


def divergence_stats(
    schedule: WarpSchedule, degrees: np.ndarray, warp_size: int
) -> DivergenceStats:
    """Compute divergence accounting for one sweep.

    ``degrees`` is the out-degree of each node in ``schedule.nodes`` order.
    The last (partial) warp's missing lanes are *not* counted as idle —
    they were never launched.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.shape != schedule.nodes.shape:
        raise SimulationError("degrees must be parallel to schedule.nodes")
    if degrees.size == 0:
        return DivergenceStats(0, 0, 0, 0)
    warp_max = np.maximum.reduceat(degrees, schedule.warp_starts)
    # lanes actually present per warp (the final warp may be partial)
    lanes = np.full(schedule.num_warps, warp_size, dtype=np.int64)
    lanes[-1] = degrees.size - schedule.warp_starts[-1]
    busy = int(degrees.sum())
    serial = int(warp_max.sum())
    area = int((warp_max * lanes).sum())
    return DivergenceStats(
        serial_steps=serial,
        busy_lane_steps=busy,
        idle_lane_steps=area - busy,
        max_warp_degree=int(warp_max.max()),
    )
