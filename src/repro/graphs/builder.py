"""Incremental graph construction and conversion utilities.

The Graffix transforms (renumbering, replication, edge insertion) need to
assemble modified graphs edge-by-edge before freezing them back into CSR.
:class:`GraphBuilder` provides that staging area; the module also converts
to and from :mod:`networkx` and :mod:`scipy.sparse` for the exact reference
implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..errors import GraphFormatError
from .csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover
    import networkx

__all__ = [
    "GraphBuilder",
    "to_scipy",
    "from_scipy",
    "to_networkx",
    "from_networkx",
    "permute",
]


class GraphBuilder:
    """Accumulates edges and freezes them into a :class:`CSRGraph`.

    Edges are staged in Python lists of numpy chunks so that bulk inserts
    (the common case in transforms) stay vectorized.
    """

    def __init__(self, num_nodes: int, weighted: bool = False) -> None:
        if num_nodes < 0:
            raise GraphFormatError("num_nodes must be non-negative")
        self.num_nodes = int(num_nodes)
        self.weighted = bool(weighted)
        self._src: list[np.ndarray] = []
        self._dst: list[np.ndarray] = []
        self._w: list[np.ndarray] = []

    @classmethod
    def from_graph(cls, graph: CSRGraph) -> "GraphBuilder":
        """Start from an existing graph's edges."""
        b = cls(graph.num_nodes, weighted=graph.is_weighted)
        b.add_edges(
            graph.edge_sources().astype(np.int64),
            graph.indices.astype(np.int64),
            graph.weights,
        )
        return b

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        self.add_edges(
            np.array([u], dtype=np.int64),
            np.array([v], dtype=np.int64),
            np.array([weight]) if self.weighted else None,
        )

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphFormatError("src/dst length mismatch")
        if src.size == 0:
            return
        if src.min() < 0 or dst.min() < 0 or max(src.max(), dst.max()) >= self.num_nodes:
            raise GraphFormatError("edge endpoint out of range for builder")
        self._src.append(src)
        self._dst.append(dst)
        if self.weighted:
            if weights is None:
                weights = np.ones(src.size, dtype=np.float64)
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphFormatError("weights length mismatch")
            self._w.append(weights)

    def grow(self, new_num_nodes: int) -> None:
        """Raise the node-id ceiling (used when adding replica slots)."""
        if new_num_nodes < self.num_nodes:
            raise GraphFormatError("grow() cannot shrink the node set")
        self.num_nodes = int(new_num_nodes)

    @property
    def num_staged_edges(self) -> int:
        return int(sum(c.size for c in self._src))

    def build(self, *, dedup: bool = False, sort_neighbors: bool = True) -> CSRGraph:
        """Freeze the staged edges into a CSR graph."""
        if not self._src:
            g = CSRGraph.empty(self.num_nodes)
            if self.weighted:
                g = g.with_weights(np.empty(0, dtype=np.float64))
            return g
        src = np.concatenate(self._src)
        dst = np.concatenate(self._dst)
        w = np.concatenate(self._w) if self.weighted else None
        return CSRGraph.from_edges(
            self.num_nodes, src, dst, w, dedup=dedup, sort_neighbors=sort_neighbors
        )


def to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    """Adjacency matrix of ``graph`` as a scipy CSR matrix.

    Unweighted edges get weight 1.0.  Parallel edges are summed by scipy's
    canonical format, so callers comparing edge counts should dedup first.

    The ``data`` array is a copy, never the graph's own ``weights`` buffer:
    scipy exposes ``data`` mutably (several callers rewrite it in place,
    e.g. ``mat.data[:] = 1.0`` to drop weights), and aliasing would let
    that silently corrupt the immutable-by-convention source graph — and
    invalidate its cached :meth:`~repro.graphs.csr.CSRGraph.fingerprint`.
    """
    return sp.csr_matrix(
        (graph.effective_weights().copy(), graph.indices, graph.offsets),
        shape=(graph.num_nodes, graph.num_nodes),
    )


def from_scipy(mat: sp.spmatrix, weighted: bool = True) -> CSRGraph:
    """Build a :class:`CSRGraph` from any scipy sparse matrix."""
    m = sp.csr_matrix(mat)
    m.sum_duplicates()
    n = m.shape[0]
    if m.shape[0] != m.shape[1]:
        raise GraphFormatError("adjacency matrix must be square")
    return CSRGraph(
        m.indptr.astype(np.int64),
        m.indices.astype(np.int32),
        m.data.astype(np.float64) if weighted else None,
    )


def to_networkx(graph: CSRGraph) -> "networkx.DiGraph":
    """Convert to a networkx DiGraph (for the exact reference algorithms)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    srcs = graph.edge_sources()
    w = graph.effective_weights()
    g.add_weighted_edges_from(
        zip(srcs.tolist(), graph.indices.tolist(), w.tolist())
    )
    return g


def from_networkx(g: "networkx.Graph", weighted: bool = False) -> CSRGraph:
    """Build a :class:`CSRGraph` from a networkx (di)graph.

    Node labels must be integers ``0..n-1``.  Undirected graphs are
    symmetrized (both edge directions emitted).
    """
    import networkx as nx

    n = g.number_of_nodes()
    if set(g.nodes) != set(range(n)):
        raise GraphFormatError("networkx nodes must be labelled 0..n-1")
    src, dst, w = [], [], []
    for u, v, data in g.edges(data=True):
        src.append(u)
        dst.append(v)
        w.append(float(data.get("weight", 1.0)))
    src_a = np.asarray(src, dtype=np.int64)
    dst_a = np.asarray(dst, dtype=np.int64)
    w_a = np.asarray(w, dtype=np.float64)
    if not isinstance(g, nx.DiGraph):
        src_a, dst_a = np.concatenate([src_a, dst_a]), np.concatenate([dst_a, src_a])
        w_a = np.concatenate([w_a, w_a])
    return CSRGraph.from_edges(
        n, src_a, dst_a, w_a if weighted else None, dedup=True
    )


def permute(graph: CSRGraph, new_id: np.ndarray) -> CSRGraph:
    """Relabel nodes: node ``v`` becomes ``new_id[v]``.

    ``new_id`` must be a permutation of ``0..n-1``.  Edge weights follow
    their edges.  This is the exact (approximation-free) part of the
    coalescing transform — the resulting graph is isomorphic to the input.
    """
    new_id = np.asarray(new_id, dtype=np.int64)
    n = graph.num_nodes
    if new_id.size != n:
        raise GraphFormatError("permutation length must equal num_nodes")
    seen = np.zeros(n, dtype=bool)
    seen[new_id] = True
    if not seen.all():
        raise GraphFormatError("new_id must be a permutation of 0..n-1")
    src = new_id[graph.edge_sources()]
    dst = new_id[graph.indices]
    return CSRGraph.from_edges(n, src, dst, graph.weights)
