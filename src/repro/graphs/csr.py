"""Compressed Sparse Row (CSR) graph storage.

This is the storage format the paper assumes (its Figure 1): an ``offsets``
array of length ``n + 1``, an ``indices`` (the paper's *edges*) array of
length ``m`` holding destination node ids, and optional parallel arrays for
edge weights.  All Graffix transforms, the GPU simulator, and the algorithms
operate on this structure.

The class is immutable by convention: transforms return new graphs rather
than mutating in place, which keeps the exact/approximate comparisons in the
evaluation harness honest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import GraphFormatError

__all__ = ["CSRGraph"]

_OFFSET_DTYPE = np.int64
_INDEX_DTYPE = np.int32
_WEIGHT_DTYPE = np.float64


@dataclass
class CSRGraph:
    """A directed graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``num_nodes + 1``; ``offsets[v]`` is the
        start of node ``v``'s adjacency list inside ``indices``.
    indices:
        ``int32`` array of length ``num_edges``; destination node ids.
    weights:
        optional ``float64`` array parallel to ``indices``.  ``None`` means
        the graph is unweighted (every edge has implicit weight 1).
    """

    offsets: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None
    validate: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        self.offsets = np.ascontiguousarray(self.offsets, dtype=_OFFSET_DTYPE)
        self.indices = np.ascontiguousarray(self.indices, dtype=_INDEX_DTYPE)
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=_WEIGHT_DTYPE)
        if self.validate:
            self.check()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        src: Iterable[int] | np.ndarray,
        dst: Iterable[int] | np.ndarray,
        weights: Iterable[float] | np.ndarray | None = None,
        *,
        dedup: bool = False,
        sort_neighbors: bool = True,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel source/destination arrays.

        Parameters
        ----------
        dedup:
            drop duplicate ``(src, dst)`` pairs, keeping the first weight.
        sort_neighbors:
            sort each adjacency list by destination id (the common on-disk
            layout; the coalescing analysis is sensitive to it, so it is on
            by default and tests cover both settings).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphFormatError(
                f"src and dst must have the same length, got {src.shape} vs {dst.shape}"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=_WEIGHT_DTYPE)
            if weights.shape != src.shape:
                raise GraphFormatError(
                    f"weights length {weights.shape} does not match edges {src.shape}"
                )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphFormatError("edge endpoints must be non-negative")
        if src.size and max(int(src.max()), int(dst.max())) >= num_nodes:
            raise GraphFormatError(
                "edge endpoint exceeds num_nodes="
                f"{num_nodes}: max src {src.max()}, max dst {dst.max()}"
            )

        if sort_neighbors or dedup:
            order = np.lexsort((dst, src))
        else:
            order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        if weights is not None:
            weights = weights[order]

        if dedup and src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.not_equal(src[1:], src[:-1], out=keep[1:])
            keep[1:] |= dst[1:] != dst[:-1]
            src, dst = src[keep], dst[keep]
            if weights is not None:
                weights = weights[keep]

        counts = np.bincount(src, minlength=num_nodes)
        offsets = np.zeros(num_nodes + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, dst.astype(_INDEX_DTYPE), weights)

    @classmethod
    def empty(cls, num_nodes: int) -> "CSRGraph":
        """An edgeless graph on ``num_nodes`` nodes."""
        return cls(
            np.zeros(num_nodes + 1, dtype=_OFFSET_DTYPE),
            np.empty(0, dtype=_INDEX_DTYPE),
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`GraphFormatError` if any CSR invariant is violated."""
        if self.offsets.ndim != 1 or self.indices.ndim != 1:
            raise GraphFormatError("offsets and indices must be 1-D arrays")
        if self.offsets.size == 0:
            raise GraphFormatError("offsets must have length num_nodes + 1 >= 1")
        if self.offsets[0] != 0:
            raise GraphFormatError(f"offsets[0] must be 0, got {self.offsets[0]}")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if self.offsets[-1] != self.indices.size:
            raise GraphFormatError(
                f"offsets[-1]={self.offsets[-1]} must equal len(indices)={self.indices.size}"
            )
        n = self.num_nodes
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphFormatError("edge destination out of range")
        if self.weights is not None and self.weights.shape != self.indices.shape:
            raise GraphFormatError("weights must be parallel to indices")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self.offsets)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an ``int64`` array."""
        return np.bincount(self.indices, minlength=self.num_nodes).astype(_OFFSET_DTYPE)

    def neighbors(self, v: int) -> np.ndarray:
        """Destination ids of node ``v``'s outgoing edges (a view)."""
        return self.indices[self.offsets[v] : self.offsets[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of node ``v``'s outgoing edges (all-ones if unweighted)."""
        if self.weights is None:
            return np.ones(int(self.offsets[v + 1] - self.offsets[v]), dtype=_WEIGHT_DTYPE)
        return self.weights[self.offsets[v] : self.offsets[v + 1]]

    def fingerprint(self) -> str:
        """Stable content hash of the CSR arrays (hex digest).

        Unlike ``id(graph)``, the fingerprint survives the object and can
        never be reused for a different graph, so it is safe as a cache
        key (the harness memoizes exact baseline runs on it).  Computed
        once and cached; relies on the class's immutable-by-convention
        contract.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            h = hashlib.sha1()
            h.update(np.int64(self.num_nodes).tobytes())
            h.update(self.offsets.tobytes())
            h.update(self.indices.tobytes())
            if self.weights is not None:
                h.update(b"w")
                h.update(self.weights.tobytes())
            cached = h.hexdigest()
            self._fingerprint = cached
        return cached

    def edge_sources(self) -> np.ndarray:
        """Source node id of every edge, parallel to ``indices``."""
        return np.repeat(
            np.arange(self.num_nodes, dtype=_INDEX_DTYPE), self.out_degrees()
        )

    def effective_weights(self) -> np.ndarray:
        """``weights`` if present, otherwise an all-ones array."""
        if self.weights is not None:
            return self.weights
        return np.ones(self.num_edges, dtype=_WEIGHT_DTYPE)

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        # adjacency lists built by from_edges are sorted; fall back to a
        # linear scan for graphs assembled by transforms, which may not be.
        if nbrs.size > 8 and np.all(nbrs[:-1] <= nbrs[1:]):
            i = np.searchsorted(nbrs, v)
            return bool(i < nbrs.size and nbrs[i] == v)
        return bool(np.any(nbrs == v))

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples (weight 1.0 if unweighted)."""
        srcs = self.edge_sources()
        w = self.effective_weights()
        for i in range(self.num_edges):
            yield int(srcs[i]), int(self.indices[i]), float(w[i])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph (every edge reversed)."""
        return CSRGraph.from_edges(
            self.num_nodes,
            self.indices.astype(np.int64),
            self.edge_sources().astype(np.int64),
            self.weights,
        )

    def to_undirected(self) -> "CSRGraph":
        """Symmetrized, de-duplicated view used for clustering-coefficient
        analysis (the paper treats the graph as undirected for CC)."""
        src = self.edge_sources().astype(np.int64)
        dst = self.indices.astype(np.int64)
        keep = src != dst  # drop self loops in the undirected view
        src, dst = src[keep], dst[keep]
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        return CSRGraph.from_edges(self.num_nodes, all_src, all_dst, dedup=True)

    def subgraph_edge_mask(self, node_mask: np.ndarray) -> np.ndarray:
        """Boolean mask over edges whose both endpoints satisfy ``node_mask``."""
        node_mask = np.asarray(node_mask, dtype=bool)
        if node_mask.size != self.num_nodes:
            raise GraphFormatError("node mask length must equal num_nodes")
        return node_mask[self.edge_sources()] & node_mask[self.indices]

    def with_weights(self, weights: np.ndarray | None) -> "CSRGraph":
        """A copy of this graph with the given edge weights."""
        return CSRGraph(self.offsets.copy(), self.indices.copy(), weights)

    def copy(self) -> "CSRGraph":
        return CSRGraph(
            self.offsets.copy(),
            self.indices.copy(),
            None if self.weights is None else self.weights.copy(),
        )

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.indices, other.indices)
        ):
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is not None:
            return bool(np.allclose(self.weights, other.weights))
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = "weighted" if self.is_weighted else "unweighted"
        return f"CSRGraph(n={self.num_nodes}, m={self.num_edges}, {w})"
