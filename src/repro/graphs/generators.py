"""Synthetic graph suite standing in for the paper's Table 1 inputs.

The paper evaluates on five graphs: ``rmat26`` and ``random26`` (GTgraph,
2^26 nodes / ~10^9 edges each), ``LiveJournal`` and ``twitter`` (SNAP
social networks, power-law, small diameter) and ``USA-road`` (SNAP road
network, near-uniform low degree, large diameter).  We have neither the
SNAP downloads (offline) nor the memory for billion-edge graphs, so this
module generates scaled stand-ins that match each original on the two axes
the Graffix techniques are sensitive to:

* **degree-distribution shape** — power-law (rmat / livejournal / twitter)
  vs. binomial (random) vs. near-constant (road), and
* **diameter regime** — small-world vs. long-path.

All generators take an explicit seed and return weighted directed graphs
(weights uniform in ``[1, max_weight]``, as GTgraph does), so runs are
reproducible bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import GraphFormatError
from ..obs import trace as obs_trace
from .csr import CSRGraph

__all__ = [
    "rmat",
    "erdos_renyi",
    "road_network",
    "preferential_attachment",
    "heavy_tail_social",
    "paper_suite",
    "PAPER_GRAPH_NAMES",
]


def _attach_weights(
    num_edges: int, rng: np.random.Generator, max_weight: int
) -> np.ndarray:
    """Integer-valued weights in [1, max_weight], stored as float64."""
    return rng.integers(1, max_weight + 1, size=num_edges).astype(np.float64)


def _finalize(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    rng: np.random.Generator,
    weighted: bool,
    max_weight: int,
    shuffle: bool,
) -> CSRGraph:
    """Common tail of every generator: optional label shuffle + weights.

    ``shuffle`` applies a seeded random relabelling before freezing the
    CSR.  Real inputs (SNAP crawls, GTgraph output) carry no locality
    guarantee in their vertex ids; our synthetic constructions do
    (row-major grids, age-ordered preferential attachment), and leaving
    that in place would gift the *baseline* a near-optimal memory layout
    no real dataset has — hiding exactly the effect the paper's
    renumbering targets.  Tests exercise both settings.
    """
    if shuffle:
        perm = rng.permutation(num_nodes).astype(np.int64)
        src = perm[src]
        dst = perm[dst]
    weights = _attach_weights(src.size, rng, max_weight) if weighted else None
    return CSRGraph.from_edges(num_nodes, src, dst, weights, dedup=True)


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
    max_weight: int = 100,
    shuffle: bool = True,
) -> CSRGraph:
    """Recursive-MATrix (R-MAT) generator, the GTgraph/Graph500 kernel.

    Produces ``2**scale`` nodes and ``edge_factor * 2**scale`` directed
    edges with a power-law in/out-degree distribution.  The paper's
    ``rmat26`` is ``scale=26, edge_factor=16``; tests and benchmarks use
    much smaller scales.
    """
    if not 0 < a + b + c < 1:
        raise GraphFormatError("R-MAT probabilities must satisfy 0 < a+b+c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Every recursion level picks one of the four quadrants for all edges at
    # once; this is the standard vectorized R-MAT with slight probability
    # noise per level (as GTgraph applies) to avoid degenerate staircases.
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        noise = rng.uniform(0.95, 1.05, size=4)
        pa, pb, pc = a * noise[0], b * noise[1], c * noise[2]
        pd = (1.0 - a - b - c) * noise[3]
        total = pa + pb + pc + pd
        r = rng.random(m) * total
        right = (r >= pa) & (r < pa + pb) | (r >= pa + pb + pc)
        down = r >= pa + pb
        src += np.where(down, bit, 0)
        dst += np.where(right, bit, 0)
    return _finalize(n, src, dst, rng, weighted, max_weight, shuffle)


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    *,
    seed: int = 0,
    weighted: bool = True,
    max_weight: int = 100,
    shuffle: bool = True,
) -> CSRGraph:
    """G(n, m) uniform random directed graph (GTgraph's ``random`` mode)."""
    if num_nodes <= 0:
        raise GraphFormatError("num_nodes must be positive")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return _finalize(num_nodes, src, dst, rng, weighted, max_weight, shuffle)


def road_network(
    side: int,
    *,
    diagonal_prob: float = 0.05,
    removal_prob: float = 0.03,
    seed: int = 0,
    weighted: bool = True,
    max_weight: int = 100,
    shuffle: bool = True,
) -> CSRGraph:
    """USA-road stand-in: a ``side x side`` grid with perturbations.

    Grid graphs have near-constant degree (2–4) and diameter ``O(side)``,
    matching the two properties of road networks that matter for Graffix:
    uniform low degrees (so divergence is mild and the replication
    threshold wants to be low) and a large diameter (so propagation
    algorithms need many iterations).  A few diagonal shortcuts are added
    and a few grid edges removed so the graph is not perfectly regular.
    Edges are emitted in both directions.
    """
    if side < 2:
        raise GraphFormatError("side must be >= 2")
    rng = np.random.default_rng(seed)
    n = side * side
    ids = np.arange(n).reshape(side, side)
    horiz_u = ids[:, :-1].ravel()
    horiz_v = ids[:, 1:].ravel()
    vert_u = ids[:-1, :].ravel()
    vert_v = ids[1:, :].ravel()
    src = np.concatenate([horiz_u, vert_u])
    dst = np.concatenate([horiz_v, vert_v])
    keep = rng.random(src.size) >= removal_prob
    src, dst = src[keep], dst[keep]
    diag_u = ids[:-1, :-1].ravel()
    diag_v = ids[1:, 1:].ravel()
    keep_d = rng.random(diag_u.size) < diagonal_prob
    src = np.concatenate([src, diag_u[keep_d]])
    dst = np.concatenate([dst, diag_v[keep_d]])
    # symmetrize: road segments are traversable both ways
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    return _finalize(n, all_src, all_dst, rng, weighted, max_weight, shuffle)


def preferential_attachment(
    num_nodes: int,
    out_degree: int = 14,
    *,
    seed: int = 0,
    weighted: bool = True,
    max_weight: int = 100,
    shuffle: bool = True,
    reciprocity: float = 0.7,
) -> CSRGraph:
    """LiveJournal stand-in: Barabási–Albert-style social graph.

    Each arriving node links to ``out_degree`` targets sampled
    proportionally to current degree (plus one), giving a power-law
    in-degree tail and a small diameter, like the LiveJournal friendship
    network (mean degree ~14).  LiveJournal friendships are mostly mutual,
    so each link is emitted in both directions with probability
    ``reciprocity`` — without it, edges would all point from newer to
    older members and most of the graph would be unreachable from any
    single source.
    """
    if num_nodes <= out_degree:
        raise GraphFormatError("num_nodes must exceed out_degree")
    rng = np.random.default_rng(seed)
    # Vectorized preferential attachment via the repeated-endpoints trick:
    # maintain a pool where each node appears once per incident edge.
    core = out_degree + 1
    core_src = np.repeat(np.arange(core), core - 1)
    core_dst = np.concatenate(
        [np.delete(np.arange(core), i) for i in range(core)]
    )
    pool = [np.concatenate([core_src, core_dst])]
    src_chunks = [core_src]
    dst_chunks = [core_dst]
    pool_flat = pool[0]
    for v in range(core, num_nodes):
        targets = pool_flat[rng.integers(0, pool_flat.size, size=out_degree)]
        targets = np.unique(targets)
        s = np.full(targets.size, v, dtype=np.int64)
        src_chunks.append(s)
        dst_chunks.append(targets.astype(np.int64))
        pool.append(np.concatenate([s, targets]))
        # rebuild the flat pool lazily (amortized) to stay O(m) overall
        if len(pool) >= 64:
            pool = [np.concatenate(pool)]
        pool_flat = pool[0] if len(pool) == 1 else np.concatenate(pool)
    src = np.concatenate(src_chunks)
    dst = np.concatenate(dst_chunks)
    mutual = rng.random(src.size) < reciprocity
    src, dst = (
        np.concatenate([src, dst[mutual]]),
        np.concatenate([dst, src[mutual]]),
    )
    return _finalize(num_nodes, src, dst, rng, weighted, max_weight, shuffle)


def heavy_tail_social(
    num_nodes: int,
    mean_degree: int = 35,
    *,
    exponent: float = 1.8,
    seed: int = 0,
    weighted: bool = True,
    max_weight: int = 100,
    shuffle: bool = True,
    triangle_closure: float = 0.1,
) -> CSRGraph:
    """Twitter stand-in: configuration-model graph with a Zipf degree tail.

    The 2010 Twitter snapshot has mean degree ~35 with an extremely heavy
    in-degree tail (celebrity hubs).  We sample out-degrees from a
    truncated Zipf law and wire endpoints with preference toward low ids,
    mimicking hub formation.  A pure configuration model has vanishing
    clustering, which real Twitter does not (~0.1): ``triangle_closure``
    closes that fraction of sampled 2-paths so the §3 technique has the
    clusters the real graph offers.
    """
    if num_nodes <= 1:
        raise GraphFormatError("num_nodes must be > 1")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(exponent, size=num_nodes).astype(np.float64)
    raw = np.minimum(raw, num_nodes // 2)
    degs = np.maximum(1, (raw * (mean_degree / raw.mean())).astype(np.int64))
    degs = np.minimum(degs, num_nodes - 1)
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), degs)
    # hub-biased destinations: squaring a uniform sample skews toward 0,
    # and low ids get the large Zipf draws less often, so we route a
    # fraction of edges to the top-degree nodes explicitly.
    m = src.size
    u = rng.random(m)
    hub_order = np.argsort(-degs)
    to_hub = rng.random(m) < 0.3
    hub_pick = hub_order[(u * min(256, num_nodes)).astype(np.int64) % min(256, num_nodes)]
    uniform_pick = rng.integers(0, num_nodes, size=m)
    dst = np.where(to_hub, hub_pick, uniform_pick)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    if triangle_closure > 0 and src.size:
        # close sampled 2-paths u->v, u->w with an edge v->w (both ways)
        order = np.argsort(src, kind="stable")
        s_sorted, d_sorted = src[order], dst[order]
        degs = np.bincount(s_sorted, minlength=num_nodes)
        starts = np.zeros(num_nodes, dtype=np.int64)
        np.cumsum(degs[:-1], out=starts[1:])
        cand = np.nonzero(degs >= 2)[0]
        if cand.size:
            n_close = int(triangle_closure * src.size)
            pick = cand[rng.integers(0, cand.size, size=n_close)]
            i1 = rng.integers(0, degs[pick])
            i2 = rng.integers(0, degs[pick] - 1)
            i2 = np.where(i2 >= i1, i2 + 1, i2)
            v = d_sorted[starts[pick] + i1]
            w_ = d_sorted[starts[pick] + i2]
            ok = v != w_
            src = np.concatenate([src, v[ok], w_[ok]])
            dst = np.concatenate([dst, w_[ok], v[ok]])
    return _finalize(num_nodes, src, dst, rng, weighted, max_weight, shuffle)


PAPER_GRAPH_NAMES = ("rmat", "random", "livejournal", "usa-road", "twitter")


def paper_suite(
    scale: str = "small", *, seed: int = 7, weighted: bool = True
) -> dict[str, CSRGraph]:
    """The five-graph evaluation suite at a chosen size.

    ``scale`` is one of ``"tiny"`` (unit tests), ``"small"`` (default; the
    benchmark harness), or ``"medium"`` (slower, closer degree tails).
    Keys follow :data:`PAPER_GRAPH_NAMES`.
    """
    sizes = {
        "tiny": dict(rmat_scale=8, er_n=256, er_m=2048, road_side=18, pa_n=300, tw_n=300),
        "small": dict(rmat_scale=11, er_n=2048, er_m=24576, road_side=48, pa_n=2000, tw_n=2000),
        "medium": dict(rmat_scale=13, er_n=8192, er_m=131072, road_side=96, pa_n=8000, tw_n=8000),
    }
    if scale not in sizes:
        raise GraphFormatError(f"unknown suite scale {scale!r}; pick from {sorted(sizes)}")
    s = sizes[scale]
    builders: dict[str, Callable[[], CSRGraph]] = {
        "rmat": lambda: rmat(s["rmat_scale"], edge_factor=12, seed=seed, weighted=weighted),
        "random": lambda: erdos_renyi(s["er_n"], s["er_m"], seed=seed + 1, weighted=weighted),
        "livejournal": lambda: preferential_attachment(
            s["pa_n"], out_degree=12, seed=seed + 2, weighted=weighted
        ),
        "usa-road": lambda: road_network(s["road_side"], seed=seed + 3, weighted=weighted),
        "twitter": lambda: heavy_tail_social(s["tw_n"], seed=seed + 4, weighted=weighted),
    }
    suite: dict[str, CSRGraph] = {}
    with obs_trace.span("io.suite", scale=scale, seed=seed):
        for name in PAPER_GRAPH_NAMES:
            with obs_trace.span("io.generate", graph=name, scale=scale) as sp:
                suite[name] = builders[name]()
                if sp is not None:
                    sp.set(
                        nodes=suite[name].num_nodes,
                        edges=suite[name].num_edges,
                    )
    return suite
