"""Graph (de)serialization.

Two formats:

* a plain-text edge list (``u v [w]`` per line, ``#`` comments, a
  ``# nodes: N`` header) — the format SNAP distributes graphs in, so the
  loaders here would read the paper's real inputs unchanged were they
  available; and
* a ``.npz`` binary of the raw CSR arrays, used to cache transformed
  graphs between benchmark runs (the paper amortizes preprocessing over
  multiple executions; caching is how a user realizes that).
"""

from __future__ import annotations

import io as _io
import zipfile
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from ..obs.trace import traced
from ..resilience.faults import fault_point
from .csr import CSRGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "read_dimacs",
    "write_dimacs",
    "save_npz",
    "load_npz",
]


@traced("io.write_edge_list")
def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``graph`` as a SNAP-style text edge list."""
    path = Path(path)
    srcs = graph.edge_sources()
    w = graph.weights
    with path.open("w") as fh:
        fh.write(f"# nodes: {graph.num_nodes}\n")
        fh.write(f"# edges: {graph.num_edges}\n")
        if w is not None:
            # weightedness is otherwise inferred from the edge lines,
            # which a zero-edge weighted graph doesn't have
            fh.write("# weighted: 1\n")
        if w is None:
            for s, d in zip(srcs.tolist(), graph.indices.tolist()):
                fh.write(f"{s} {d}\n")
        else:
            for s, d, x in zip(srcs.tolist(), graph.indices.tolist(), w.tolist()):
                fh.write(f"{s} {d} {x:g}\n")


@traced("io.read_edge_list")
def read_edge_list(
    path: str | Path,
    *,
    num_nodes: int | None = None,
    require_nodes_header: bool = False,
) -> CSRGraph:
    """Parse a SNAP-style edge list.

    If the file carries no ``# nodes:`` header and ``num_nodes`` is not
    given, the node count is inferred as ``max endpoint + 1`` — unless
    ``require_nodes_header`` is set, in which case a headerless file is a
    :class:`GraphFormatError` (batch pipelines want the explicit count so
    isolated high-id typos cannot silently inflate the graph).
    """
    path = Path(path)
    fault_point("io", str(path))
    header_nodes: int | None = None
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    weighted = False
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip().lower()
                if body.startswith("nodes:"):
                    try:
                        header_nodes = int(body.split(":", 1)[1])
                    except ValueError as exc:
                        raise GraphFormatError(
                            f"{path}:{lineno}: malformed nodes header"
                        ) from exc
                elif body.startswith("weighted:"):
                    try:
                        weighted = bool(int(body.split(":", 1)[1]))
                    except ValueError as exc:
                        raise GraphFormatError(
                            f"{path}:{lineno}: malformed weighted header"
                        ) from exc
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: bad endpoint") from exc
            if len(parts) == 3:
                weighted = True
                try:
                    w = float(parts[2])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: bad weight {parts[2]!r}"
                    ) from exc
                if w < 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: negative weight {w:g}"
                    )
                wts.append(w)
            elif weighted:
                raise GraphFormatError(
                    f"{path}:{lineno}: mixed weighted/unweighted lines"
                )
    if require_nodes_header and header_nodes is None:
        raise GraphFormatError(f"{path}: missing '# nodes:' header")
    n = num_nodes if num_nodes is not None else header_nodes
    if n is None:
        n = (max(max(src), max(dst)) + 1) if src else 0
    return CSRGraph.from_edges(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64) if weighted else None,
    )


@traced("io.write_dimacs")
def write_dimacs(graph: CSRGraph, path: str | Path, *, comment: str = "") -> None:
    """Write the DIMACS shortest-path format (``p sp``, 1-indexed ``a`` arcs).

    This is the native format of the paper's USA-road input (the 9th
    DIMACS Implementation Challenge), so a real download would round-trip
    through here unchanged.
    """
    path = Path(path)
    srcs = graph.edge_sources()
    w = graph.effective_weights()
    with path.open("w") as fh:
        if comment:
            fh.write(f"c {comment}\n")
        fh.write(f"p sp {graph.num_nodes} {graph.num_edges}\n")
        for s_, d, x in zip(srcs.tolist(), graph.indices.tolist(), w.tolist()):
            fh.write(f"a {s_ + 1} {d + 1} {x:g}\n")


@traced("io.read_dimacs")
def read_dimacs(path: str | Path) -> CSRGraph:
    """Parse a DIMACS shortest-path graph (``c``/``p sp``/``a`` lines)."""
    path = Path(path)
    fault_point("io", str(path))
    n: int | None = None
    src: list[int] = []
    dst: list[int] = []
    wts: list[float] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 'p sp <n> <m>'"
                    )
                n = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(
                        f"{path}:{lineno}: expected 'a <u> <v> <w>'"
                    )
                try:
                    u, v = int(parts[1]) - 1, int(parts[2]) - 1
                    x = float(parts[3])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed arc line"
                    ) from exc
                if u < 0 or v < 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: DIMACS node ids are 1-indexed"
                    )
                if x < 0:
                    raise GraphFormatError(
                        f"{path}:{lineno}: negative arc weight {x:g}"
                    )
                src.append(u)
                dst.append(v)
                wts.append(x)
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unknown DIMACS record {parts[0]!r}"
                )
    if n is None:
        raise GraphFormatError(f"{path}: missing 'p sp' header")
    return CSRGraph.from_edges(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wts, dtype=np.float64),
    )


@traced("io.save_npz")
def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Binary-cache the CSR arrays (compressed)."""
    arrays = {"offsets": graph.offsets, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    with Path(path).open("wb") as fh:
        np.savez_compressed(fh, **arrays)


@traced("io.load_npz")
def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph cached by :func:`save_npz`.

    A truncated or otherwise unreadable archive (the telltale of a crash
    mid-:func:`save_npz`) raises :class:`GraphFormatError`, not the
    underlying zip/pickle exception.
    """
    path = Path(path)
    fault_point("io", str(path))
    try:
        ctx = np.load(path)
    except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(
            f"{path}: not a readable graph archive ({exc})"
        ) from exc
    with ctx as data:
        if "offsets" not in data or "indices" not in data:
            raise GraphFormatError(f"{path}: not a repro graph archive")
        try:
            return CSRGraph(
                data["offsets"],
                data["indices"],
                data["weights"] if "weights" in data else None,
            )
        except zipfile.BadZipFile as exc:  # truncated member payload
            raise GraphFormatError(
                f"{path}: corrupt graph archive ({exc})"
            ) from exc


def dumps(graph: CSRGraph) -> bytes:
    """In-memory variant of :func:`save_npz` (round-trips via :func:`loads`)."""
    buf = _io.BytesIO()
    arrays = {"offsets": graph.offsets, "indices": graph.indices}
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


def loads(blob: bytes) -> CSRGraph:
    """Inverse of :func:`dumps`."""
    try:
        ctx = np.load(_io.BytesIO(blob))
    except (ValueError, OSError, EOFError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"not a readable graph blob ({exc})") from exc
    with ctx as data:
        return CSRGraph(
            data["offsets"],
            data["indices"],
            data["weights"] if "weights" in data else None,
        )
