"""Structural analytics used by the Graffix transforms and the evaluation.

The shared-memory technique (paper §3) keys off per-node *clustering
coefficient*; the divergence technique (§4) keys off the degree
distribution; the renumbering (§2) needs BFS levels; Table 1 reports graph
statistics.  Everything here is vectorized (scipy.sparse matrix products
for triangle counting, frontier BFS in numpy).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..cache import memoize_arrays, memoize_json
from ..errors import AlgorithmError
from .builder import to_scipy
from .csr import CSRGraph

__all__ = [
    "clustering_coefficients",
    "bfs_levels",
    "bfs_forest_levels",
    "estimate_diameter",
    "degree_histogram",
    "gini_of_degrees",
    "ragged_arange",
    "GraphStats",
    "graph_stats",
]


def clustering_coefficients(graph: CSRGraph) -> np.ndarray:
    """Per-node local clustering coefficient on the undirected view.

    ``cc[v] = triangles(v) / (deg(v) * (deg(v) - 1) / 2)``; nodes of degree
    < 2 get 0.  Triangle counts come from ``diag(A^3) / 2`` on the
    binarized symmetric adjacency matrix.

    Memoized on the graph fingerprint when :mod:`repro.cache` is enabled
    (§3 keys the shared-memory transform off these coefficients, the knob
    guidelines reuse them, and they are identical across techniques).
    """
    return memoize_arrays(
        "analytics.clustering_coefficients",
        graph,
        None,
        lambda: _clustering_coefficients(graph),
        pack=lambda cc: {"cc": cc},
        unpack=lambda data: data["cc"],
    )


def _clustering_coefficients(graph: CSRGraph) -> np.ndarray:
    und = graph.to_undirected()
    a = to_scipy(und)
    a.data[:] = 1.0
    deg = np.asarray(a.sum(axis=1)).ravel()
    # triangles via A @ A, then row-wise dot with A's pattern
    a2 = (a @ a).tocsr()
    tri = np.asarray(a2.multiply(a).sum(axis=1)).ravel() / 2.0
    denom = deg * (deg - 1) / 2.0
    cc = np.zeros(graph.num_nodes, dtype=np.float64)
    ok = denom > 0
    cc[ok] = tri[ok] / denom[ok]
    return np.clip(cc, 0.0, 1.0)


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS level of every node from ``source``; unreachable nodes get -1."""
    n = graph.num_nodes
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range for n={n}")
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    offsets, indices = graph.offsets, graph.indices
    while frontier.size:
        depth += 1
        starts = offsets[frontier]
        degs = offsets[frontier + 1] - starts
        total = int(degs.sum())
        if total == 0:
            break
        flat = indices[
            np.repeat(starts, degs) + _ragged_arange(degs)
        ]
        nxt = np.unique(flat)
        nxt = nxt[level[nxt] < 0]
        if nxt.size == 0:
            break
        level[nxt] = depth
        frontier = nxt
    return level


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts: [0..c0-1, 0..c1-1, ...]."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    ends = np.cumsum(counts)[:-1]
    # wherever a later segment starts, jump back to 0; a marker lands at
    # position `ends[i]` only when segment i is non-empty (the reset size
    # is then segment i's length) and some positions remain after it
    # (trailing empty segments would index one past the end).
    mark = (counts[:-1] > 0) & (ends < total)
    out[ends[mark]] = 1 - counts[:-1][mark]
    return np.cumsum(out)


#: backwards-compatible alias (the helper predates its public use by
#: :mod:`repro.core.divergence`)
_ragged_arange = ragged_arange


def bfs_forest_levels(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Multi-source BFS forest levels per the Graffix renumbering (§2.2).

    Sources are chosen in decreasing out-degree order among unvisited
    nodes; later BFS traversals may *lower* the level of already-visited
    nodes ("the levels of the visited nodes are updated to a lower value,
    if possible").  Returns ``(levels, roots)`` where ``roots`` lists the
    BFS source nodes in the order used.

    Invariant (relied on by :func:`repro.core.renumber.renumber`, which
    numbers the level-0 block in decreasing-degree order): ``roots`` is
    exactly the set of level-0 nodes — every node that starts its own
    tree, including isolated nodes, appears in ``roots``, and BFS never
    assigns level 0 to a non-root (frontier expansion writes depths
    >= 1, and an existing root cannot be lowered below 0).

    Memoized on the graph fingerprint when :mod:`repro.cache` is enabled
    (the renumbering recomputes the same forest for every technique that
    includes coalescing).
    """
    return memoize_arrays(
        "analytics.bfs_forest_levels",
        graph,
        None,
        lambda: _bfs_forest_levels(graph),
        pack=lambda lr: {"levels": lr[0], "roots": lr[1]},
        unpack=lambda data: (data["levels"], data["roots"]),
    )


def _bfs_forest_levels(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    n = graph.num_nodes
    level = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    order = np.argsort(-graph.out_degrees(), kind="stable")
    roots: list[int] = []
    maxint = np.iinfo(np.int64).max
    offsets, indices = graph.offsets, graph.indices
    for s in order:
        if level[s] != maxint:
            continue
        roots.append(int(s))
        level[s] = 0
        frontier = np.array([s], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            starts = offsets[frontier]
            degs = offsets[frontier + 1] - starts
            if int(degs.sum()) == 0:
                break
            flat = indices[np.repeat(starts, degs) + _ragged_arange(degs)]
            nxt = np.unique(flat)
            nxt = nxt[level[nxt] > depth]  # visit fresh or improvable nodes
            if nxt.size == 0:
                break
            level[nxt] = depth
            frontier = nxt
    # Isolated leftovers become their own roots.  The scan above visits
    # every node, so nothing should be left unassigned — but if a node
    # ever were, silently giving it level 0 *without* listing it as a
    # root would break the documented roots == level-0-nodes invariant,
    # so the leftover handling appends to roots too.
    leftover = np.nonzero(level == maxint)[0]
    if leftover.size:  # pragma: no cover - defensive; order covers all nodes
        level[leftover] = 0
        roots.extend(int(s) for s in leftover)
    return level, np.asarray(roots, dtype=np.int64)


def estimate_diameter(graph: CSRGraph, *, num_probes: int = 4, seed: int = 0) -> int:
    """Lower-bound diameter estimate by double-sweep BFS from random probes.

    Used to pick the shared-memory iteration count ``t ~ 2 x diameter`` and
    to report Table-1 style statistics.  Operates on the undirected view so
    weakly-connected graphs still get a finite estimate.

    Memoized on ``(graph, num_probes, seed)`` when :mod:`repro.cache` is
    enabled — the double-sweep BFS probes dominate ``graph_stats`` time.
    """
    return memoize_json(
        "analytics.estimate_diameter",
        graph,
        {"num_probes": num_probes, "seed": seed},
        lambda: _estimate_diameter(graph, num_probes=num_probes, seed=seed),
        to_jsonable=int,
        from_jsonable=int,
    )


def _estimate_diameter(graph: CSRGraph, *, num_probes: int, seed: int) -> int:
    und = graph.to_undirected()
    n = und.num_nodes
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(num_probes):
        start = int(rng.integers(0, n))
        lv = bfs_levels(und, start)
        reach = lv >= 0
        if not reach.any():
            continue
        far = int(np.argmax(np.where(reach, lv, -1)))
        lv2 = bfs_levels(und, far)
        best = max(best, int(lv2.max()))
    return best


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of nodes with out-degree ``d``."""
    return np.bincount(graph.out_degrees())


def gini_of_degrees(graph: CSRGraph) -> float:
    """Gini coefficient of the out-degree distribution.

    A scalar skewness summary: ~0 for road networks (uniform degrees),
    > 0.5 for power-law graphs.  Used in the threshold guidelines.
    """
    d = np.sort(graph.out_degrees().astype(np.float64))
    n = d.size
    if n == 0 or d.sum() == 0:
        return 0.0
    cum = np.cumsum(d)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


@dataclass(frozen=True)
class GraphStats:
    """Table-1 style summary of a graph."""

    num_nodes: int
    num_edges: int
    mean_degree: float
    max_degree: int
    degree_gini: float
    mean_clustering: float
    diameter_estimate: int


def graph_stats(graph: CSRGraph, *, diameter_probes: int = 2) -> GraphStats:
    """Compute the summary row reported in the Table 1 reproduction.

    Memoized on ``(graph, diameter_probes)`` when :mod:`repro.cache` is
    enabled; the record rides in the metadata sidecar, no array payload.
    """
    return memoize_json(
        "analytics.graph_stats",
        graph,
        {"diameter_probes": diameter_probes},
        lambda: _graph_stats(graph, diameter_probes=diameter_probes),
        to_jsonable=asdict,
        from_jsonable=lambda d: GraphStats(**d),
    )


def _graph_stats(graph: CSRGraph, *, diameter_probes: int) -> GraphStats:
    degs = graph.out_degrees()
    cc = clustering_coefficients(graph)
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        mean_degree=float(degs.mean()) if degs.size else 0.0,
        max_degree=int(degs.max()) if degs.size else 0,
        degree_gini=gini_of_degrees(graph),
        mean_clustering=float(cc.mean()) if cc.size else 0.0,
        diameter_estimate=estimate_diameter(graph, num_probes=diameter_probes),
    )
