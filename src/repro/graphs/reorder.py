"""Competitor vertex reorderings, for comparing against Graffix's scheme.

The paper positions its renumbering against the reordering literature
(§6): Reverse Cuthill-McKee ("RCM performs level order traversal such
that nodes at a level are visited in order of their BFS parent's
placement"), RADAR-style degree sorting ("degree-sorting to assign
highly-connected hub vertices consecutive ids"), and the implicit
baseline of leaving the input order alone.  This module implements those
competitors as plain permutations so the reorder-comparison bench can put
all of them through the same cost model.

Every function returns ``new_id`` with ``new_id[old] -> new`` (the same
convention as :func:`repro.graphs.builder.permute`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..errors import GraphFormatError
from .builder import permute, to_scipy
from .csr import CSRGraph

__all__ = [
    "identity_order",
    "random_order",
    "degree_sort_order",
    "rcm_order",
    "bfs_order",
    "apply_reordering",
    "REORDERINGS",
]


def identity_order(graph: CSRGraph) -> np.ndarray:
    """No-op reordering (the input labeling)."""
    return np.arange(graph.num_nodes, dtype=np.int64)


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Uniformly random relabeling (the worst-case locality baseline)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_nodes).astype(np.int64)


def degree_sort_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """RADAR-style degree sort: hubs get consecutive (low) ids.

    Sorting key is the out-degree; ties keep the original id order so the
    permutation is deterministic.
    """
    degs = graph.out_degrees()
    key = -degs if descending else degs
    order = np.argsort(key, kind="stable")  # order[new] = old
    new_id = np.empty(graph.num_nodes, dtype=np.int64)
    new_id[order] = np.arange(graph.num_nodes, dtype=np.int64)
    return new_id


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill-McKee on the symmetrized structure (scipy)."""
    und = graph.to_undirected()
    mat = to_scipy(und)
    mat.data[:] = 1.0
    perm = csgraph.reverse_cuthill_mckee(mat.tocsr(), symmetric_mode=True)
    new_id = np.empty(graph.num_nodes, dtype=np.int64)
    new_id[np.asarray(perm, dtype=np.int64)] = np.arange(
        graph.num_nodes, dtype=np.int64
    )
    return new_id


def bfs_order(graph: CSRGraph) -> np.ndarray:
    """Plain BFS-forest order *without* Graffix's chunk alignment or
    round-robin child interleaving — the classic locality renumbering the
    paper argues is "ineffective when applied directly to improve
    coalescing" (§2.2)."""
    from .properties import bfs_forest_levels

    levels, _roots = bfs_forest_levels(graph)
    # stable sort by (level, old id): contiguous levels, no alignment
    order = np.lexsort((np.arange(graph.num_nodes), levels))
    new_id = np.empty(graph.num_nodes, dtype=np.int64)
    new_id[order] = np.arange(graph.num_nodes, dtype=np.int64)
    return new_id


def apply_reordering(graph: CSRGraph, new_id: np.ndarray) -> CSRGraph:
    """Relabel ``graph``; thin alias of :func:`repro.graphs.builder.permute`
    with the validation message framed for reorderings."""
    if np.asarray(new_id).shape != (graph.num_nodes,):
        raise GraphFormatError("reordering must assign every node a new id")
    return permute(graph, new_id)


#: name -> order function(graph) (seedless variants only)
REORDERINGS = {
    "identity": identity_order,
    "degree-sort": degree_sort_order,
    "rcm": rcm_order,
    "bfs": bfs_order,
}
