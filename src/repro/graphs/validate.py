"""Deep structural validation beyond the cheap CSR invariants.

:meth:`CSRGraph.check` guards the raw array invariants on every
construction.  The checks here are O(m log m) and are used by tests and by
the transform drivers in debug mode to certify that a transform produced a
well-formed graph (and, for the exact renumbering, an isomorphic one).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "assert_valid",
    "has_duplicate_edges",
    "has_self_loops",
    "is_symmetric",
    "assert_isomorphic_relabelling",
    "edge_set",
]


def edge_set(graph: CSRGraph) -> set[tuple[int, int]]:
    """The graph's edges as a Python set of ``(src, dst)`` pairs."""
    srcs = graph.edge_sources()
    return set(zip(srcs.tolist(), graph.indices.tolist()))


def has_duplicate_edges(graph: CSRGraph) -> bool:
    """True if any ``(src, dst)`` pair appears more than once."""
    srcs = graph.edge_sources().astype(np.int64)
    key = srcs * graph.num_nodes + graph.indices
    return np.unique(key).size != key.size


def has_self_loops(graph: CSRGraph) -> bool:
    """True if any edge has ``src == dst``."""
    return bool(np.any(graph.edge_sources() == graph.indices))


def is_symmetric(graph: CSRGraph) -> bool:
    """True if for every edge (u, v) the edge (v, u) also exists."""
    srcs = graph.edge_sources().astype(np.int64)
    dsts = graph.indices.astype(np.int64)
    n = graph.num_nodes
    fwd = np.unique(srcs * n + dsts)
    bwd = np.unique(dsts * n + srcs)
    return fwd.size == bwd.size and bool(np.array_equal(fwd, bwd))


def assert_valid(
    graph: CSRGraph,
    *,
    allow_duplicates: bool = False,
    allow_self_loops: bool = True,
) -> None:
    """Raise :class:`GraphFormatError` on any structural defect."""
    graph.check()
    if not allow_duplicates and has_duplicate_edges(graph):
        raise GraphFormatError("graph contains duplicate edges")
    if not allow_self_loops and has_self_loops(graph):
        raise GraphFormatError("graph contains self loops")


def assert_isomorphic_relabelling(
    original: CSRGraph, relabelled: CSRGraph, new_id: np.ndarray
) -> None:
    """Certify that ``relabelled`` is exactly ``original`` under ``new_id``.

    Checks node count, edge count, the full relabelled edge multiset, and —
    if weighted — that each edge kept its weight.  This is the correctness
    contract of the *exact* half of the coalescing transform (renumbering
    with no replication must change nothing semantically).
    """
    new_id = np.asarray(new_id, dtype=np.int64)
    if original.num_nodes != relabelled.num_nodes:
        raise GraphFormatError(
            f"node count changed: {original.num_nodes} -> {relabelled.num_nodes}"
        )
    if original.num_edges != relabelled.num_edges:
        raise GraphFormatError(
            f"edge count changed: {original.num_edges} -> {relabelled.num_edges}"
        )
    n = original.num_nodes
    src_o = new_id[original.edge_sources()]
    dst_o = new_id[original.indices]
    w_o = original.effective_weights()
    key_o = src_o * n + dst_o
    order_o = np.lexsort((w_o, key_o))

    src_r = relabelled.edge_sources().astype(np.int64)
    key_r = src_r * n + relabelled.indices
    w_r = relabelled.effective_weights()
    order_r = np.lexsort((w_r, key_r))

    if not np.array_equal(key_o[order_o], key_r[order_r]):
        raise GraphFormatError("relabelled edge multiset differs from original")
    if not np.allclose(w_o[order_o], w_r[order_r]):
        raise GraphFormatError("edge weights were not preserved by relabelling")
