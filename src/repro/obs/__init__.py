"""Structured run telemetry: spans, metrics, and logs.

The paper's claims are mechanistic — coalescing cuts global-memory
traffic, shared-memory pinning cuts latency, divergence smoothing raises
warp efficiency — so the reproduction needs to show *where* a table
cell's wall-clock and simulated cycles went, not just the final number.
This package is the zero-dependency telemetry layer every hot path is
instrumented with:

* :mod:`repro.obs.trace` — nested wall-clock spans with attributes,
  exported as JSONL or Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto).  Disabled (near-zero cost) unless a
  tracer is installed.
* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms with a snapshot/merge API so per-worker
  metrics can be shipped through the scheduler's result queue and
  aggregated in the parent.
* :mod:`repro.obs.log` — structured logging setup (``REPRO_LOG`` /
  ``--log-level``) with an optional JSON-lines mode.
* :mod:`repro.obs.stats` — the ``python -m repro stats <trace>`` report:
  top spans by cumulative time and the transform/solve/io split.
* :mod:`repro.obs.prof` — the ``--profile`` sampling profiler: collapsed
  flamegraph stacks plus per-span self-time attribution.
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn rates,
  evaluated from metrics snapshots (the serve admin ``slo`` op).
* :mod:`repro.obs.diff` — ``python -m repro obs diff A B``: noise-aware
  improved/regressed/neutral verdicts over perf/metrics/trace reports.

See ``docs/observability.md`` for naming conventions and a worked
example.
"""

from __future__ import annotations

from . import diff, log, metrics, prof, slo, stats, trace
from .log import get_logger, setup_logging
from .metrics import (
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    merge_snapshot,
    prometheus_text,
    registry,
    snapshot,
)
from .prof import SamplingProfiler, profiling
from .slo import SLO, SLOTracker
from .trace import Span, Tracer, add_attributes, get_tracer, install_tracer, record_span, span, traced, uninstall_tracer

__all__ = [
    "diff",
    "log",
    "metrics",
    "prof",
    "slo",
    "stats",
    "trace",
    "get_logger",
    "setup_logging",
    "MetricsRegistry",
    "SamplingProfiler",
    "SLO",
    "SLOTracker",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshot",
    "prometheus_text",
    "profiling",
    "registry",
    "snapshot",
    "Span",
    "Tracer",
    "add_attributes",
    "get_tracer",
    "install_tracer",
    "record_span",
    "span",
    "traced",
    "uninstall_tracer",
]
