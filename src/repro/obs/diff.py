"""``python -m repro obs diff A B``: noise-aware performance comparison.

Raw-ratio thresholds ("fail if 1.1× slower") are how perf gates rot:
too tight and they cry wolf on every noisy CI runner, too loose and
real regressions slide under them.  This comparator is *noise-aware*
instead — every comparison carries a per-pair threshold derived from
the **repeated-run spread** of the underlying measurements (the
``samples`` lists ``repro perf`` records per kernel), falling back to a
configurable relative noise floor when no samples exist.  The verdict
per pair is one of ``improved`` / ``regressed`` / ``neutral`` (plus
``below-floor`` for values too small to compare meaningfully and
``added``/``removed`` for asymmetric keys), and the run's exit status
is non-zero iff anything regressed.

Comparable inputs (auto-detected by shape):

* **perf bench reports** (``BENCH_*.json`` from ``python -m repro
  perf``) — per (kernel, graph) min-of-N seconds with sample spreads;
* **trajectory files** (``benchmarks/results/TRAJECTORY.json``) — the
  last recorded entry's report is compared (``--entry`` picks another);
* **metrics snapshots** (``--metrics-out`` JSON) — histogram means and
  time-like gauges;
* **verify reports** (``--report`` of ``python -m repro verify``) — the
  embedded per-check timing gauges, so verification-time regressions
  gate like kernel ones;
* **trace files** (JSONL or Chrome ``trace_event``) — per-span-name
  self-time seconds;
* **profiler reports** (``PREFIX.json`` of ``--profile``) — per-span
  sampled seconds.

The verdict math, for lower-is-better values ``a`` (baseline) and ``b``
(candidate): ``spread(x) = (max(samples) - min(samples)) / min(samples)``
per side, ``threshold = max(noise_floor, spread_a, spread_b)``, then
``b/a > 1 + threshold`` ⇒ regressed, ``b/a < 1/(1 + threshold)`` ⇒
improved, else neutral.  Min-of-N is the location estimate because for
wall-clock the minimum is the least-contended observation.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "load_comparable",
    "extract_series",
    "compare_series",
    "diff_files",
    "format_diff",
    "main",
]

SCHEMA_VERSION = 1

#: default relative noise floor when neither side carries samples
DEFAULT_NOISE = 0.25

#: seconds below which a pair is not compared at all (timer granularity
#: and interpreter jitter dominate); both sides must clear it
DEFAULT_MIN_VALUE = 0.0005

#: gauge-name suffixes treated as lower-is-better timings
_TIME_GAUGE_MARKERS = (".seconds", ".time", "_seconds", ".wait", ".ms")

VERDICTS = ("improved", "regressed", "neutral", "below-floor", "added", "removed")


# ---------------------------------------------------------------------------
# input loading / kind detection
# ---------------------------------------------------------------------------
def load_comparable(path: str | Path, *, entry: int = -1) -> tuple[str, Any]:
    """Load one input file; returns ``(kind, payload)``.

    ``kind`` is one of ``perf`` / ``tune`` / ``metrics`` / ``verify`` /
    ``profile`` / ``trace``.  Trajectory files resolve to the report of
    their ``entry``-th recorded point (default: the last), re-detecting
    the embedded report's kind — perf and tune trajectories share the
    same envelope.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    text = path.read_text()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path} is empty")
    if stripped.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            # multi-line {...} input: a JSONL trace, not broken JSON
            if "\n" in stripped.strip():
                return "trace", _trace_spans(path)
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
        if isinstance(obj, Mapping):
            if "span_id" in obj and "duration" in obj:
                return "trace", _trace_spans(path)  # one-span JSONL trace
            if "entries" in obj and isinstance(obj["entries"], list):
                entries = obj["entries"]
                if not entries:
                    raise ValueError(f"trajectory {path} has no entries")
                try:
                    picked = entries[entry]
                except IndexError:
                    raise ValueError(
                        f"trajectory {path} has {len(entries)} entries; "
                        f"--entry {entry} is out of range"
                    ) from None
                inner = picked["report"]
                kind = _mapping_kind(inner) if isinstance(inner, Mapping) else None
                return kind or "perf", inner
            kind = _mapping_kind(obj)
            if kind is not None:
                return kind, obj
            if "traceEvents" in obj:
                return "trace", _trace_spans(path)
        raise ValueError(f"{path}: unrecognized report shape")


def _mapping_kind(obj: Mapping) -> str | None:
    """Shape-detect a mapping report's kind (``None`` if unrecognized)."""
    if "kernels" in obj:
        return "perf"
    if "families" in obj:
        return "tune"
    if "checks" in obj:
        return "verify"
    if "spans" in obj and "samples" in obj:
        return "profile"
    if "counters" in obj or "histograms" in obj or "gauges" in obj:
        return "metrics"
    return None
    # JSONL trace (one span per line)
    return "trace", _trace_spans(path)


def _trace_spans(path: Path):
    from .stats import load_trace

    return load_trace(path)


# ---------------------------------------------------------------------------
# series extraction: kind-specific -> {key: {"value", "samples"?}}
# ---------------------------------------------------------------------------
def extract_series(kind: str, payload: Any) -> dict[str, dict]:
    """Flatten one loaded input into comparable lower-is-better series."""
    if kind == "perf":
        out = {}
        for row in payload.get("kernels", []):
            key = f"perf:{row['kernel']}/{row['graph']}:seconds"
            out[key] = {
                "value": float(row["seconds"]),
                "samples": [float(s) for s in row.get("samples", [])] or None,
            }
            if "speedup_vs_looped" in row:
                # @batched rows also gate their batching win as a
                # lower-is-better series (inverse speedup): losing the
                # stacked-sweep advantage trips the diff even when raw
                # seconds stay inside the noise band
                spd = float(row["speedup_vs_looped"])
                if spd > 0:
                    out[f"perf:{row['kernel']}/{row['graph']}:inv_speedup_vs_looped"] = {
                        "value": 1.0 / spd,
                        "samples": None,
                    }
            if "speedup_vs_static" in row:
                # @tuned rows likewise gate the adaptive controller's
                # win over the static-knob run
                spd = float(row["speedup_vs_static"])
                if spd > 0:
                    out[f"perf:{row['kernel']}/{row['graph']}:inv_speedup_vs_static"] = {
                        "value": 1.0 / spd,
                        "samples": None,
                    }
        return out
    if kind == "tune":
        # all series lower-is-better: charged cycles are deterministic,
        # so losing the tuned win or gaining inaccuracy trips the diff
        out = {}
        for family, rec in (payload.get("families") or {}).items():
            out[f"tune:{family}:tuned_cycles"] = {
                "value": float(rec["tuned"]["cycles"]), "samples": None
            }
            spd = float(rec.get("speedup_vs_static") or 0.0)
            if spd > 0:
                out[f"tune:{family}:inv_speedup_vs_static"] = {
                    "value": 1.0 / spd, "samples": None
                }
            out[f"tune:{family}:inaccuracy_percent"] = {
                "value": float(rec["tuned"]["inaccuracy_percent"]),
                "samples": None,
            }
        return out
    if kind == "verify":
        gauges = ((payload.get("metrics") or {}).get("gauges")) or {}
        return {
            f"verify:{name.removeprefix('verify.check.seconds.')}": {
                "value": float(v), "samples": None
            }
            for name, v in gauges.items()
            if name.startswith("verify.check.seconds.")
        }
    if kind == "profile":
        return {
            f"profile:{row['span']}:seconds": {
                "value": float(row["seconds"]), "samples": None
            }
            for row in payload.get("spans", [])
        }
    if kind == "trace":
        from .stats import span_stats

        return {
            f"trace:{row['name']}:self_seconds": {
                "value": float(row["self"]), "samples": None
            }
            for row in span_stats(payload)
        }
    if kind == "metrics":
        out = {}
        for name, h in (payload.get("histograms") or {}).items():
            count = int(h.get("count", 0))
            if count:
                out[f"metrics:{name}:mean"] = {
                    "value": float(h["total"]) / count, "samples": None
                }
        for name, v in (payload.get("gauges") or {}).items():
            if name.endswith(_TIME_GAUGE_MARKERS) or ".seconds." in name:
                out[f"metrics:{name}"] = {"value": float(v), "samples": None}
        return out
    raise ValueError(f"unknown input kind {kind!r}")


# ---------------------------------------------------------------------------
# the noise-aware comparison
# ---------------------------------------------------------------------------
def _spread(samples: Sequence[float] | None) -> float:
    """Relative repeated-run spread: (max - min) / min, 0 without samples."""
    if not samples or len(samples) < 2:
        return 0.0
    lo, hi = min(samples), max(samples)
    return (hi - lo) / lo if lo > 0 else 0.0


def compare_series(
    a: dict[str, dict],
    b: dict[str, dict],
    *,
    noise: float = DEFAULT_NOISE,
    min_value: float = DEFAULT_MIN_VALUE,
) -> list[dict]:
    """Pair up two series dicts and attach a verdict to every key."""
    pairs: list[dict] = []
    for key in sorted(set(a) | set(b)):
        ra, rb = a.get(key), b.get(key)
        if ra is None or rb is None:
            pairs.append(
                {
                    "key": key,
                    "a": None if ra is None else ra["value"],
                    "b": None if rb is None else rb["value"],
                    "verdict": "added" if ra is None else "removed",
                }
            )
            continue
        va = min([ra["value"]] + (ra.get("samples") or []))
        vb = min([rb["value"]] + (rb.get("samples") or []))
        pair: dict[str, Any] = {"key": key, "a": va, "b": vb}
        if va < min_value and vb < min_value:
            pair["verdict"] = "below-floor"
            pairs.append(pair)
            continue
        threshold = max(
            float(noise), _spread(ra.get("samples")), _spread(rb.get("samples"))
        )
        pair["threshold"] = round(threshold, 6)
        if va <= 0.0:
            pair["verdict"] = "regressed" if vb > min_value else "neutral"
            pair["ratio"] = None
            pairs.append(pair)
            continue
        ratio = vb / va
        pair["ratio"] = round(ratio, 6)
        if ratio > 1.0 + threshold:
            pair["verdict"] = "regressed"
        elif ratio < 1.0 / (1.0 + threshold):
            pair["verdict"] = "improved"
        else:
            pair["verdict"] = "neutral"
        pairs.append(pair)
    return pairs


def diff_files(
    path_a: str | Path,
    path_b: str | Path,
    *,
    noise: float = DEFAULT_NOISE,
    min_value: float = DEFAULT_MIN_VALUE,
    entry_a: int = -1,
    entry_b: int = -1,
) -> dict:
    """Compare two report files; returns the machine-readable diff."""
    kind_a, payload_a = load_comparable(path_a, entry=entry_a)
    kind_b, payload_b = load_comparable(path_b, entry=entry_b)
    if kind_a != kind_b:
        raise ValueError(
            f"cannot diff a {kind_a} report against a {kind_b} report "
            f"({path_a} vs {path_b})"
        )
    pairs = compare_series(
        extract_series(kind_a, payload_a),
        extract_series(kind_b, payload_b),
        noise=noise,
        min_value=min_value,
    )
    summary = {v: 0 for v in VERDICTS}
    for p in pairs:
        summary[p["verdict"]] += 1
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind_a,
        "a": str(path_a),
        "b": str(path_b),
        "noise_floor": noise,
        "min_value": min_value,
        "pairs": pairs,
        "summary": summary,
        "regressed": summary["regressed"] > 0,
    }


def format_diff(report: dict, *, verbose: bool = False) -> str:
    """Render the diff for the terminal (non-neutral pairs + summary)."""
    lines = [
        f"obs diff ({report['kind']}): {report['a']} -> {report['b']} "
        f"(noise floor {report['noise_floor']:.0%})"
    ]
    shown = 0
    for p in report["pairs"]:
        if not verbose and p["verdict"] in ("neutral", "below-floor"):
            continue
        shown += 1
        a = "—" if p["a"] is None else f"{p['a']:.6g}"
        b = "—" if p["b"] is None else f"{p['b']:.6g}"
        ratio = p.get("ratio")
        extra = "" if ratio is None else f"  x{ratio:.3f}"
        thr = p.get("threshold")
        extra += "" if thr is None else f" (±{thr:.0%})"
        lines.append(f"  {p['verdict'].upper():10s} {p['key']}: {a} -> {b}{extra}")
    if not shown:
        lines.append("  (all pairs neutral)")
    s = report["summary"]
    lines.append(
        f"  {s['improved']} improved, {s['regressed']} regressed, "
        f"{s['neutral']} neutral, {s['below-floor']} below floor, "
        f"{s['added']} added, {s['removed']} removed"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs diff",
        description="Noise-aware comparison of two perf/metrics/trace/"
        "verify reports; exits non-zero on regressions "
        "(see docs/observability.md for the cookbook).",
    )
    parser.add_argument("a", help="baseline report (or TRAJECTORY.json)")
    parser.add_argument("b", help="candidate report (or TRAJECTORY.json)")
    parser.add_argument(
        "--noise", type=float, default=DEFAULT_NOISE,
        help="relative noise floor when no sample spread is available "
        f"(default {DEFAULT_NOISE})",
    )
    parser.add_argument(
        "--min-value", type=float, default=DEFAULT_MIN_VALUE,
        help="skip pairs where both sides are below this (timer noise)",
    )
    parser.add_argument(
        "--entry", type=int, default=-1,
        help="trajectory entry to use when an input is a TRAJECTORY.json "
        "(default -1: the last recorded point)",
    )
    parser.add_argument("--out", default=None, help="write the JSON diff here")
    parser.add_argument(
        "--verbose", action="store_true", help="list neutral pairs too"
    )
    parser.add_argument(
        "--no-fail", action="store_true",
        help="always exit 0 (report-only mode)",
    )
    args = parser.parse_args(argv)

    try:
        report = diff_files(
            args.a, args.b,
            noise=args.noise,
            min_value=args.min_value,
            entry_a=args.entry,
            entry_b=args.entry,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"obs diff: {exc}")
        return 2
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(format_diff(report, verbose=args.verbose))
    if args.out:
        print(f"wrote {args.out}")
    if report["regressed"] and not args.no_fail:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    raise SystemExit(main())
