"""Structured logging setup for the reproduction.

All of the repo's chatter (status, retries, degradations, failures)
routes through stdlib :mod:`logging` under the ``repro`` namespace;
this module owns the single handler so output is controllable from one
place:

* ``REPRO_LOG=debug`` (or ``info``/``warning``/…) sets the level;
* ``REPRO_LOG=debug:json`` (or ``setup_logging(json_mode=True)``)
  switches to one-JSON-object-per-line output for machine ingestion;
* the suite CLI's ``--log-level`` flag overrides the environment.

By default the level is ``warning`` (quiet — tables stay the only
stdout output) and records go to stderr, so logging never corrupts the
rendered tables on stdout.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any, IO

__all__ = ["get_logger", "setup_logging", "JsonFormatter"]

ROOT_NAME = "repro"

#: LogRecord fields that are not user-supplied ``extra`` keys
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record, ``extra`` keys inlined."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                doc[key] = value
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, default=str)


def _parse_env(value: str) -> tuple[str | None, bool]:
    """``REPRO_LOG`` grammar: ``level``, ``level:json``, or ``json``."""
    level: str | None = None
    json_mode = False
    for part in value.split(":"):
        part = part.strip().lower()
        if not part:
            continue
        if part == "json":
            json_mode = True
        else:
            level = part
    return level, json_mode


def setup_logging(
    level: str | int | None = None,
    *,
    json_mode: bool | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger; idempotent (reconfigures in place).

    Explicit arguments win over ``REPRO_LOG``; with neither, the level
    defaults to ``warning`` and plain-text formatting.
    """
    env_level, env_json = _parse_env(os.environ.get("REPRO_LOG", ""))
    if level is None:
        level = env_level or "warning"
    if json_mode is None:
        json_mode = env_json
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved

    logger = logging.getLogger(ROOT_NAME)
    logger.setLevel(level)
    logger.propagate = False
    # replace only handlers we installed, so a host app's handlers survive
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``).

    Safe to call at import time; emits nothing above the configured
    level and, before :func:`setup_logging`, inherits the root logger's
    ``lastResort`` handling (warnings still reach stderr).
    """
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") or name == ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")
