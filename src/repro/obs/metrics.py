"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Unlike tracing (off by default), metrics are always on — incrementing a
counter is a dict lookup plus an add, cheap enough for every hot path.
The payoff is the snapshot/merge API: a worker process accumulates into
its own registry copy, ships ``snapshot()`` back through the scheduler's
result pipe, and the parent folds it in with ``merge_snapshot`` — so a
parallel sweep reports one aggregated view of cache hits, retries,
timeouts, and degradations across every worker.

Metric naming mirrors spans (dotted lowercase, category first):
``harness.exact_cache.hit``, ``parallel.retries``, ``solve.sweeps`` …
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshot",
    "prometheus_text",
    "registry",
    "reset",
    "snapshot",
]

#: default histogram bucket upper bounds (seconds-ish scale); the last
#: implicit bucket is +inf
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: cumulative-free counts per bucket + sum."""

    __slots__ = ("name", "buckets", "counts", "total", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: > max bound
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """One process's (or worker's) metric instruments, by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name, buckets)
            return h

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "total": h.total,
                        "count": h.count,
                    }
                    for n, h in self._histograms.items()
                },
            }

    def merge_snapshot(
        self, snap: Mapping[str, Any], *, gauge_merge: str = "last"
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add — their merge is commutative, so the
        order snapshots arrive in never matters.  Gauges are *not*
        commutative under the default policy, so the policy is explicit:

        ``gauge_merge="last"`` (default)
            the incoming value wins.  Correct when the merged-in
            snapshot is the strictly fresher observation of the *same*
            process state — e.g. a drained server's final snapshot, or
            a journal replayed in recorded order.
        ``gauge_merge="max"``
            keep the larger of the two values.  Correct for fan-in from
            *concurrent* worker processes, where "last" would mean
            "whichever worker happened to finish last" — an
            order-dependent answer.  ``max`` is commutative, so the
            merged result is deterministic regardless of completion
            order (this is what ``eval/parallel`` uses; see
            ``docs/observability.md``).

        Histograms with mismatched bucket bounds raise — merging them
        would silently mis-bin.
        """
        if gauge_merge not in ("last", "max"):
            raise ValueError(f"gauge_merge must be 'last' or 'max', got {gauge_merge!r}")
        for name, value in (snap.get("counters") or {}).items():
            self.counter(name).value += float(value)
        for name, value in (snap.get("gauges") or {}).items():
            g = self.gauge(name)
            if gauge_merge == "max":
                g.set(max(g.value, float(value)))
            else:
                g.set(float(value))
        for name, h in (snap.get("histograms") or {}).items():
            mine = self.histogram(name, h["buckets"])
            if list(mine.buckets) != [float(b) for b in h["buckets"]]:
                raise ValueError(
                    f"histogram {name}: cannot merge mismatched buckets "
                    f"{list(mine.buckets)} vs {h['buckets']}"
                )
            for i, c in enumerate(h["counts"]):
                mine.counts[i] += int(c)
            mine.total += float(h["total"])
            mine.count += int(h["count"])


# ---------------------------------------------------------------------------
# module-level default registry (what the instrumentation uses)
# ---------------------------------------------------------------------------
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def counter(name: str) -> Counter:
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    return _registry.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return _registry.histogram(name, buckets)


def snapshot() -> dict[str, Any]:
    return _registry.snapshot()


def merge_snapshot(snap: Mapping[str, Any], *, gauge_merge: str = "last") -> None:
    _registry.merge_snapshot(snap, gauge_merge=gauge_merge)


def reset() -> None:
    _registry.reset()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4)
# ---------------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """A valid Prometheus metric name from our dotted convention."""
    s = "".join(ch if (ch.isalnum() or ch in "_:") else "_" for ch in name)
    if s and s[0].isdigit():
        s = "_" + s
    return s or "_"


def _prom_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    if v != v:  # NaN
        return "NaN"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def prometheus_text(snap: Mapping[str, Any] | None = None) -> str:
    """Render a snapshot as Prometheus text exposition (v0.0.4).

    Counters gain a ``_total`` suffix per the naming convention; our
    fixed-bucket histograms are converted to the cumulative
    ``_bucket{le="..."}`` form Prometheus expects, closed by the
    mandatory ``le="+Inf"`` bucket plus ``_sum``/``_count`` samples.
    Metric names are sanitized (dots become underscores).  This is what
    the serve admin ``metrics`` op returns, so a scraper (or a human
    with ``nc``) can pull the live registry off a running server.
    """
    if snap is None:
        snap = _registry.snapshot()
    lines: list[str] = []
    for name in sorted(snap.get("counters") or {}):
        pname = _prom_name(name)
        if not pname.endswith("_total"):
            pname += "_total"
        lines.append(f"# HELP {pname} repro counter {name}")
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_value(float(snap['counters'][name]))}")
    for name in sorted(snap.get("gauges") or {}):
        pname = _prom_name(name)
        lines.append(f"# HELP {pname} repro gauge {name}")
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_value(float(snap['gauges'][name]))}")
    for name in sorted(snap.get("histograms") or {}):
        h = snap["histograms"][name]
        pname = _prom_name(name)
        lines.append(f"# HELP {pname} repro histogram {name}")
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(h["buckets"], h["counts"]):
            cumulative += int(count)
            lines.append(
                f'{pname}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}'
            )
        total_count = int(h["count"])
        lines.append(f'{pname}_bucket{{le="+Inf"}} {total_count}')
        lines.append(f"{pname}_sum {_prom_value(float(h['total']))}")
        lines.append(f"{pname}_count {total_count}")
    return "\n".join(lines) + "\n"
