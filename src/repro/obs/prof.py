"""A low-overhead sampling profiler attributing time to trace spans.

The tracer (:mod:`repro.obs.trace`) answers "how long did each
instrumented region take"; this module answers the complementary
question "*where inside* those regions did the wall-clock actually go" —
without instrumenting anything.  A background thread wakes every
``interval`` seconds, grabs every thread's current Python stack via
:func:`sys._current_frames`, and records

* the **collapsed call stack** (``root;caller;callee`` — the
  Brendan-Gregg flamegraph input format, render with ``flamegraph.pl``
  or paste into https://www.speedscope.app), and
* the **innermost open trace span** of the sampled thread, read from the
  active :class:`~repro.obs.trace.Tracer` — so every sample lands in the
  span taxonomy the rest of the repo reports in (``solve.sweep``,
  ``transform.coalesce``, ``serve.execute`` …).

Overhead is bounded by construction: sampling costs one
``sys._current_frames()`` call plus a bounded stack walk per live
thread, paid ``1/interval`` times per second regardless of how hot the
profiled code is.  At the default 5 ms interval the measured overhead on
the perf smoke workload is well under the documented 5 % bound
(asserted by ``tests/test_obs_prof.py``, not just claimed here).

Memory attribution is opt-in (``memory=True``): :mod:`tracemalloc` is
started and each sample also records the process-wide traced high-water
against every span open at that instant.  tracemalloc itself costs far
more than the sampler (it hooks every allocation), which is why it is
not part of the default profile and excluded from the overhead bound.

CLI integration: ``--profile PREFIX`` (or ``REPRO_PROFILE=PREFIX``) on
``python -m repro`` (suite), ``python -m repro perf`` and ``python -m
repro serve`` writes ``PREFIX.collapsed`` (flamegraph input) and
``PREFIX.json`` (the machine-readable span report, diffable with
``python -m repro obs diff``).  ``REPRO_PROFILE_INTERVAL_MS`` overrides
the sampling interval.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from . import trace as obs_trace
from .log import get_logger

__all__ = [
    "SamplingProfiler",
    "profiling",
    "profile_prefix_from_env",
    "start_from_cli",
    "write_outputs",
    "ENV_VAR",
    "ENV_INTERVAL_MS",
]

logger = get_logger("obs.prof")

ENV_VAR = "REPRO_PROFILE"
ENV_INTERVAL_MS = "REPRO_PROFILE_INTERVAL_MS"

#: default sampling interval (seconds): 200 Hz keeps the sampler cost
#: negligible while resolving millisecond-scale spans
DEFAULT_INTERVAL = 0.005

#: frames kept per sampled stack; deeper stacks are truncated at the root
MAX_STACK_DEPTH = 64

#: span bucket for samples taken while the thread had no open span
UNATTRIBUTED = "(no span)"


def _frame_label(frame) -> str:
    """``module.function`` for one stack frame (module trimmed to leaf)."""
    mod = frame.f_globals.get("__name__", "?")
    return f"{mod.rsplit('.', 1)[-1]}.{frame.f_code.co_name}"


class SamplingProfiler:
    """Samples every thread's stack and span on a timer thread.

    Thread-safe to start/stop once; results accumulate in

    * :attr:`span_samples` — samples per innermost-open-span name,
    * :attr:`stacks` — samples per collapsed call stack,
    * :attr:`thread_samples` — samples per thread name,
    * :attr:`memory_high_water` — (``memory=True`` only) max traced
      bytes observed per span name while that span was open.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        tracer: obs_trace.Tracer | None = None,
        memory: bool = False,
        max_stack_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = float(interval)
        self.memory = bool(memory)
        self.max_stack_depth = int(max_stack_depth)
        self._tracer = tracer
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._stopped_at = 0.0
        self._mem_started_here = False
        self.samples = 0
        self.attributed = 0
        self.span_samples: dict[str, int] = {}
        self.stacks: dict[str, int] = {}
        self.thread_samples: dict[str, int] = {}
        self.memory_high_water: dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._mem_started_here = True
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._stopped_at = time.perf_counter()
        if self._mem_started_here:
            import tracemalloc

            tracemalloc.stop()
            self._mem_started_here = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        my_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            try:
                self._sample(my_ident)
            except Exception:  # noqa: BLE001 - a bad sample must not kill the run
                pass

    def _sample(self, my_ident: int) -> None:
        tracer = self._tracer if self._tracer is not None else obs_trace.get_tracer()
        open_spans = tracer.open_spans() if tracer is not None else {}
        names = {t.ident: t.name for t in threading.enumerate()}
        mem_now = 0
        if self.memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                mem_now = tracemalloc.get_traced_memory()[0]
        for ident, frame in sys._current_frames().items():
            if ident == my_ident:
                continue
            self.samples += 1
            tname = names.get(ident, str(ident))
            self.thread_samples[tname] = self.thread_samples.get(tname, 0) + 1
            span = open_spans.get(ident)
            span_name = span.name if span is not None else UNATTRIBUTED
            if span is not None:
                self.attributed += 1
            self.span_samples[span_name] = self.span_samples.get(span_name, 0) + 1
            if self.memory and span is not None:
                prev = self.memory_high_water.get(span_name, 0)
                if mem_now > prev:
                    self.memory_high_water[span_name] = mem_now
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_stack_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            key = ";".join(stack) if stack else "(empty)"
            self.stacks[key] = self.stacks.get(key, 0) + 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Profiled wall-clock (start to stop, or to now while running)."""
        end = self._stopped_at if self._stopped_at else time.perf_counter()
        return max(0.0, end - self._started_at) if self._started_at else 0.0

    @property
    def attributed_fraction(self) -> float:
        """Fraction of samples that landed inside an open trace span."""
        return self.attributed / self.samples if self.samples else 0.0

    def report(self) -> dict:
        """Machine-readable profile: per-span samples, seconds, shares."""
        total = self.samples or 1
        spans = [
            {
                "span": name,
                "samples": count,
                "seconds": round(count * self.interval, 6),
                "share": round(count / total, 6),
            }
            for name, count in sorted(
                self.span_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        out = {
            "schema": 1,
            "interval_seconds": self.interval,
            "duration_seconds": round(self.duration, 6),
            "samples": self.samples,
            "attributed": self.attributed,
            "attributed_fraction": round(self.attributed_fraction, 6),
            "spans": spans,
            "threads": dict(sorted(self.thread_samples.items())),
        }
        if self.memory:
            out["memory_high_water_bytes"] = dict(
                sorted(self.memory_high_water.items())
            )
        return out

    def format_report(self, *, top: int = 15) -> str:
        """Human-readable per-span summary (goes through the logger)."""
        rep = self.report()
        lines = [
            f"profile: {rep['samples']} samples @ {self.interval * 1000:.1f}ms "
            f"over {rep['duration_seconds']:.3f}s "
            f"({rep['attributed_fraction']:.1%} attributed to spans)"
        ]
        for row in rep["spans"][:top]:
            lines.append(
                f"  {row['span']:40s} {row['samples']:6d} samples "
                f"~{row['seconds']:8.3f}s  {row['share']:6.1%}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_collapsed(self, path: str | Path) -> Path:
        """Write collapsed stacks (``frame;frame;frame count`` per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for stack, count in sorted(self.stacks.items()):
                fh.write(f"{stack} {count}\n")
        return path

    def export_report(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.report(), indent=2, sort_keys=True) + "\n")
        return path


# ---------------------------------------------------------------------------
# CLI plumbing shared by suite / perf / serve
# ---------------------------------------------------------------------------
def profile_prefix_from_env() -> str | None:
    """The ``REPRO_PROFILE`` output prefix, or ``None`` when unset."""
    prefix = os.environ.get(ENV_VAR, "").strip()
    return prefix or None


def _env_interval() -> float:
    raw = os.environ.get(ENV_INTERVAL_MS, "").strip()
    if not raw:
        return DEFAULT_INTERVAL
    try:
        ms = float(raw)
    except ValueError:
        logger.warning("ignoring bad %s=%r", ENV_INTERVAL_MS, raw)
        return DEFAULT_INTERVAL
    return ms / 1000.0 if ms > 0 else DEFAULT_INTERVAL


def start_from_cli(flag_prefix: str | None, *, memory: bool = False):
    """Start a profiler for a CLI run if ``--profile`` or the env asks.

    Returns ``(profiler, prefix)`` — both ``None`` when profiling is
    off.  Installs a tracer as a side effect when none is active, since
    span attribution is the profiler's whole point.
    """
    prefix = flag_prefix or profile_prefix_from_env()
    if not prefix:
        return None, None
    if obs_trace.get_tracer() is None:
        obs_trace.install_tracer()
    prof = SamplingProfiler(_env_interval(), memory=memory)
    prof.start()
    logger.info(
        "sampling profiler on (%.1fms interval) -> %s.collapsed / %s.json",
        prof.interval * 1000.0, prefix, prefix,
    )
    return prof, prefix


def write_outputs(prof: "SamplingProfiler", prefix: str) -> tuple[Path, Path]:
    """Stop ``prof`` and write ``<prefix>.collapsed`` + ``<prefix>.json``."""
    prof.stop()
    collapsed = prof.export_collapsed(f"{prefix}.collapsed")
    report = prof.export_report(f"{prefix}.json")
    logger.info("%s", prof.format_report())
    logger.info("wrote %s and %s", collapsed, report)
    return collapsed, report


@contextmanager
def profiling(
    interval: float = DEFAULT_INTERVAL,
    *,
    tracer: obs_trace.Tracer | None = None,
    memory: bool = False,
) -> Iterator[SamplingProfiler]:
    """``with profiling() as prof:`` — start/stop around a block."""
    prof = SamplingProfiler(interval, tracer=tracer, memory=memory)
    prof.start()
    try:
        yield prof
    finally:
        prof.stop()
