"""Declarative service-level objectives over the metrics registry.

An :class:`SLO` names an **indicator** (which events count), a **good
criterion** (which of those events met the objective), and a **target**
(the fraction that must).  Two indicator shapes cover the serve layer:

* **latency**: a histogram instrument (e.g. ``serve.request.time``) plus
  ``threshold_seconds`` — an observation is *good* iff it fell in a
  bucket whose upper bound is ≤ the threshold.  Pick a threshold that is
  one of the histogram's bucket bounds (``STAGE_BUCKETS`` for serve);
  otherwise the evaluation is conservative, counting only buckets that
  lie entirely under the threshold.
* **availability**: a good/total counter pair (e.g.
  ``serve.requests.ok`` / ``serve.requests.total``).

Evaluation is pure — :meth:`SLO.evaluate` reads any metrics
``snapshot()`` dict, so the same objects gate a live server (admin
``slo`` op), a drained ``--metrics-out`` file, and a ``bench serve``
run (``slo:`` blocks in the load spec).

**Burn rate** is the error-budget language of the Google SRE workbook:
burn 1.0 means "failing at exactly the rate that spends the whole
budget over the SLO period"; burn N means N× faster.  A single
snapshot only yields the *lifetime* burn; the multi-window rates that
make burn actionable need deltas over time, which is what
:class:`SLOTracker` adds — it snapshots (good, total) at a bounded tick
rate, keeps a ring of observations covering the longest window, and
computes ``bad_fraction(window) / (1 - target)`` per window.  The serve
layer feeds the fast-window burn into the
:class:`~repro.serve.degrade.DegradationLadder` as a first-class
pressure signal: a server violating its SLO starts degrading *before*
the admission queue backs up.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from .stats import histogram_quantile

__all__ = ["SLO", "SLOTracker", "default_serve_slos", "slo_from_spec"]


@dataclass(frozen=True)
class SLO:
    """One objective: ``target`` fraction of indicator events are good."""

    name: str
    target: float = 0.99
    #: latency indicator: histogram instrument + threshold
    indicator: str | None = None
    threshold_seconds: float | None = None
    #: availability indicator: counter pair
    good_counter: str | None = None
    total_counter: str | None = None
    #: burn-rate windows in seconds, shortest first (SLOTracker only)
    windows: tuple[float, ...] = (10.0, 60.0)
    #: alerting threshold on the shortest window's burn rate
    max_burn_rate: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"slo {self.name}: target must be in (0, 1)")
        histo = self.indicator is not None
        counters = self.good_counter is not None or self.total_counter is not None
        if histo == counters:
            raise ValueError(
                f"slo {self.name}: give either indicator+threshold_seconds "
                "or good_counter+total_counter"
            )
        if histo and self.threshold_seconds is None:
            raise ValueError(f"slo {self.name}: latency slo needs threshold_seconds")
        if counters and (self.good_counter is None or self.total_counter is None):
            raise ValueError(f"slo {self.name}: counter slo needs both counters")
        if list(self.windows) != sorted(self.windows) or len(self.windows) < 1:
            raise ValueError(f"slo {self.name}: windows must ascend")

    # ------------------------------------------------------------------
    def good_total(self, snap: Mapping[str, Any]) -> tuple[float, float]:
        """(good events, total events) read from one metrics snapshot."""
        if self.indicator is not None:
            h = (snap.get("histograms") or {}).get(self.indicator)
            if h is None:
                return 0.0, 0.0
            bounds = [float(b) for b in h["buckets"]]
            # observations in buckets whose upper bound is <= threshold
            # (tiny epsilon so a threshold equal to a bound includes it)
            k = bisect_right(bounds, float(self.threshold_seconds) * (1 + 1e-12))
            good = float(sum(int(c) for c in h["counts"][:k]))
            return good, float(int(h["count"]))
        counters = snap.get("counters") or {}
        good = float(counters.get(self.good_counter, 0.0))
        total = float(counters.get(self.total_counter, 0.0))
        return min(good, total), total

    def evaluate(self, snap: Mapping[str, Any]) -> dict:
        """Lifetime objective status from one snapshot (no windows)."""
        good, total = self.good_total(snap)
        compliance = good / total if total else 1.0
        budget = 1.0 - self.target
        bad_fraction = 1.0 - compliance
        out = {
            "name": self.name,
            "target": self.target,
            "good": good,
            "total": total,
            "compliance": round(compliance, 9),
            "ok": compliance >= self.target or total == 0,
            # fraction of the error budget consumed so far (>1 = blown)
            "budget_consumed": round(bad_fraction / budget, 6) if budget else 0.0,
            "burn_rate": round(bad_fraction / budget, 6) if budget else 0.0,
        }
        if self.indicator is not None:
            h = (snap.get("histograms") or {}).get(self.indicator)
            if h is not None and int(h["count"]):
                out["attained_quantile_seconds"] = round(
                    histogram_quantile(h["buckets"], h["counts"], self.target), 6
                )
            out["threshold_seconds"] = self.threshold_seconds
        return out


class SLOTracker:
    """Windowed burn rates for a set of SLOs over the live registry.

    :meth:`observe` is safe on the request hot path: it rate-limits
    itself to one real snapshot per ``tick_seconds`` and otherwise only
    reads a cached float.  All state is lock-guarded (ticks can race
    between server worker threads).
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        *,
        snapshot_fn: Callable[[], Mapping[str, Any]] | None = None,
        clock: Callable[[], float] = time.monotonic,
        tick_seconds: float = 0.25,
    ) -> None:
        from . import metrics as obs_metrics

        self.slos = tuple(slos)
        self._snapshot = snapshot_fn if snapshot_fn is not None else obs_metrics.snapshot
        self._clock = clock
        self.tick_seconds = float(tick_seconds)
        self._lock = threading.Lock()
        self._last_tick = float("-inf")
        # per slo: list of (t, good, total), pruned beyond the longest window
        self._points: dict[str, list[tuple[float, float, float]]] = {
            s.name: [] for s in self.slos
        }
        self._burn = 0.0  # cached fast-window max across slos

    # ------------------------------------------------------------------
    def observe(self) -> float:
        """Tick if due; returns the max shortest-window burn rate."""
        now = self._clock()
        with self._lock:
            if now - self._last_tick < self.tick_seconds:
                return self._burn
            self._last_tick = now
        snap = self._snapshot()
        with self._lock:
            for s in self.slos:
                good, total = s.good_total(snap)
                pts = self._points[s.name]
                pts.append((now, good, total))
                horizon = now - (s.windows[-1] + self.tick_seconds)
                while len(pts) > 2 and pts[1][0] <= horizon:
                    pts.pop(0)
            self._burn = max(
                (
                    self._burn_rate(s, s.windows[0], now)
                    for s in self.slos
                ),
                default=0.0,
            )
            return self._burn

    @property
    def burn_rate(self) -> float:
        """Last computed max shortest-window burn rate (no tick)."""
        with self._lock:
            return self._burn

    def _burn_rate(self, slo: SLO, window: float, now: float) -> float:
        """bad_fraction over ``window`` divided by the error budget."""
        pts = self._points[slo.name]
        if len(pts) < 2:
            return 0.0
        _t_end, good_end, total_end = pts[-1]
        cutoff = now - window
        # most recent point at or before the window start, so the delta
        # covers at least the full window once enough history exists
        start = pts[0]
        for p in pts:
            if p[0] <= cutoff:
                start = p
            else:
                break
        if start is pts[-1]:
            start = pts[-2]
        d_total = total_end - start[2]
        if d_total <= 0:
            return 0.0
        d_bad = d_total - (good_end - start[1])
        bad_fraction = min(max(d_bad / d_total, 0.0), 1.0)
        budget = 1.0 - slo.target
        return bad_fraction / budget if budget else 0.0

    # ------------------------------------------------------------------
    def status(self, snap: Mapping[str, Any] | None = None) -> dict:
        """Full objective status: lifetime evaluation + windowed burns."""
        if snap is None:
            snap = self._snapshot()
        now = self._clock()
        slos = []
        with self._lock:
            for s in self.slos:
                st = s.evaluate(snap)
                st["windows"] = {
                    f"{int(w)}s": round(self._burn_rate(s, w, now), 6)
                    for w in s.windows
                }
                st["max_burn_rate"] = s.max_burn_rate
                st["burning"] = st["windows"][f"{int(s.windows[0])}s"] > s.max_burn_rate
                slos.append(st)
            burn = self._burn
        return {
            "slos": slos,
            "burn_rate": round(burn, 6),
            "ok": all(s["ok"] and not s["burning"] for s in slos),
        }


# ---------------------------------------------------------------------------
# construction helpers
# ---------------------------------------------------------------------------
def default_serve_slos() -> tuple[SLO, ...]:
    """The serve layer's standing objectives (see ``docs/serving.md``).

    Latency: 95 % of requests under 250 ms (a ``STAGE_BUCKETS`` bound).
    Availability: 99 % of *queries* answered ``ok`` — sheds, timeouts
    and errors all spend the same budget.  The denominator is
    ``serve.queries.total``, not ``serve.requests.total``: the latter
    counts every protocol line, so admin probes (health checks, metric
    scrapes) would register as availability failures.
    """
    return (
        SLO(
            name="latency",
            indicator="serve.request.time",
            threshold_seconds=0.25,
            target=0.95,
            windows=(10.0, 60.0),
            max_burn_rate=4.0,
        ),
        SLO(
            name="availability",
            good_counter="serve.requests.ok",
            total_counter="serve.queries.total",
            target=0.99,
            windows=(10.0, 60.0),
            max_burn_rate=4.0,
        ),
    )


def slo_from_spec(spec: Mapping[str, Any]) -> SLO:
    """Build an SLO from a YAML/JSON mapping (the ``slo:`` block shape).

    Keys: ``name`` (required), ``target`` (default 0.99), and either
    ``indicator`` + ``threshold_ms``/``threshold_seconds`` or
    ``good_counter`` + ``total_counter``; optional ``windows``
    (seconds, ascending) and ``max_burn_rate``.
    """
    spec = dict(spec)
    name = spec.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"slo spec needs a name: {spec!r}")
    threshold = spec.get("threshold_seconds")
    if threshold is None and spec.get("threshold_ms") is not None:
        threshold = float(spec["threshold_ms"]) / 1000.0
    kwargs: dict[str, Any] = {
        "name": name,
        "target": float(spec.get("target", 0.99)),
    }
    if spec.get("indicator") is not None:
        kwargs["indicator"] = str(spec["indicator"])
        kwargs["threshold_seconds"] = threshold
    else:
        kwargs["good_counter"] = spec.get("good_counter")
        kwargs["total_counter"] = spec.get("total_counter")
    if spec.get("windows") is not None:
        kwargs["windows"] = tuple(float(w) for w in spec["windows"])
    if spec.get("max_burn_rate") is not None:
        kwargs["max_burn_rate"] = float(spec["max_burn_rate"])
    return SLO(**kwargs)
