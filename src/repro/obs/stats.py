"""``python -m repro stats <trace-or-metrics>``: profile-style reports.

Reads either a trace exported by :mod:`repro.obs.trace` — the native
JSONL (one span per line) or the Chrome ``trace_event`` JSON — or a
merged metrics snapshot (the ``--metrics-out`` JSON of a run or a
drained server), auto-detected by shape.

For traces it prints where the wall-clock went:

* **top spans by cumulative time** — per span name: call count, total
  time, *self* time (total minus time spent in child spans, so nested
  categories don't double-count), and share of the traced run;
* **category split** — self time rolled up by the naming convention's
  leading category (``io`` / ``transform`` / ``solve`` / ``serve`` /
  ``report`` / …), the "transform vs solve vs io" number the tables'
  speedup claims should be read against.

For metrics snapshots it prints the counter/gauge inventory plus a
dedicated **serve** section — request outcomes, shed/degraded/timeout
counts, query-batching outcomes (shared sweeps, lanes per sweep, window
waits), admission-wait and per-stage latency quantiles (estimated from
the histogram buckets), queue depth, pressure level, and breaker state
— the post-mortem view of a drained ``python -m repro serve`` run, plus
a **perf** section for the engine counters (``perf.batched.*`` etc.).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Mapping, Sequence

from .trace import Span

__all__ = [
    "load_trace",
    "span_stats",
    "category_split",
    "format_stats",
    "histogram_quantile",
    "format_metrics",
    "main",
]

#: span-name prefixes rolled up in the category split (order = display order)
CATEGORIES = (
    "io", "transform", "solve", "perf", "serve", "harness", "parallel", "report",
)


def load_trace(path: str | Path) -> list[Span]:
    """Load spans from a JSONL or Chrome ``trace_event`` trace file.

    A truncated *final* JSONL line (the usual shape of a crash or a
    ``kill -9`` mid-write) is dropped with a warning rather than failing
    the whole report; corruption anywhere else still raises
    ``ValueError`` with the offending line number — silently skipping
    interior lines would misreport where the time went.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        try:
            return _from_chrome(json.loads(text).get("traceEvents", []))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt Chrome trace JSON: {exc}") from exc
    if stripped.startswith("["):
        try:
            return _from_chrome(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: corrupt Chrome trace JSON: {exc}") from exc
    spans = []
    lines = text.splitlines()
    last_content = 0
    for i, line in enumerate(lines, start=1):
        if line.strip():
            last_content = i
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if i == last_content:
                import warnings

                warnings.warn(
                    f"{path}: dropping truncated final line {i} ({exc})",
                    stacklevel=2,
                )
                break
            raise ValueError(f"{path}: corrupt span on line {i}: {exc}") from exc
    return spans


def _from_chrome(events: Sequence[dict]) -> list[Span]:
    spans = []
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue  # only complete duration events carry a self-time story
        spans.append(
            Span(
                name=str(ev.get("name", "?")),
                span_id=i + 1,
                parent_id=None,  # chrome events carry no explicit nesting
                start=float(ev.get("ts", 0.0)) / 1e6,
                duration=float(ev.get("dur", 0.0)) / 1e6,
                attributes=dict(ev.get("args") or {}),
                thread=str(ev.get("tid", "0")),
            )
        )
    # reconstruct nesting per thread from interval containment so self
    # times stay meaningful for chrome-format input too
    by_thread: dict[str, list[Span]] = {}
    for sp in spans:
        by_thread.setdefault(sp.thread, []).append(sp)
    for group in by_thread.values():
        group.sort(key=lambda s: (s.start, -s.duration))
        stack: list[Span] = []
        for sp in group:
            while stack and sp.start >= stack[-1].start + stack[-1].duration:
                stack.pop()
            if stack:
                sp.parent_id = stack[-1].span_id
            stack.append(sp)
    return spans


# ---------------------------------------------------------------------------
def _self_times(spans: Sequence[Span]) -> dict[int, float]:
    """Per-span self time: duration minus direct children's durations."""
    child_time: dict[int, float] = {}
    for sp in spans:
        if sp.parent_id is not None:
            child_time[sp.parent_id] = child_time.get(sp.parent_id, 0.0) + sp.duration
    return {
        sp.span_id: max(0.0, sp.duration - child_time.get(sp.span_id, 0.0))
        for sp in spans
    }


def span_stats(spans: Sequence[Span]) -> list[dict]:
    """Aggregate by span name: count, cumulative, self; sorted by cumulative."""
    selfs = _self_times(spans)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            sp.name, {"name": sp.name, "count": 0, "total": 0.0, "self": 0.0}
        )
        row["count"] += 1
        row["total"] += sp.duration
        row["self"] += selfs[sp.span_id]
    return sorted(agg.values(), key=lambda r: (-r["total"], r["name"]))


def category_split(spans: Sequence[Span]) -> dict[str, float]:
    """Self time per leading-name category (sums to total traced time)."""
    selfs = _self_times(spans)
    split = {c: 0.0 for c in CATEGORIES}
    split["other"] = 0.0
    for sp in spans:
        cat = sp.name.split(".", 1)[0]
        split[cat if cat in split else "other"] += selfs[sp.span_id]
    return split


def format_stats(spans: Sequence[Span], *, top: int = 20, title: str = "trace stats") -> str:
    """Render the profile-style report the CLI prints."""
    lines = [title, "-" * len(title)]
    if not spans:
        lines.append("(empty trace)")
        return "\n".join(lines)
    rows = span_stats(spans)
    traced_total = sum(r["self"] for r in rows) or 1.0
    lines.append(f"{len(spans)} spans, {len(rows)} distinct names, "
                 f"{traced_total:.4f}s traced")
    lines.append("")
    lines.append(f"{'span':40s} {'count':>7s} {'total s':>10s} {'self s':>10s} {'self %':>7s}")
    for row in rows[:top]:
        lines.append(
            f"{row['name'][:40]:40s} {row['count']:7d} "
            f"{row['total']:10.4f} {row['self']:10.4f} "
            f"{row['self'] / traced_total:6.1%}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span names")
    lines.append("")
    split = category_split(spans)
    shown = {k: v for k, v in split.items() if v > 0.0}
    lines.append("time split (self time by category):")
    for cat, secs in sorted(shown.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {cat:10s} {secs:10.4f}s  {secs / traced_total:6.1%}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# metrics-snapshot reports (the `serve` category's post-mortem view)
# ---------------------------------------------------------------------------
def histogram_quantile(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    Linear interpolation inside the winning bucket (lower bound = the
    previous bucket's bound, 0 for the first); observations in the
    overflow bucket answer the last bound (a conservative *lower*
    estimate — the report marks these with ``>``).
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, c in enumerate(counts):
        cumulative += c
        if cumulative >= target and c > 0:
            if i >= len(buckets):  # overflow bucket: unbounded above
                return float(buckets[-1])
            lo = float(buckets[i - 1]) if i > 0 else 0.0
            hi = float(buckets[i])
            frac = (target - (cumulative - c)) / c
            return lo + frac * (hi - lo)
    return float(buckets[-1])


def _is_metrics_snapshot(obj: object) -> bool:
    return isinstance(obj, Mapping) and (
        "counters" in obj or "gauges" in obj or "histograms" in obj
    )


def _fmt_hist_line(name: str, h: Mapping) -> str:
    q50 = histogram_quantile(h["buckets"], h["counts"], 0.50) * 1000.0
    q99 = histogram_quantile(h["buckets"], h["counts"], 0.99) * 1000.0
    overflow = int(h["counts"][-1]) if len(h["counts"]) > len(h["buckets"]) else 0
    mark = ">" if overflow else "~"
    mean = (h["total"] / h["count"] * 1000.0) if h["count"] else 0.0
    return (
        f"  {name:32s} {int(h['count']):8d}  mean {mean:8.2f}ms"
        f"  q50 {mark}{q50:8.2f}ms  q99 {mark}{q99:8.2f}ms"
    )


def format_metrics(snap: Mapping, *, title: str = "metrics snapshot") -> str:
    """Render a merged metrics snapshot, with a serve section if present."""
    counters = dict(snap.get("counters") or {})
    gauges = dict(snap.get("gauges") or {})
    histograms = dict(snap.get("histograms") or {})
    lines = [title, "-" * len(title)]
    lines.append(
        f"{len(counters)} counters, {len(gauges)} gauges, "
        f"{len(histograms)} histograms"
    )

    serve_counters = {k: v for k, v in counters.items() if k.startswith("serve.")}
    if serve_counters or any(k.startswith("serve.") for k in histograms):
        lines.append("")
        lines.append("serve: request outcomes")
        order = (
            "total", "ok", "error", "timeout", "overloaded",
            "shutting_down", "degraded",
        )
        for key in order:
            value = counters.get(f"serve.requests.{key}")
            if value is not None:
                lines.append(f"  {key:14s} {int(value):8d}")
        shed = counters.get("serve.admission.shed", 0)
        admitted = counters.get("serve.admission.admitted", 0)
        expired = counters.get("serve.admission.expired", 0)
        lines.append(
            f"  admission: {int(admitted)} admitted, {int(shed)} shed, "
            f"{int(expired)} expired waiting"
        )
        expiries = {
            k.rsplit(".", 1)[-1]: int(v)
            for k, v in counters.items()
            if k.startswith("serve.deadline.expired.")
        }
        if expiries:
            parts = ", ".join(f"{st}={n}" for st, n in sorted(expiries.items()))
            lines.append(f"  deadline expiries by stage: {parts}")
        steps = (
            int(counters.get("serve.degrade.step_up", 0)),
            int(counters.get("serve.degrade.step_down", 0)),
        )
        if any(steps):
            lines.append(
                f"  degradation ladder: {steps[0]} step-up(s), "
                f"{steps[1]} step-down(s)"
            )
        groups = counters.get("serve.batch.groups")
        lanes_hist = histograms.get("serve.batch.lanes")
        if groups is not None or lanes_hist is not None or any(
            k.startswith("serve.batch.") for k in counters
        ):
            lines.append("")
            lines.append("serve: query batching")
            lines.append(
                f"  shared sweeps: {int(counters.get('serve.batch.groups', 0))} "
                f"group(s) answered "
                f"{int(counters.get('serve.batch.requests', 0))} request(s); "
                f"{int(counters.get('serve.batch.solo', 0))} solo window(s), "
                f"{int(counters.get('serve.batch.fallback', 0))} fallback(s)"
            )
            if lanes_hist is not None and lanes_hist["count"]:
                mean_lanes = lanes_hist["total"] / lanes_hist["count"]
                q50 = histogram_quantile(
                    lanes_hist["buckets"], lanes_hist["counts"], 0.50
                )
                lines.append(
                    f"  lanes per sweep: mean {mean_lanes:.1f}, q50 ~{q50:.1f}"
                )
        lines.append("")
        lines.append("serve: latency (histogram estimates)")
        for name in sorted(histograms):
            if name.startswith(("serve.admission.wait", "serve.stage.",
                                "serve.request.time", "serve.batch.window")):
                lines.append(_fmt_hist_line(name, histograms[name]))
        serve_gauges = {
            k: v for k, v in gauges.items() if k.startswith(("serve.", "cache."))
        }
        if serve_gauges:
            lines.append("")
            lines.append("serve: gauges (last observed)")
            for name in sorted(serve_gauges):
                lines.append(f"  {name:32s} {serve_gauges[name]:10.3f}")

    perf_counters = {k: v for k, v in counters.items() if k.startswith("perf.")}
    if perf_counters:
        lines.append("")
        lines.append("perf: engine counters")
        for name in sorted(perf_counters):
            lines.append(f"  {name:40s} {perf_counters[name]:12.0f}")

    other = {
        k: v
        for k, v in counters.items()
        if not k.startswith(("serve.", "perf."))
    }
    if other:
        lines.append("")
        lines.append("other counters")
        for name in sorted(other):
            lines.append(f"  {name:40s} {other[name]:12.0f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Profile-style breakdown of a --trace-out trace (JSONL "
        "or Chrome trace_event JSON) or a --metrics-out metrics snapshot "
        "(auto-detected; snapshots get the serve request summary).",
    )
    parser.add_argument("trace", help="path to trace.jsonl / trace.json / metrics.json")
    parser.add_argument(
        "--top", type=int, default=20, help="span names to list (default 20)"
    )
    args = parser.parse_args(argv)
    path = Path(args.trace)
    try:
        text = path.read_text()
    except FileNotFoundError:
        print(f"repro stats: no such file: {path}")
        return 2
    except IsADirectoryError:
        print(f"repro stats: {path} is a directory, expected a trace/metrics file")
        return 2
    if not text.strip():
        print(f"repro stats: {path} is empty (run produced no spans/metrics?)")
        return 2
    stripped = text.lstrip()
    report: str | None = None
    if stripped.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = None
        if _is_metrics_snapshot(obj):
            report = format_metrics(obj, title=f"metrics stats: {args.trace}")
    if report is None:
        try:
            spans = load_trace(args.trace)
        except ValueError as exc:
            print(f"repro stats: {exc}")
            return 2
        report = format_stats(spans, top=args.top, title=f"trace stats: {args.trace}")
    try:
        print(report)
    except BrokenPipeError:  # e.g. `repro stats trace | head`
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0
