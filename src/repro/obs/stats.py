"""``python -m repro stats <trace>``: a profile-style trace breakdown.

Reads a trace exported by :mod:`repro.obs.trace` — either the native
JSONL (one span per line) or the Chrome ``trace_event`` JSON — and
prints where the wall-clock went:

* **top spans by cumulative time** — per span name: call count, total
  time, *self* time (total minus time spent in child spans, so nested
  categories don't double-count), and share of the traced run;
* **category split** — self time rolled up by the naming convention's
  leading category (``io`` / ``transform`` / ``solve`` / ``report`` /
  ``harness`` / ``parallel`` / other), the "transform vs solve vs io"
  number the tables' speedup claims should be read against.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from .trace import Span

__all__ = ["load_trace", "span_stats", "category_split", "format_stats", "main"]

#: span-name prefixes rolled up in the category split (order = display order)
CATEGORIES = ("io", "transform", "solve", "perf", "harness", "parallel", "report")


def load_trace(path: str | Path) -> list[Span]:
    """Load spans from a JSONL or Chrome ``trace_event`` trace file."""
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        return _from_chrome(json.loads(text).get("traceEvents", []))
    if stripped.startswith("["):
        return _from_chrome(json.loads(text))
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        spans.append(Span.from_dict(json.loads(line)))
    return spans


def _from_chrome(events: Sequence[dict]) -> list[Span]:
    spans = []
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue  # only complete duration events carry a self-time story
        spans.append(
            Span(
                name=str(ev.get("name", "?")),
                span_id=i + 1,
                parent_id=None,  # chrome events carry no explicit nesting
                start=float(ev.get("ts", 0.0)) / 1e6,
                duration=float(ev.get("dur", 0.0)) / 1e6,
                attributes=dict(ev.get("args") or {}),
                thread=str(ev.get("tid", "0")),
            )
        )
    # reconstruct nesting per thread from interval containment so self
    # times stay meaningful for chrome-format input too
    by_thread: dict[str, list[Span]] = {}
    for sp in spans:
        by_thread.setdefault(sp.thread, []).append(sp)
    for group in by_thread.values():
        group.sort(key=lambda s: (s.start, -s.duration))
        stack: list[Span] = []
        for sp in group:
            while stack and sp.start >= stack[-1].start + stack[-1].duration:
                stack.pop()
            if stack:
                sp.parent_id = stack[-1].span_id
            stack.append(sp)
    return spans


# ---------------------------------------------------------------------------
def _self_times(spans: Sequence[Span]) -> dict[int, float]:
    """Per-span self time: duration minus direct children's durations."""
    child_time: dict[int, float] = {}
    for sp in spans:
        if sp.parent_id is not None:
            child_time[sp.parent_id] = child_time.get(sp.parent_id, 0.0) + sp.duration
    return {
        sp.span_id: max(0.0, sp.duration - child_time.get(sp.span_id, 0.0))
        for sp in spans
    }


def span_stats(spans: Sequence[Span]) -> list[dict]:
    """Aggregate by span name: count, cumulative, self; sorted by cumulative."""
    selfs = _self_times(spans)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            sp.name, {"name": sp.name, "count": 0, "total": 0.0, "self": 0.0}
        )
        row["count"] += 1
        row["total"] += sp.duration
        row["self"] += selfs[sp.span_id]
    return sorted(agg.values(), key=lambda r: (-r["total"], r["name"]))


def category_split(spans: Sequence[Span]) -> dict[str, float]:
    """Self time per leading-name category (sums to total traced time)."""
    selfs = _self_times(spans)
    split = {c: 0.0 for c in CATEGORIES}
    split["other"] = 0.0
    for sp in spans:
        cat = sp.name.split(".", 1)[0]
        split[cat if cat in split else "other"] += selfs[sp.span_id]
    return split


def format_stats(spans: Sequence[Span], *, top: int = 20, title: str = "trace stats") -> str:
    """Render the profile-style report the CLI prints."""
    lines = [title, "-" * len(title)]
    if not spans:
        lines.append("(empty trace)")
        return "\n".join(lines)
    rows = span_stats(spans)
    traced_total = sum(r["self"] for r in rows) or 1.0
    lines.append(f"{len(spans)} spans, {len(rows)} distinct names, "
                 f"{traced_total:.4f}s traced")
    lines.append("")
    lines.append(f"{'span':40s} {'count':>7s} {'total s':>10s} {'self s':>10s} {'self %':>7s}")
    for row in rows[:top]:
        lines.append(
            f"{row['name'][:40]:40s} {row['count']:7d} "
            f"{row['total']:10.4f} {row['self']:10.4f} "
            f"{row['self'] / traced_total:6.1%}"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more span names")
    lines.append("")
    split = category_split(spans)
    shown = {k: v for k, v in split.items() if v > 0.0}
    lines.append("time split (self time by category):")
    for cat, secs in sorted(shown.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {cat:10s} {secs:10.4f}s  {secs / traced_total:6.1%}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Profile-style breakdown of a trace produced by "
        "--trace-out (JSONL or Chrome trace_event JSON).",
    )
    parser.add_argument("trace", help="path to trace.jsonl / trace.json")
    parser.add_argument(
        "--top", type=int, default=20, help="span names to list (default 20)"
    )
    args = parser.parse_args(argv)
    spans = load_trace(args.trace)
    try:
        print(format_stats(spans, top=args.top, title=f"trace stats: {args.trace}"))
    except BrokenPipeError:  # e.g. `repro stats trace | head`
        import os
        import sys

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0
