"""A zero-dependency span tracer with JSONL and Chrome trace export.

A *span* is one timed region of the run — a transform stage, a kernel
sweep, a table cell — with a name, monotonic start/duration, nesting
(parent span), and free-form attributes (the instrumentation attaches
the existing :class:`~repro.gpusim.metrics.SimMetrics` /
:class:`~repro.gpusim.costmodel.SweepCost` numbers here, so a trace
carries the simulated-cycle story alongside the wall-clock one).

Tracing is off by default: the module-level :func:`span` context manager
is a near-no-op until :func:`install_tracer` installs a
:class:`Tracer`.  Hot paths therefore stay instrumented permanently
without taxing untraced runs.

Export formats:

* :meth:`Tracer.export_jsonl` — one JSON object per line (our native
  format, read back by :mod:`repro.obs.stats`);
* :meth:`Tracer.export_chrome` — the Chrome ``trace_event`` JSON array
  (complete ``"X"`` duration events), loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.

Span naming convention (see ``docs/observability.md``): dotted
lowercase, category first — ``io.*``, ``transform.*``, ``solve.*``,
``harness.*``, ``parallel.*``, ``report.*``.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "add_attributes",
    "get_tracer",
    "install_tracer",
    "record_span",
    "span",
    "traced",
    "uninstall_tracer",
]

#: spans kept per tracer before further spans are counted but dropped —
#: a backstop so a very long sweep cannot exhaust memory through tracing
DEFAULT_MAX_SPANS = 200_000


@dataclass
class Span:
    """One completed (or in-flight) timed region."""

    name: str
    span_id: int
    parent_id: int | None
    start: float  # perf_counter seconds, comparable within one process
    duration: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    thread: str = "main"

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attributes.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        return cls(
            name=str(d["name"]),
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            start=float(d["start"]),
            duration=float(d.get("duration", 0.0)),
            attributes=dict(d.get("attributes") or {}),
            thread=str(d.get("thread", "main")),
        )


class Tracer:
    """Collects spans for one run.  Thread-safe; nesting is per-thread."""

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._next_id = 0
        self._stacks = threading.local()
        # thread ident -> that thread's open-span stack (the same list
        # object _stack() mutates), so a sampling profiler running on a
        # different thread can see which span each thread is inside
        self._stacks_by_ident: dict[int, list[Span]] = {}

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
            with self._lock:
                self._stacks_by_ident[threading.get_ident()] = stack
        return stack

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def open_spans(self) -> dict[int, Span]:
        """Innermost open span per thread ident (cross-thread snapshot).

        Read-only and lock-free on the stacks themselves: a concurrent
        push/pop can at worst misattribute the single sample being taken
        — acceptable for statistical profiling (see ``repro.obs.prof``).
        """
        with self._lock:
            stacks = dict(self._stacks_by_ident)
        out: dict[int, Span] = {}
        for ident, stack in stacks.items():
            try:
                out[ident] = stack[-1]
            except IndexError:
                continue  # thread currently has no open span
        return out

    def _new_span(self, name: str, attrs: dict[str, Any]) -> Span:
        parent = self.current_span()
        with self._lock:
            self._next_id += 1
            sid = self._next_id
        return Span(
            name=name,
            span_id=sid,
            parent_id=parent.span_id if parent else None,
            start=time.perf_counter(),
            attributes=dict(attrs),
            thread=threading.current_thread().name,
        )

    def _commit(self, sp: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
            else:
                self.spans.append(sp)

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; committed (with duration) on exit."""
        sp = self._new_span(name, attrs)
        stack = self._stack()
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - sp.start
            stack.pop()
            self._commit(sp)

    def record(self, name: str, start: float, duration: float, **attrs: Any) -> Span:
        """Record an externally timed region (no nesting bookkeeping).

        ``start`` is a ``time.perf_counter()`` reading; the scheduler uses
        this for worker tasks whose lifetime is not a ``with`` block.
        """
        sp = self._new_span(name, attrs)
        sp.start = start
        sp.duration = duration
        self._commit(sp)
        return sp

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped = 0

    # ------------------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per span (the ``repro stats`` format)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for sp in sorted(self.spans, key=lambda s: s.start):
                fh.write(json.dumps(sp.to_dict(), default=str) + "\n")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Write Chrome ``trace_event`` JSON (open in ``chrome://tracing``).

        Every span becomes a complete ("X") duration event; timestamps
        are microseconds relative to the earliest span so the viewer
        timeline starts at zero.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        origin = min((sp.start for sp in self.spans), default=0.0)
        tids = {}
        events = []
        for sp in sorted(self.spans, key=lambda s: s.start):
            tid = tids.setdefault(sp.thread, len(tids))
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (sp.start - origin) * 1e6,
                    "dur": sp.duration * 1e6,
                    "pid": 0,
                    "tid": tid,
                    "args": {k: _jsonable(v) for k, v in sp.attributes.items()},
                }
            )
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }
        path.write_text(json.dumps(doc))
        return path


def _jsonable(v: Any) -> Any:
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)


# ---------------------------------------------------------------------------
# module-level API: one process-wide active tracer (None = tracing off)
# ---------------------------------------------------------------------------
_active: Tracer | None = None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-wide tracer; spans start recording."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def uninstall_tracer() -> Tracer | None:
    """Stop recording; returns the tracer that was active (if any)."""
    global _active
    tracer, _active = _active, None
    return tracer


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off."""
    return _active


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Open a span on the active tracer; near-no-op when tracing is off.

    Yields the :class:`Span` (so callers can ``sp.set(...)`` computed
    attributes) or ``None`` when no tracer is installed.
    """
    tracer = _active
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as sp:
        yield sp


def add_attributes(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if tracing is on."""
    tracer = _active
    if tracer is None:
        return
    sp = tracer.current_span()
    if sp is not None:
        sp.set(**attrs)


def record_span(name: str, start: float, **attrs: Any) -> None:
    """Record a region timed externally: duration = now - ``start``."""
    tracer = _active
    if tracer is None:
        return
    tracer.record(name, start, time.perf_counter() - start, **attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable:
    """Decorator form of :func:`span` (span name defaults to the function's)."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or f"{fn.__module__.split('.')[-1]}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
