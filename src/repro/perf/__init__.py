"""``repro.perf`` — the frontier-gather kernel engine.

The simulator charges kernels as if they did work proportional to the
active frontier, but several host-side implementations historically did
asymptotically *more* work than the GPU kernels they model (full-edge
``np.isin`` scans per BFS level, full-array snapshots per sweep).  This
package closes that gap with three shared primitives plus a tracked
wall-clock benchmark:

* :mod:`repro.perf.gather` — O(frontier-edges) CSR gathers
  (:func:`~repro.perf.gather.frontier_edges`) and the per-source
  level-bucketed edge index (:class:`~repro.perf.gather.LevelBuckets`)
  that replaces per-level full-edge masks in BC's backward pass;
* :mod:`repro.perf.workspace` — a :class:`~repro.perf.workspace.WorkspacePool`
  of reusable scratch buffers and the touched-destinations change
  detector :func:`~repro.perf.workspace.scatter_min_changed`, eliminating
  the per-sweep O(V)/O(E) allocations in the relax hot paths;
* :mod:`repro.perf.edgeshare` — flat edge arrays
  (:class:`~repro.perf.edgeshare.EdgeView`) and reverse-CSR pull views
  (:class:`~repro.perf.edgeshare.PullEdgeView`) shared across Runners by
  graph fingerprint, so a harness sweep stops rebuilding them per
  (algorithm × source);
* :mod:`repro.perf.schedule` — the sweep-schedule layer
  (:class:`~repro.perf.schedule.Schedule` policies, notably
  :class:`~repro.perf.schedule.DirectionOptimizing` with Beamer's α/β
  hysteresis) that picks push vs. pull, sparse vs. dense frontiers and
  vertex- vs. edge-balanced partitioning per iteration;
* :mod:`repro.perf.batched` — the multi-source sweep engine: S sources
  stacked into lane-tagged ``(S, n)`` state with one concatenated
  expansion per level (:func:`~repro.perf.batched.expand_lanes`),
  per-lane charge attribution bit-identical to looped runs
  (:class:`~repro.perf.batched.LaneLedger`), and the
  :func:`~repro.perf.batched.bfs_levels_batched` /
  :func:`~repro.perf.batched.sssp_batched` entry points behind BC's
  ``engine="batched"`` and the serve layer's batching window;
* :mod:`repro.perf.bench` — ``python -m repro perf``, the kernel
  benchmark that emits ``BENCH_PR4.json`` and gates regressions in CI.

:mod:`repro.perf.reference` preserves the pre-engine reference paths so
the equivalence suite can prove the engine returns byte-identical values
and identical simulated-cycle charges.

Everything is observable: ``perf.gather.*`` and
``perf.workspace.{reuse,alloc}`` counters plus ``perf.*`` spans feed
``python -m repro stats`` (see ``docs/performance.md``).
"""

from .batched import (
    BatchedResult,
    LaneExpansion,
    LaneLedger,
    bfs_levels_batched,
    expand_lanes,
    lane_sources,
    sssp_batched,
)
from .edgeshare import EdgeView, PullEdgeView, shared_edge_view, shared_pull_view
from .gather import LevelBuckets, frontier_edges
from .schedule import (
    DirectionOptimizing,
    Explicit,
    FixedPush,
    Schedule,
    SweepDecision,
    schedule_for,
)
from .workspace import WorkspacePool, pool, scatter_min_changed

__all__ = [
    "BatchedResult",
    "DirectionOptimizing",
    "EdgeView",
    "Explicit",
    "FixedPush",
    "LaneExpansion",
    "LaneLedger",
    "LevelBuckets",
    "PullEdgeView",
    "Schedule",
    "SweepDecision",
    "WorkspacePool",
    "bfs_levels_batched",
    "expand_lanes",
    "frontier_edges",
    "lane_sources",
    "pool",
    "scatter_min_changed",
    "schedule_for",
    "shared_edge_view",
    "shared_pull_view",
    "sssp_batched",
]
