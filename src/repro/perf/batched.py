"""Batched multi-source sweeps: one stacked expansion per level, S lanes.

Level-synchronous solvers spend most of their host time on per-level
fixed costs — frontier setup, CSR gather dispatch, cost-model charging —
and a per-source loop pays them S times.  This module stacks S sources
into *lanes*: state lives in ``(S, n)`` C-contiguous arrays whose flat
view puts lane ``l``'s node ``v`` at ``l * n + v``, frontiers stay
per-lane sparse id arrays, and each level runs **one** concatenated CSR
gather plus **one** flat scatter across every active lane
(:func:`expand_lanes`).  BC's ``engine="batched"``
(:func:`repro.algorithms.bc.betweenness_centrality`) and the
:func:`bfs_levels_batched` / :func:`sssp_batched` entry points here are
built on it; the serve layer's batching window
(:mod:`repro.serve.batching`) cashes it in for same-graph query bursts.

The engine is an optimization, not an approximation — every lane must be
indistinguishable from its looped run.  Three facts make that exact:

* **disjoint rows** — lane ``l``'s scatter targets live in
  ``[l*n, (l+1)*n)``; ``np.add.at`` / ``np.minimum.at`` accumulation
  order only matters per element, and within a lane the concatenated
  records keep the looped run's global CSR edge order, so every float
  accumulates in the looped bit pattern;
* **per-lane decisions** — schedule decisions are pure functions of
  lane-local frontier stats plus the lane's previous decision
  (:meth:`repro.perf.schedule.Schedule.decide`), so a lane's
  push/pull/partition sequence is identical whether it runs alone or
  stacked;
* **exact charge decomposition** —
  :func:`repro.gpusim.costmodel.charge_lane_sweeps` returns each lane's
  :class:`~repro.gpusim.costmodel.SweepCost` bit-identical to its looped
  ``charge_sweep``; :class:`LaneLedger` keeps the per-lane cost lists in
  looped sweep order and replays them source-by-source into the
  execution context, so totals *and* observability counters match the
  looped engine byte for byte.

``differential:batched`` (:mod:`repro.verify.differential`) enforces all
three against the looped engine across the technique corpus.

Memory model: dense lane state is ``S × n`` words per attribute, while
frontiers stay per-lane sparse — the expansion cost is the sum of lane
frontier-edge counts, same as looped.  See ``docs/performance.md`` for
the crossover discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlgorithmError, SimulationError
from ..graphs.properties import ragged_arange
from ..gpusim.costmodel import SweepCost, charge_lane_sweeps, charge_sweep
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.metrics import SimMetrics
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .gather import SweepExpansion, expand_frontier
from .schedule import schedule_for

__all__ = [
    "BatchedResult",
    "LaneExpansion",
    "LaneLedger",
    "bfs_levels_batched",
    "charge_lane_level",
    "expand_lanes",
    "lane_sources",
    "lane_sweep_cost",
    "sssp_batched",
]


class LaneExpansion:
    """One stacked CSR gather over many lanes' frontiers.

    ``e_src``/``e_dst``/``epos`` concatenate the lanes' records;
    ``rec_bounds`` (length ``L+1``) delimits each lane's slice, and
    ``sweeps[l]`` is a zero-copy :class:`~repro.perf.gather.SweepExpansion`
    view of lane ``l`` — bitwise what ``expand_frontier`` would return
    for that frontier alone (``ragged_arange`` restarts per node, so the
    per-node step ordinals slice cleanly).
    """

    __slots__ = ("frontiers", "e_src", "e_dst", "epos", "rec_bounds", "sweeps")

    def __init__(self, frontiers, e_src, e_dst, epos, rec_bounds, sweeps):
        self.frontiers = frontiers
        self.e_src = e_src
        self.e_dst = e_dst
        self.epos = epos
        self.rec_bounds = rec_bounds
        self.sweeps = sweeps


def expand_lanes(
    offsets: np.ndarray, indices: np.ndarray, frontiers
) -> LaneExpansion:
    """Expand many frontiers over one CSR in a single concatenated gather."""
    frontiers = [np.asarray(f, dtype=np.int64) for f in frontiers]
    counts = np.fromiter(
        (f.size for f in frontiers), dtype=np.int64, count=len(frontiers)
    )
    node_bounds = np.concatenate(([0], np.cumsum(counts)))
    cat = (
        np.concatenate(frontiers)
        if len(frontiers) > 1
        else frontiers[0]
    )
    starts = offsets[cat].astype(np.int64)
    degs = (offsets[cat + 1] - offsets[cat]).astype(np.int64)
    edge_cum = np.concatenate(([0], np.cumsum(degs)))
    rec_bounds = edge_cum[node_bounds]
    total = int(edge_cum[-1]) if edge_cum.size else 0
    if total:
        step = ragged_arange(degs)
        epos = np.repeat(starts, degs) + step
        e_dst = indices[epos]
        e_src = np.repeat(cat, degs)
    else:
        step = epos = np.empty(0, dtype=np.int64)
        e_src = e_dst = np.empty(0, dtype=np.int64)
    sweeps = []
    nb = node_bounds.tolist()
    rb = rec_bounds.tolist()
    for i, frontier in enumerate(frontiers):
        nb0, nb1 = nb[i], nb[i + 1]
        rb0, rb1 = rb[i], rb[i + 1]
        sweeps.append(
            SweepExpansion(
                frontier,
                degs[nb0:nb1],
                step[rb0:rb1],
                epos[rb0:rb1],
                e_src[rb0:rb1],
                e_dst[rb0:rb1],
            )
        )
    obs_metrics.counter("perf.batched.expansions").inc()
    obs_metrics.counter("perf.batched.expansion_lanes").inc(len(frontiers))
    obs_metrics.counter("perf.batched.expansion_edges").inc(total)
    return LaneExpansion(frontiers, e_src, e_dst, epos, rec_bounds, sweeps)


def lane_sweep_cost(
    ctx,
    active,
    *,
    subgraph=None,
    expansion=None,
    partition: str = "vertex",
    all_shared: bool = False,
) -> SweepCost:
    """The :class:`SweepCost` one :meth:`ExecutionContext.charge` call
    would ledger, computed without touching the ledger.

    Mirrors :meth:`~repro.gpusim.kernel.ExecutionContext.charge`
    argument derivation exactly (ordering, expansion validation and the
    identity-order full-expansion cache), so a lane charged through here
    and later replayed via :meth:`LaneLedger.replay` is bit-identical to
    a lane charged eagerly by the looped engine.
    """
    graph = subgraph if subgraph is not None else ctx.graph
    active_ids = ctx.ordered(active)
    if expansion is not None:
        if not ctx._identity_order:
            expansion = None
        elif not np.array_equal(active_ids, expansion.frontier):
            raise SimulationError("expansion does not match the active list")
    elif active is None and subgraph is None and ctx._identity_order:
        expansion = ctx._full_expansion()
    return charge_sweep(
        graph,
        ctx.device,
        active_ids,
        resident_mask=None if all_shared else ctx.resident_mask,
        all_shared=all_shared,
        expansion=expansion,
        partition=partition,
    )


class LaneLedger:
    """Per-lane :class:`SweepCost` lists in looped sweep order.

    Lane ``l``'s list is exactly the cost sequence its looped run would
    ledger; :meth:`replay` feeds them to the context lane by lane in
    source order, reproducing the looped engine's accumulated metrics
    (and ``solve.sweeps`` / ``solve.sim_cycles`` counters) bit for bit.

    Charges may be *deferred*: :meth:`defer` reserves the cost's slot in
    the lane's sequence and queues the expansion; :meth:`flush` prices
    the whole queue at once, mirroring
    :meth:`ExecutionContext.charge_batch
    <repro.gpusim.kernel.ExecutionContext.charge_batch>` — one
    :func:`~repro.gpusim.costmodel.charge_lane_sweeps` pass for runs of
    small sweeps, the scalar hot path for sweeps at or above
    ``BATCH_EAGER_EDGES`` records (concatenating a huge expansion costs
    more than the per-call overhead it saves).  Slot reservation keeps
    each lane's list in level order even when eager charges (pull or
    edge-partitioned sweeps) interleave with deferred ones.
    """

    def __init__(self, num_lanes: int) -> None:
        self.costs: list[list[SweepCost]] = [[] for _ in range(num_lanes)]
        self._pending: list[tuple[int, int, SweepExpansion]] = []

    def add(self, lane: int, cost: SweepCost) -> None:
        self.costs[lane].append(cost)

    def defer(self, lane: int, expansion: SweepExpansion) -> None:
        self.costs[lane].append(None)
        self._pending.append((lane, len(self.costs[lane]) - 1, expansion))

    def flush(self, ctx) -> None:
        """Price all deferred sweeps (vertex-partition, identity order)."""
        if not self._pending:
            return
        # runs of small sweeps are priced in record-bounded chunks: the
        # batched coster's dominant step is a key sort over all records
        # in the call, and chunks sized like the looped engine's per-pass
        # flushes keep that sort in cache instead of going superlinear
        chunk_records = ctx.BATCH_EAGER_EDGES * 8
        run: list[tuple[int, int, SweepExpansion]] = []
        run_records = 0

        def _price_run() -> None:
            nonlocal run_records
            if not run:
                return
            priced = charge_lane_sweeps(
                ctx.graph,
                ctx.device,
                [exp for _, _, exp in run],
                resident_mask=ctx.resident_mask,
            )
            for (lane, slot, _), cost in zip(run, priced):
                self.costs[lane][slot] = cost
            run.clear()
            run_records = 0

        for lane, slot, exp in self._pending:
            if exp.epos.size >= ctx.BATCH_EAGER_EDGES:
                self.costs[lane][slot] = charge_sweep(
                    ctx.graph,
                    ctx.device,
                    exp.frontier,
                    resident_mask=ctx.resident_mask,
                    expansion=exp,
                )
            else:
                run.append((lane, slot, exp))
                run_records += exp.epos.size
                if run_records >= chunk_records:
                    _price_run()
        _price_run()
        self._pending.clear()

    @staticmethod
    def _fold(costs, base: SweepCost) -> SweepCost:
        # one pass with local accumulators instead of a SweepCost.__add__
        # chain: the int fields are exact either way, and cycles adds in
        # the same left-to-right order starting from ``base``, so the
        # total is bit-identical to SimMetrics.add-ing each cost in
        # sequence — just without the per-cost object churn
        ss = base.serial_steps
        bl = base.busy_lane_steps
        il = base.idle_lane_steps
        et = base.edge_transactions
        ag = base.attr_global_transactions
        ash = base.attr_shared_transactions
        st = base.src_transactions
        ao = base.atomic_ops
        cy = base.cycles
        for c in costs:
            ss += c.serial_steps
            bl += c.busy_lane_steps
            il += c.idle_lane_steps
            et += c.edge_transactions
            ag += c.attr_global_transactions
            ash += c.attr_shared_transactions
            st += c.src_transactions
            ao += c.atomic_ops
            cy += c.cycles
        return SweepCost(ss, bl, il, et, ag, ash, st, ao, cy)

    def lane_metrics(self, device: DeviceConfig) -> list[SimMetrics]:
        if self._pending:
            raise SimulationError("lane ledger has unpriced deferred sweeps")
        out = []
        for costs in self.costs:
            m = SimMetrics(device=device)
            m.total = self._fold(costs, m.total)
            m.num_sweeps = len(costs)
            out.append(m)
        return out

    def replay(self, ctx) -> None:
        if self._pending:
            raise SimulationError("lane ledger has unpriced deferred sweeps")
        count = 0
        for costs in self.costs:
            # the cycle counter still advances cost by cost so its float
            # bits match the looped engine's per-sweep increments
            for cost in costs:
                ctx._cycle_counter.inc(cost.cycles)
            count += len(costs)
        ctx.metrics.total = self._fold(
            (c for costs in self.costs for c in costs), ctx.metrics.total
        )
        ctx.metrics.num_sweeps += count
        ctx._sweep_counter.inc(count)


def charge_lane_level(ctx, ledger: LaneLedger, lanes, sweeps, decisions) -> None:
    """Charge one stacked level: per-lane costs, appended in lane order.

    Vertex-partitioned identity-order lanes defer to the ledger's
    batched pricing pass (:meth:`LaneLedger.flush`); edge-balanced or
    permuted-order lanes are priced eagerly (exactly the sweeps the
    looped engine also charges one at a time).
    """
    parts = [
        "vertex" if d is None else d.partition for d in decisions
    ]
    for lane, exp, part in zip(lanes, sweeps, parts):
        if ctx._identity_order and part == "vertex":
            ledger.defer(lane, exp)
        else:
            ledger.add(
                lane,
                lane_sweep_cost(ctx, exp.frontier, expansion=exp, partition=part),
            )
    obs_metrics.counter("perf.batched.levels").inc()
    obs_metrics.counter("perf.batched.lane_sweeps").inc(len(lanes))


@dataclass
class BatchedResult:
    """Per-lane values + per-lane cost attribution of one stacked run.

    ``values`` is ``(num_sources, num_original)``; ``iterations`` and
    ``lane_metrics`` are per lane (index-aligned with ``sources``);
    ``metrics`` is the total ledger, bit-identical to running the lanes
    through one looped runner back to back.
    """

    values: np.ndarray
    iterations: list[int]
    lane_metrics: list[SimMetrics]
    metrics: SimMetrics
    aux: dict[str, object] | None = None

    @property
    def num_lanes(self) -> int:
        return len(self.iterations)


def lane_sources(sources, num_original: int) -> np.ndarray:
    """Validate a batched source set (duplicates allowed — lanes are
    independent, so a repeated source just repeats its lane)."""
    sources = np.asarray(sources, dtype=np.int64).reshape(-1)
    if sources.size == 0:
        raise AlgorithmError("sources must be non-empty")
    if sources.min() < 0 or sources.max() >= num_original:
        raise AlgorithmError("batched source out of range")
    return sources


def _replica_info(plan):
    if plan.graffix is not None:
        primary = plan.graffix.primary_slot
        g_slots, g_gids, g_sizes = plan.graffix.replica_groups()
    else:
        primary = np.arange(plan.num_original, dtype=np.int64)
        g_slots = g_gids = g_sizes = np.empty(0, dtype=np.int64)
    return primary, g_slots, g_gids, int(g_sizes.size)


def _sync_groups(level, g_slots, g_gids, num_groups) -> None:
    # replica copies are one logical node (same rule as bfs/bc)
    if num_groups == 0:
        return
    lv = level[g_slots].astype(np.float64)
    lv[lv < 0] = np.inf
    gmin = np.full(num_groups, np.inf)
    np.minimum.at(gmin, g_gids, lv)
    reached = np.isfinite(gmin)
    members = reached[g_gids] & (level[g_slots] < 0)
    level[g_slots[members]] = gmin[g_gids[members]].astype(np.int64)


def bfs_levels_batched(
    graph_or_plan,
    sources,
    *,
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
    deadline=None,
) -> BatchedResult:
    """BFS levels from every source in one stacked sweep.

    Lane ``l`` of the result is byte-identical — values, iteration
    count, charged metrics — to ``bfs(plan, sources[l], ...)`` with the
    same schedule.  ``deadline`` (a :class:`repro.serve.deadline.Deadline`)
    is checked once per stacked level; per-lane granularity would be
    identical since all active lanes advance together.
    """
    from ..algorithms.common import Runner, plan_for

    sched = schedule_for(schedule)
    plan = plan_for(graph_or_plan)
    sources = lane_sources(sources, plan.num_original)
    num_lanes = int(sources.size)
    runner = (runner_factory or Runner)(plan, device)
    ctx = runner.ctx
    graph = plan.graph
    n = graph.num_nodes
    m = graph.num_edges
    offsets = graph.offsets
    indices = graph.indices.astype(np.int64)
    primary, g_slots, g_gids, num_groups = _replica_info(plan)
    pull_view = None
    rev_indices = None

    def _pull_arrays():
        nonlocal pull_view, rev_indices
        if pull_view is None:
            pull_view = runner._pull_edges()
            rev_indices = pull_view.rev.indices.astype(np.int64)
        return pull_view, rev_indices

    level2 = np.full((num_lanes, n), -1, dtype=np.int64)
    level_flat = level2.reshape(-1)
    frontiers: list[np.ndarray] = [None] * num_lanes
    unexplored = np.empty(num_lanes, dtype=np.int64)
    for i, s in enumerate(sources):
        lv = level2[i]
        lv[int(primary[s])] = 0
        _sync_groups(lv, g_slots, g_gids, num_groups)
        f = np.nonzero(lv == 0)[0].astype(np.int64)
        frontiers[i] = f
        unexplored[i] = m - int((offsets[f + 1] - offsets[f]).sum())
    lane_depth = np.zeros(num_lanes, dtype=np.int64)
    prev = [None] * num_lanes
    ledger = LaneLedger(num_lanes)
    active = [i for i in range(num_lanes) if frontiers[i].size]
    depth = 0
    obs_metrics.counter("perf.batched.runs").inc()
    obs_metrics.counter("perf.batched.lanes").inc(num_lanes)

    with obs_trace.span(
        "perf.batched.bfs", lanes=num_lanes, technique=plan.technique
    ):
        while active:
            if deadline is not None:
                deadline.check("sweep")
            decisions = {}
            for i in active:
                decision = None
                if sched is not None:
                    f = frontiers[i]
                    decision = sched.decide(
                        frontier_size=int(f.size),
                        frontier_edges=int(
                            (offsets[f + 1] - offsets[f]).sum()
                        ),
                        num_nodes=n,
                        num_edges=m,
                        unexplored_edges=int(unexplored[i]),
                        prev=prev[i],
                    )
                    prev[i] = decision
                decisions[i] = decision
            pull_lanes = [
                i
                for i in active
                if decisions[i] is not None and decisions[i].direction == "pull"
            ]
            push_lanes = [i for i in active if i not in pull_lanes]
            newly: dict[int, np.ndarray | None] = {}
            for i in pull_lanes:
                pv, rind = _pull_arrays()
                lv = level2[i]
                candidates = np.nonzero(lv < 0)[0].astype(np.int64)
                rexp = expand_frontier(pv.rev.offsets, rind, candidates)
                ledger.add(
                    i,
                    lane_sweep_cost(
                        ctx,
                        candidates,
                        subgraph=pv.rev,
                        expansion=rexp,
                        partition=decisions[i].partition,
                    ),
                )
                hits = np.unique(rexp.e_src[lv[rexp.e_dst] == depth])
                if hits.size:
                    lv[hits] = depth + 1
                newly[i] = hits
            if push_lanes:
                lx = expand_lanes(
                    offsets, indices, [frontiers[i] for i in push_lanes]
                )
                row_off = np.repeat(
                    np.asarray(push_lanes, dtype=np.int64) * n,
                    np.diff(lx.rec_bounds),
                )
                flat_dst = lx.e_dst + row_off
                fresh_mask = level_flat[flat_dst] < 0
                fresh_flat = flat_dst[fresh_mask]
                if fresh_flat.size:
                    level_flat[fresh_flat] = depth + 1
                for pos, i in enumerate(push_lanes):
                    rb0 = int(lx.rec_bounds[pos])
                    rb1 = int(lx.rec_bounds[pos + 1])
                    fm = fresh_mask[rb0:rb1]
                    fresh = lx.e_dst[rb0:rb1][fm]
                    newly[i] = fresh if fresh.size else None
                charge_lane_level(
                    ctx,
                    ledger,
                    push_lanes,
                    lx.sweeps,
                    [decisions[i] for i in push_lanes],
                )
            still = []
            for i in active:
                lv = level2[i]
                _sync_groups(lv, g_slots, g_gids, num_groups)
                decision = decisions[i]
                if (
                    decision is not None
                    and decision.frontier == "sparse"
                    and num_groups == 0
                ):
                    hit = newly[i]
                    f = (
                        np.unique(hit)
                        if hit is not None
                        else np.empty(0, np.int64)
                    )
                else:
                    f = np.nonzero(lv == depth + 1)[0].astype(np.int64)
                frontiers[i] = f
                lane_depth[i] = depth + 1
                unexplored[i] -= int((offsets[f + 1] - offsets[f]).sum())
                if f.size:
                    still.append(i)
            active = still
            depth += 1

    ledger.flush(ctx)
    values = np.empty((num_lanes, plan.num_original))
    for i in range(num_lanes):
        lv = level2[i]
        row = (lv[primary] if plan.graffix is not None else lv).astype(
            np.float64
        )
        row[row < 0] = np.inf
        values[i] = row
    lane_metrics = ledger.lane_metrics(device)
    ledger.replay(ctx)
    return BatchedResult(
        values=values,
        iterations=[int(d) for d in lane_depth],
        lane_metrics=lane_metrics,
        metrics=runner.metrics,
        aux={"sources": sources},
    )


def _relax_lanes(edges, dist2, dist_flat, act, n):
    """One stacked Bellman-Ford sweep; per-lane changed flags.

    Candidate distances are the same float64 operands each looped
    :func:`~repro.algorithms.sssp.sssp_relax` computes, and scatter-min
    is order-insensitive and exact, so the post-sweep rows are
    bit-identical per lane; the changed flag reduces to "any element
    improved", which both looped branches (pooled dense snapshot and
    sparse touched-destination compare) also compute.
    """
    src = np.asarray(edges.src)
    dst = np.asarray(edges.dst, dtype=np.int64)
    w = np.asarray(edges.weights)
    before = dist2[act]  # fancy indexing: a snapshot copy
    src_vals = before[:, src]
    finite = np.isfinite(src_vals)
    if not finite.any():
        return np.zeros(act.size, dtype=bool)
    cand = src_vals + w
    flat_idx = act[:, None] * n + dst[None, :]
    np.minimum.at(dist_flat, flat_idx[finite], cand[finite])
    return (dist2[act] < before).any(axis=1)


def sssp_batched(
    graph_or_plan,
    sources,
    *,
    device: DeviceConfig = K40C,
    runner_factory=None,
    schedule=None,
    deadline=None,
    improvement_atol: float = 0.5,
    improvement_rtol: float = 0.1,
) -> BatchedResult:
    """Bellman-Ford distances from every source in one stacked sweep.

    Lane ``l`` is byte-identical — distances, iteration count, charged
    metrics — to ``sssp(plan, sources[l], ...)`` with the same schedule.
    Full sweeps are graph-constant, so the schedule's decision sequence
    is shared across lanes (every active lane is always at the same
    iteration index) and each decision's cost is computed once and
    attributed to every lane still running.  Convergence — the exact
    changed flag or the replica-plan envelope/margin rule of
    :meth:`Runner.fixed_point <repro.algorithms.common.Runner.fixed_point>`
    — and the §3 cluster rounds run per lane.
    """
    from ..algorithms.common import MAX_ITERATIONS, Runner, plan_for
    from ..algorithms.sssp import sssp_relax

    plan = plan_for(graph_or_plan)
    sources = lane_sources(sources, plan.num_original)
    num_lanes = int(sources.size)
    runner = (runner_factory or Runner)(plan, device).use_schedule(schedule)
    ctx = runner.ctx
    n = plan.graph.num_nodes
    dist2 = np.empty((num_lanes, n), dtype=np.float64)
    for i, s in enumerate(sources):
        init = np.full(plan.num_original, np.inf)
        init[int(s)] = 0.0
        dist2[i] = plan.lift(init, fill=np.inf)
    dist_flat = dist2.reshape(-1)
    max_iterations = min(MAX_ITERATIONS, 4 * n + 50)
    approximate = plan.has_replicas
    envelope = dist2.copy() if approximate else None
    iterations = np.zeros(num_lanes, dtype=np.int64)
    ledger = LaneLedger(num_lanes)
    sweep_costs: dict = {}
    active = list(range(num_lanes))
    obs_metrics.counter("perf.batched.runs").inc()
    obs_metrics.counter("perf.batched.lanes").inc(num_lanes)

    with obs_trace.span(
        "perf.batched.sssp", lanes=num_lanes, technique=plan.technique
    ):
        while active:
            if deadline is not None:
                deadline.check("sweep")
            # full sweeps are graph-constant: one decision for all lanes,
            # identical to each lane's looped sequence by purity of decide()
            decision = runner._decide(None)
            cost = sweep_costs.get(decision)
            if decision is None or decision.direction == "push":
                edges = runner.edges
                if cost is None:
                    cost = lane_sweep_cost(
                        ctx,
                        None,
                        partition=(
                            "vertex" if decision is None else decision.partition
                        ),
                    )
                    sweep_costs[decision] = cost
            else:
                pv = runner._pull_edges()
                edges = pv
                if cost is None:
                    cost = lane_sweep_cost(
                        ctx,
                        None,
                        subgraph=pv.rev,
                        expansion=pv.full_expansion(),
                        partition=decision.partition,
                    )
                    sweep_costs[decision] = cost
            act = np.asarray(active, dtype=np.int64)
            changed = _relax_lanes(edges, dist2, dist_flat, act, n)
            for i in active:
                iterations[i] += 1
                ledger.add(i, cost)
            obs_metrics.counter("perf.batched.levels").inc()
            obs_metrics.counter("perf.batched.lane_sweeps").inc(len(active))
            cont = []
            if approximate:
                for i in active:
                    row = dist2[i]
                    env = envelope[i]
                    margin = improvement_atol + improvement_rtol * np.where(
                        np.isfinite(env), np.abs(env), 0.0
                    )
                    improved = row < env - margin
                    np.minimum(env, row, out=env)
                    runner.confluence(row)
                    np.minimum(env, row, out=env)
                    if improved.any():
                        cont.append(i)
            else:
                cont = [i for pos, i in enumerate(active) if changed[pos]]
            if (
                cont
                and plan.has_clusters
                and runner.cluster_edges is not None
            ):
                for i in cont:
                    _cluster_rounds_lane(
                        runner, ledger, i, dist2[i], sssp_relax, sweep_costs
                    )
            active = [i for i in cont if iterations[i] < max_iterations]

    values = np.stack([plan.lower(dist2[i]) for i in range(num_lanes)])
    lane_metrics = ledger.lane_metrics(device)
    ledger.replay(ctx)
    return BatchedResult(
        values=values,
        iterations=[int(k) for k in iterations],
        lane_metrics=lane_metrics,
        metrics=runner.metrics,
        aux={"sources": sources},
    )


def _cluster_rounds_lane(runner, ledger, lane, values, relax, cached) -> None:
    """The §3 local iterations for one lane (cost is round-constant)."""
    cost = cached.get("cluster")
    with obs_trace.span(
        "solve.cluster_rounds", local_iterations=runner.plan.local_iterations
    ):
        for _ in range(runner.plan.local_iterations):
            if cost is None:
                cost = lane_sweep_cost(
                    runner.ctx,
                    runner._resident_nodes,
                    subgraph=runner.plan.cluster_graph,
                    all_shared=True,
                )
                cached["cluster"] = cost
            ledger.add(lane, cost)
            changed = relax(runner.cluster_edges, values)
            runner.confluence(values)
            if not changed:
                break
