"""``python -m repro perf``: host-kernel wall-clock benchmark.

Times the solver hot paths per algorithm × graph at a fixed suite scale
and emits a JSON report (``BENCH_PR4.json`` by convention) — the
repo's tracked perf trajectory.  Where a pre-engine reference path
exists (BC's ``np.isin`` scan, SSSP/WCC's snapshot loops — see
:mod:`repro.perf.reference`), the report carries both timings and the
``speedup_vs_reference`` ratio, which is machine-portable in a way raw
seconds are not.

Regression gating (the redisbench-style committed-baseline pattern)::

    python -m repro perf --scale small --out BENCH_PR4.json \
        --check benchmarks/results/perf_baseline_ci.json --max-regression 2.0

``--check`` compares each kernel's measured seconds against the
committed baseline and exits non-zero on any kernel slower than
``max-regression`` times its baseline; ``--min-bc-speedup`` additionally
gates the aggregate BC speedup over the reference path.

Each row also carries its raw per-repeat ``samples`` (so ``python -m
repro obs diff`` can derive noise-aware thresholds from the actual
spread instead of a fixed ratio) and per-sweep efficiency metrics from
the simulator's charged ledger: ``sweeps``, ``sim_seconds`` (charged
SweepCost converted to device seconds, against the measured wall-clock),
``sim_cycles_per_second`` (charged throughput), and
``frontier_occupancy`` (busy lane-steps over total — the paper's warp
efficiency, 1 − divergence).

Every row names its sweep ``schedule`` (``fixed-push`` unless
``--schedule`` pins another — see :mod:`repro.perf.schedule`), and two
comparison rows per graph, ``bfs@diropt`` and ``bc@diropt``, run the
direction-optimizing policy against the fixed-push base rows; their
``speedup_vs_fixed_push`` is the paper-style win from switching to
bottom-up sweeps once frontiers densify.  Two more comparison rows,
``bc@batched`` and ``sssp@batched``, stack ``--batch-sources`` sources
into one multi-source sweep (:mod:`repro.perf.batched`) and time the
same sources through the per-source loop; ``speedup_vs_looped`` is the
batching win, with answers and charges proven bit-identical by
``differential:batched``.

Two more comparison rows, ``sssp@tuned`` and ``pagerank@tuned``, run
the same workload under the adaptive controller
(:mod:`repro.tune`, budget ``--tune-budget`` percent); their
``speedup_vs_static`` is the controller's win over the static-knob base
row on the same schedule — the runtime counterpart of the offline
``python -m repro tune`` search.

``--record-trajectory`` appends the report, with commit and config
provenance, to ``benchmarks/results/TRAJECTORY.json`` — the committed
perf history that CI's ``obs diff`` gate compares fresh runs against.
``--profile PREFIX`` samples the run (see :mod:`repro.obs.prof`).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable

from ..graphs.csr import CSRGraph
from ..graphs.generators import paper_suite
from ..obs import trace as obs_trace

__all__ = [
    "run_bench",
    "best_speedup",
    "check_regressions",
    "record_trajectory",
    "main",
]

#: the committed perf-trajectory file (see ``--record-trajectory``)
TRAJECTORY_PATH = Path("benchmarks/results/TRAJECTORY.json")

SCHEMA_VERSION = 1

#: kernels timed per graph; ``reference`` names the pre-engine path
#: (None when the engine path has no preserved reference)
_BC_SOURCES = 4


def _bench_source(graph: CSRGraph) -> int:
    import numpy as np

    return int(np.argmax(graph.out_degrees()))


def _kernels(
    schedule: str | None = None,
    batch_sources: int = 8,
    tune_budget: float = 20.0,
) -> list[dict]:
    from ..algorithms.bc import betweenness_centrality, pick_sources
    from ..algorithms.bfs import bfs
    from ..algorithms.pagerank import pagerank
    from ..algorithms.sssp import sssp
    from ..algorithms.wcc import wcc
    from ..baselines.gunrock import sssp_frontier
    from ..tune import ErrorBudget, adaptive_runner_factory
    from .batched import sssp_batched
    from .schedule import schedule_for
    from . import reference as ref

    tune_factory = lambda g: adaptive_runner_factory(  # noqa: E731
        ErrorBudget(target_percent=tune_budget), exact_graph=g
    )

    def bc_engine(g, engine, sched=None, num_sources=_BC_SOURCES):
        return betweenness_centrality(
            g, num_sources=num_sources, seed=0, engine=engine, schedule=sched
        )

    def batch_srcs(g):
        return pick_sources(g.num_nodes, min(batch_sources, g.num_nodes), 0)

    def sssp_looped(g):
        last = None
        for s in batch_srcs(g):
            last = sssp(g, int(s))
        return last

    parsed = schedule_for(schedule)
    label = parsed.name if parsed is not None else "fixed-push"
    specs = [
        {
            "kernel": "bc",
            "schedule": label,
            "run": lambda g: bc_engine(g, "gather", schedule),
            "reference": lambda g: bc_engine(g, "reference"),
        },
        {
            "kernel": "sssp",
            "schedule": label,
            "run": lambda g: sssp(g, _bench_source(g), schedule=schedule),
            "reference": lambda g: ref.sssp_reference(g, _bench_source(g)),
        },
        {
            # WCC's label propagation is symmetric — no pull direction to
            # schedule, so the row never takes ``--schedule``
            "kernel": "wcc",
            "schedule": None,
            "run": lambda g: wcc(g),
            "reference": lambda g: ref.wcc_reference(g),
        },
        {
            "kernel": "bfs",
            "schedule": label,
            "run": lambda g: bfs(g, _bench_source(g), schedule=schedule),
            "reference": None,
        },
        {
            "kernel": "pagerank",
            "schedule": label,
            "run": lambda g: pagerank(g, schedule=schedule),
            "reference": None,
        },
        {
            "kernel": "gunrock_sssp",
            "schedule": label,
            "run": lambda g: sssp_frontier(g, _bench_source(g), schedule=schedule),
            "reference": None,
        },
        # fixed-push vs direction-optimizing comparison rows (distinct
        # kernel names so trajectory/obs-diff keys never collide with the
        # base rows); ``speedup_vs_fixed_push`` is derived post-run from
        # the matching base row
        {
            "kernel": "bfs@diropt",
            "schedule": "direction-optimizing",
            "run": lambda g: bfs(
                g, _bench_source(g), schedule="direction-optimizing"
            ),
            "reference": None,
        },
        {
            "kernel": "bc@diropt",
            "schedule": "direction-optimizing",
            "run": lambda g: bc_engine(g, "gather", "direction-optimizing"),
            "reference": None,
        },
        # batched multi-source rows: one stacked sweep over
        # ``batch_sources`` lanes vs the same sources run back to back
        # through the looped engine; ``speedup_vs_looped`` is the paper's
        # batching win (bit-identical answers — differential:batched)
        {
            "kernel": "bc@batched",
            "schedule": None,
            "run": lambda g: bc_engine(
                g, "batched", num_sources=batch_sources
            ),
            "reference": None,
            "looped": lambda g: bc_engine(
                g, "gather", num_sources=batch_sources
            ),
        },
        {
            "kernel": "sssp@batched",
            "schedule": None,
            "run": lambda g: sssp_batched(g, batch_srcs(g)),
            "reference": None,
            "looped": sssp_looped,
        },
        # adaptive-controller rows: identical workload + schedule to the
        # base rows, but run through repro.tune's runner factory under a
        # finite error budget; ``speedup_vs_static`` is derived post-run
        # from the matching base row
        {
            "kernel": "sssp@tuned",
            "schedule": label,
            "run": lambda g: sssp(
                g, _bench_source(g), schedule=schedule,
                runner_factory=tune_factory(g),
            ),
            "reference": None,
        },
        {
            "kernel": "pagerank@tuned",
            "schedule": label,
            "run": lambda g: pagerank(
                g, schedule=schedule, runner_factory=tune_factory(g)
            ),
            "reference": None,
        },
    ]
    return specs


def _time(fn: Callable[[], object], repeats: int) -> tuple[float, object, list[float]]:
    """Best-of-``repeats`` wall-clock; the first run warms pooled buffers.

    Also returns every repeat's raw timing — the spread is what makes
    ``obs diff`` verdicts noise-aware rather than fixed-ratio.
    """
    samples: list[float] = []
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return min(samples), result, samples


def run_bench(
    scale: str = "small",
    *,
    repeats: int = 3,
    seed: int = 7,
    graphs: list[str] | None = None,
    schedule: str | None = None,
    batch_sources: int = 8,
    tune_budget: float = 20.0,
) -> dict:
    """Time every kernel on every suite graph; returns the report dict.

    ``schedule`` pins a sweep schedule on every schedulable base row
    (the ``@diropt`` comparison rows always run direction-optimizing);
    ``batch_sources`` sets how many lanes the ``@batched`` rows stack;
    ``tune_budget`` is the ``@tuned`` rows' inaccuracy budget (percent).
    """
    with obs_trace.span("perf.bench.suite", scale=scale):
        suite = paper_suite(scale, seed=seed)
    if graphs:
        unknown = sorted(set(graphs) - set(suite))
        if unknown:
            raise SystemExit(f"unknown graphs {unknown}; suite has {sorted(suite)}")
        suite = {name: suite[name] for name in graphs}
    rows: list[dict] = []
    for name, graph in suite.items():
        for spec in _kernels(schedule, batch_sources, tune_budget):
            with obs_trace.span(
                "perf.bench.kernel", kernel=spec["kernel"], graph=name
            ):
                seconds, result, samples = _time(lambda: spec["run"](graph), repeats)
            row = {
                "kernel": spec["kernel"],
                "graph": name,
                "schedule": spec["schedule"],
                "seconds": seconds,
                "samples": [round(s, 6) for s in samples],
                "iterations": getattr(result, "iterations", None),
                "sim_cycles": getattr(result, "metrics", None)
                and result.metrics.cycles,
            }
            sim = getattr(result, "metrics", None)
            if sim is not None and sim.num_sweeps:
                # charged-cost efficiency: how the simulator's ledger
                # relates to the host wall-clock that paid for it
                busy = sim.total.busy_lane_steps
                idle = sim.total.idle_lane_steps
                row["sweeps"] = sim.num_sweeps
                row["sim_seconds"] = round(sim.seconds, 6)
                row["sim_cycles_per_second"] = (
                    round(sim.cycles / seconds, 3) if seconds > 0 else None
                )
                row["frontier_occupancy"] = (
                    round(busy / (busy + idle), 6) if busy + idle else None
                )
            if spec["reference"] is not None:
                with obs_trace.span(
                    "perf.bench.reference", kernel=spec["kernel"], graph=name
                ):
                    ref_seconds, _, ref_samples = _time(
                        lambda: spec["reference"](graph), repeats
                    )
                row["reference_seconds"] = ref_seconds
                row["reference_samples"] = [round(s, 6) for s in ref_samples]
                row["speedup_vs_reference"] = (
                    ref_seconds / seconds if seconds > 0 else float("inf")
                )
            if spec.get("looped") is not None:
                row["batch_sources"] = batch_sources
                with obs_trace.span(
                    "perf.bench.looped", kernel=spec["kernel"], graph=name
                ):
                    looped_seconds, _, looped_samples = _time(
                        lambda: spec["looped"](graph), repeats
                    )
                row["looped_seconds"] = looped_seconds
                row["looped_samples"] = [round(s, 6) for s in looped_samples]
                row["speedup_vs_looped"] = (
                    looped_seconds / seconds if seconds > 0 else float("inf")
                )
            rows.append(row)
    # derive fixed-push vs direction-optimizing ratios for the @diropt rows
    by_key = {(r["kernel"], r["graph"]): r for r in rows}
    for row in rows:
        kernel = row["kernel"]
        if "@" not in kernel or kernel.endswith("@batched"):
            # @batched rows compare against their own looped runs (often
            # a different source count than the base row), not fixed-push
            continue
        if kernel.endswith("@tuned"):
            # @tuned rows compare against the base row on the *same*
            # schedule: the pair differs only by the adaptive controller
            base = by_key.get((kernel.split("@", 1)[0], row["graph"]))
            if base is not None and base["schedule"] == row["schedule"]:
                row["static_seconds"] = base["seconds"]
                row["tune_budget_percent"] = tune_budget
                row["speedup_vs_static"] = (
                    base["seconds"] / row["seconds"]
                    if row["seconds"] > 0
                    else float("inf")
                )
            continue
        base = by_key.get((kernel.split("@", 1)[0], row["graph"]))
        if base is None or base["schedule"] != "fixed-push":
            continue
        row["fixed_push_seconds"] = base["seconds"]
        row["speedup_vs_fixed_push"] = (
            base["seconds"] / row["seconds"] if row["seconds"] > 0 else float("inf")
        )
    report = {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
        "generated_unix": time.time(),
        "graphs": {
            name: {"nodes": g.num_nodes, "edges": g.num_edges}
            for name, g in suite.items()
        },
        "kernels": rows,
    }
    for kernel in sorted({r["kernel"] for r in rows}):
        agg = aggregate_speedup(report, kernel)
        if agg is not None:
            report.setdefault("aggregate_speedup_vs_reference", {})[kernel] = agg
        best = best_speedup(report, kernel)
        if best is not None:
            report.setdefault("best_speedup_vs_reference", {})[kernel] = best
    return report


def aggregate_speedup(report: dict, kernel: str) -> float | None:
    """Sum-of-reference-seconds over sum-of-engine-seconds for ``kernel``."""
    rows = [
        r
        for r in report["kernels"]
        if r["kernel"] == kernel and "reference_seconds" in r
    ]
    if not rows:
        return None
    engine = sum(r["seconds"] for r in rows)
    reference = sum(r["reference_seconds"] for r in rows)
    return reference / engine if engine > 0 else float("inf")


def best_speedup(report: dict, kernel: str) -> float | None:
    """Max per-graph speedup vs reference for ``kernel``.

    The engine's win scales with graph diameter (more levels → more
    full-edge scans amortized away), so the suite's high-diameter road
    graph is where the asymptotic gap shows; the aggregate averages it
    with low-diameter graphs whose sweeps were already cheap.
    """
    speedups = [
        r["speedup_vs_reference"]
        for r in report["kernels"]
        if r["kernel"] == kernel and "speedup_vs_reference" in r
    ]
    return max(speedups) if speedups else None


def check_regressions(
    current: dict, baseline: dict, *, max_regression: float
) -> list[str]:
    """Kernels slower than ``max_regression`` × their committed baseline."""
    base = {
        (r["kernel"], r["graph"]): r["seconds"] for r in baseline["kernels"]
    }
    failures = []
    for row in current["kernels"]:
        key = (row["kernel"], row["graph"])
        if key not in base or base[key] <= 0:
            continue
        ratio = row["seconds"] / base[key]
        if ratio > max_regression:
            failures.append(
                f"{row['kernel']}/{row['graph']}: {row['seconds']:.4f}s is "
                f"{ratio:.2f}x the baseline {base[key]:.4f}s "
                f"(limit {max_regression:.2f}x)"
            )
    return failures


def _git_commit() -> str:
    """Short commit hash of the working tree, or ``unknown`` outside git."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown" if out.returncode == 0 else "unknown"


def record_trajectory(report: dict, path: str | Path = TRAJECTORY_PATH) -> dict:
    """Append ``report`` (with provenance) to the perf-trajectory file.

    The file is ``{"schema": 1, "entries": [...]}``; each entry carries
    the commit the run was taken at and the bench config, so a future
    ``obs diff`` verdict can always be traced to what was measured
    where.  Returns the appended entry.
    """
    path = Path(path)
    if path.exists():
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or "entries" not in doc:
            raise ValueError(f"{path} is not a trajectory file")
    else:
        doc = {"schema": 1, "entries": []}
    entry = {
        "recorded_unix": report.get("generated_unix", time.time()),
        "commit": _git_commit(),
        "config": {
            "scale": report.get("scale"),
            "repeats": report.get("repeats"),
            "seed": report.get("seed"),
        },
        "report": report,
    }
    doc["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return entry


def _format_report(report: dict) -> str:
    lines = [
        f"repro perf — scale={report['scale']} repeats={report['repeats']}",
        f"{'kernel':<14}{'graph':<14}{'schedule':<22}"
        f"{'seconds':>10}{'ref s':>10}{'speedup':>9}",
    ]
    for r in report["kernels"]:
        ref = r.get("reference_seconds")
        spd = r.get("speedup_vs_reference")
        sched = r.get("schedule") or "—"
        head = f"{r['kernel']:<14}{r['graph']:<14}{sched:<22}{r['seconds']:>10.4f}"
        lines.append(
            f"{head}{ref:>10.4f}{spd:>8.2f}x"
            if ref is not None
            else f"{head}{'—':>10}{'—':>9}"
        )
    do_rows = [r for r in report["kernels"] if "speedup_vs_fixed_push" in r]
    if do_rows:
        lines.append("direction-optimizing vs fixed-push:")
        for r in do_rows:
            lines.append(
                f"  {r['kernel']:<14}{r['graph']:<14}"
                f"{r['speedup_vs_fixed_push']:.2f}x"
            )
    batched_rows = [r for r in report["kernels"] if "speedup_vs_looped" in r]
    if batched_rows:
        lines.append(
            f"batched stacked sweep vs per-source loop "
            f"({batched_rows[0].get('batch_sources', '?')} sources):"
        )
        for r in batched_rows:
            lines.append(
                f"  {r['kernel']:<14}{r['graph']:<14}"
                f"{r['speedup_vs_looped']:.2f}x "
                f"({r['looped_seconds']:.4f}s -> {r['seconds']:.4f}s)"
            )
    tuned_rows = [r for r in report["kernels"] if "speedup_vs_static" in r]
    if tuned_rows:
        lines.append(
            f"adaptive controller vs static knobs "
            f"(budget {tuned_rows[0].get('tune_budget_percent', '?')}%):"
        )
        for r in tuned_rows:
            lines.append(
                f"  {r['kernel']:<16}{r['graph']:<14}"
                f"{r['speedup_vs_static']:.2f}x "
                f"({r['static_seconds']:.4f}s -> {r['seconds']:.4f}s)"
            )
    best = report.get("best_speedup_vs_reference", {})
    for kernel, agg in sorted(
        report.get("aggregate_speedup_vs_reference", {}).items()
    ):
        lines.append(
            f"{kernel} speedup vs reference: {agg:.2f}x aggregate, "
            f"{best.get(kernel, agg):.2f}x best graph"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Time solver kernels and emit/check the perf baseline.",
    )
    parser.add_argument("--scale", default="small", help="suite scale (tiny/small/medium)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--graphs", default=None, help="comma-separated suite graph subset"
    )
    parser.add_argument(
        "--schedule", default=None, metavar="SPEC",
        help="pin a sweep schedule on every schedulable kernel row "
        "(push, pull, direction-optimizing, plus :sparse/:dense/:edge "
        "modifiers — see docs/performance.md)",
    )
    parser.add_argument(
        "--batch-sources", type=int, default=8, metavar="S",
        help="lanes the @batched rows stack into one multi-source sweep "
        "(default 8; the looped comparison runs the same S sources)",
    )
    parser.add_argument(
        "--tune-budget", type=float, default=20.0, metavar="PCT",
        help="inaccuracy budget (percent) for the @tuned adaptive rows "
        "(default 20; see docs/tuning.md)",
    )
    parser.add_argument("--out", default="BENCH_PR4.json", help="report JSON path")
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="committed baseline JSON to gate regressions against",
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    parser.add_argument(
        "--min-bc-speedup", type=float, default=0.0,
        help="fail unless the best per-graph BC speedup vs reference meets this",
    )
    parser.add_argument(
        "--record-trajectory", nargs="?", const=str(TRAJECTORY_PATH),
        default=None, metavar="PATH",
        help=f"append this run to the perf trajectory (default {TRAJECTORY_PATH})",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PREFIX",
        help="sample the run: writes PREFIX.collapsed + PREFIX.json "
        "(REPRO_PROFILE env works too; see docs/observability.md)",
    )
    args = parser.parse_args(argv)

    from ..obs import prof as obs_prof

    profiler, profile_prefix = obs_prof.start_from_cli(args.profile)
    graphs = args.graphs.split(",") if args.graphs else None
    with obs_trace.span("perf.bench.run", scale=args.scale):
        report = run_bench(
            args.scale,
            repeats=args.repeats,
            seed=args.seed,
            graphs=graphs,
            schedule=args.schedule,
            batch_sources=args.batch_sources,
            tune_budget=args.tune_budget,
        )
    if profiler is not None:
        obs_prof.write_outputs(profiler, profile_prefix)
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(_format_report(report))
    print(f"wrote {args.out}")
    if args.record_trajectory:
        entry = record_trajectory(report, args.record_trajectory)
        print(
            f"recorded trajectory point (commit {entry['commit']}) "
            f"in {args.record_trajectory}"
        )

    status = 0
    if args.min_bc_speedup > 0:
        best = report.get("best_speedup_vs_reference", {}).get("bc", 0.0)
        if best < args.min_bc_speedup:
            print(
                f"FAIL: best per-graph BC speedup {best:.2f}x is below the "
                f"required {args.min_bc_speedup:.2f}x"
            )
            status = 1
        else:
            print(
                f"best per-graph BC speedup {best:.2f}x meets the "
                f"{args.min_bc_speedup:.2f}x floor"
            )
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_regressions(
            report, baseline, max_regression=args.max_regression
        )
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            status = 1
        else:
            print(
                f"no kernel regressed beyond {args.max_regression:.2f}x of "
                f"{args.check}"
            )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
