"""Flat edge arrays shared across Runners by graph fingerprint.

Every :class:`~repro.algorithms.common.Runner` needs the graph's edges
in flat COO-ish form (``src``/``dst``/``weights``/``out_deg``) for
vectorized relaxation.  A harness sweep builds one Runner per
(algorithm × source) on the *same* graph, and each used to rebuild these
arrays from scratch — an O(E) ``edge_sources().astype`` plus weight and
degree copies per run.  :func:`shared_edge_view` memoizes the views in a
small LRU keyed on the graph's content fingerprint, so rebuilding
happens once per distinct graph per process.

The arrays are read-only by convention (like :class:`CSRGraph` itself);
nothing in the solvers writes to an :class:`EdgeView`.  Hits and misses
are counted on ``perf.edgeview.{hit,miss}``.
"""

from __future__ import annotations

import numpy as np

from ..cache.lru import LRUCache
from ..graphs.csr import CSRGraph

__all__ = ["EdgeView", "shared_edge_view", "edge_view_cache"]


class EdgeView:
    """Cached flat edge arrays of a CSR graph for vectorized relaxation."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.src = graph.edge_sources().astype(np.int64)
        self.dst = graph.indices.astype(np.int64)
        self.weights = graph.effective_weights()
        self.out_deg = graph.out_degrees().astype(np.float64)


#: distinct graphs whose views stay resident; a table sweep touches a
#: handful of graphs × techniques, so a small bound is plenty
EDGE_VIEW_CACHE_SIZE = 32

_views = LRUCache(EDGE_VIEW_CACHE_SIZE, metric_prefix="perf.edgeview")


def edge_view_cache() -> LRUCache:
    """The process-wide EdgeView cache (exposed for tests/inspection)."""
    return _views


def shared_edge_view(graph: CSRGraph) -> EdgeView:
    """The memoized :class:`EdgeView` of ``graph``.

    Keyed on :meth:`CSRGraph.fingerprint` — content, not identity — so
    two equal graphs (e.g. a cached plan rebuilt from disk) share one
    view, and a reused ``id()`` can never alias a different graph.
    """
    key = graph.fingerprint()
    view = _views.get(key)
    if view is None:
        view = EdgeView(graph)
        _views.put(key, view)
    return view
