"""Flat edge arrays shared across Runners by graph fingerprint.

Every :class:`~repro.algorithms.common.Runner` needs the graph's edges
in flat COO-ish form (``src``/``dst``/``weights``/``out_deg``) for
vectorized relaxation.  A harness sweep builds one Runner per
(algorithm × source) on the *same* graph, and each used to rebuild these
arrays from scratch — an O(E) ``edge_sources().astype`` plus weight and
degree copies per run.  :func:`shared_edge_view` memoizes the views in a
small LRU keyed on the graph's content fingerprint, so rebuilding
happens once per distinct graph per process.

The arrays are read-only by convention (like :class:`CSRGraph` itself);
nothing in the solvers writes to an :class:`EdgeView`.  Hits and misses
are counted on ``perf.edgeview.{hit,miss}``.

:class:`PullEdgeView` is the bottom-up companion used by schedules that
pick ``direction="pull"`` (:mod:`repro.perf.schedule`): the reverse-CSR
view of the graph plus the flat edge arrays in *pull order* (sorted by
destination, then source) and the permutation mapping each pull record
back to its forward edge id.  Building it costs one lexsort, so it is
memoized the same way (``perf.pullview.{hit,miss}``).
"""

from __future__ import annotations

import numpy as np

from ..cache.lru import LRUCache
from ..graphs.csr import CSRGraph
from .gather import SweepExpansion, expand_frontier

__all__ = [
    "EdgeView",
    "PullEdgeView",
    "shared_edge_view",
    "shared_pull_view",
    "edge_view_cache",
    "pull_view_cache",
]


class EdgeView:
    """Cached flat edge arrays of a CSR graph for vectorized relaxation."""

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.src = graph.edge_sources().astype(np.int64)
        self.dst = graph.indices.astype(np.int64)
        self.weights = graph.effective_weights()
        self.out_deg = graph.out_degrees().astype(np.float64)


class PullEdgeView:
    """Reverse-CSR view of a graph for bottom-up (pull) sweeps.

    Pull sweeps iterate destinations and gather from their in-neighbors,
    so the records here are the same edges as the forward
    :class:`EdgeView`, re-sorted into **pull order**: destination
    ascending, source ascending within a destination, original storage
    position breaking remaining ties (``np.lexsort`` is stable).  That
    is exactly the record order of ``graph.reverse()``, but built
    manually so the sort permutation survives as :attr:`fwd_eid` — the
    forward edge id of every pull record.  Kernels whose float scatter
    order matters (BC) sort gathered records by ``fwd_eid`` to recover
    the exact global CSR edge order of the push path, which is what
    makes pull results byte-identical to push on *any* graph, including
    ones whose adjacency lists are not neighbor-sorted.

    Attributes
    ----------
    forward:
        the shared forward :class:`EdgeView` (same underlying graph).
    rev:
        the reverse graph as a :class:`CSRGraph` — node ``v``'s
        adjacency lists its in-neighbors — handed to
        ``ExecutionContext.charge(..., subgraph=rev)`` so the cost
        model charges the gather a pull kernel actually performs.
    src / dst / weights:
        flat edge arrays in pull order; ``src`` is the forward source
        (the gathered-from neighbor), ``dst`` the forward destination
        (the gathering node, ascending).
    fwd_eid:
        ``int64`` array mapping pull record ``i`` to its forward edge
        position.
    out_deg:
        *forward* out-degrees as ``float64`` (PageRank-style kernels
        divide by the source's out-degree regardless of direction).
    """

    def __init__(self, graph: CSRGraph) -> None:
        self.graph = graph
        self.forward = shared_edge_view(graph)
        fsrc, fdst = self.forward.src, self.forward.dst
        # stable lexsort, primary key fdst: identical permutation to the
        # one CSRGraph.from_edges applies inside graph.reverse()
        perm = np.lexsort((fsrc, fdst))
        self.fwd_eid = perm.astype(np.int64, copy=False)
        self.src = fsrc[perm]
        self.dst = fdst[perm]
        self.weights = self.forward.weights[perm]
        self.out_deg = self.forward.out_deg
        n = graph.num_nodes
        counts = np.bincount(self.dst, minlength=n)
        offsets = np.zeros(n + 1, dtype=graph.offsets.dtype)
        np.cumsum(counts, out=offsets[1:])
        # already validated via the forward graph; skip the O(E) check
        self.rev = CSRGraph(
            offsets,
            self.src.astype(graph.indices.dtype),
            self.weights,
            validate=False,
        )
        self._full: SweepExpansion | None = None

    def full_expansion(self) -> SweepExpansion:
        """Cached all-nodes expansion of the reverse graph.

        Topology-driven pull sweeps (PageRank power iteration, dense
        SSSP relaxation) gather every edge every iteration; the
        expansion is graph-constant, so it is built once per view.
        """
        if self._full is None:
            self._full = expand_frontier(
                self.rev.offsets,
                self.rev.indices,
                np.arange(self.graph.num_nodes, dtype=np.int64),
            )
        return self._full


#: distinct graphs whose views stay resident; a table sweep touches a
#: handful of graphs × techniques, so a small bound is plenty
EDGE_VIEW_CACHE_SIZE = 32

_views = LRUCache(EDGE_VIEW_CACHE_SIZE, metric_prefix="perf.edgeview")
_pull_views = LRUCache(EDGE_VIEW_CACHE_SIZE, metric_prefix="perf.pullview")


def pull_view_cache() -> LRUCache:
    """The process-wide PullEdgeView cache (exposed for tests)."""
    return _pull_views


def shared_pull_view(graph: CSRGraph) -> PullEdgeView:
    """The memoized :class:`PullEdgeView` of ``graph``.

    Keyed on :meth:`CSRGraph.fingerprint` like :func:`shared_edge_view`,
    so every runner pulling on the same graph shares one reverse view
    and one cached full expansion.
    """
    key = graph.fingerprint()
    view = _pull_views.get(key)
    if view is None:
        view = PullEdgeView(graph)
        _pull_views.put(key, view)
    return view


def edge_view_cache() -> LRUCache:
    """The process-wide EdgeView cache (exposed for tests/inspection)."""
    return _views


def shared_edge_view(graph: CSRGraph) -> EdgeView:
    """The memoized :class:`EdgeView` of ``graph``.

    Keyed on :meth:`CSRGraph.fingerprint` — content, not identity — so
    two equal graphs (e.g. a cached plan rebuilt from disk) share one
    view, and a reused ``id()`` can never alias a different graph.
    """
    key = graph.fingerprint()
    view = _views.get(key)
    if view is None:
        view = EdgeView(graph)
        _views.put(key, view)
    return view
