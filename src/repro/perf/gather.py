"""O(frontier)-work CSR gather primitives.

The ``indptr``-ragged-gather idiom was proven inline in ``bfs.py`` and
``scc.py``: expand a frontier's adjacency lists by repeating each node's
CSR slice start and adding a per-slice ``arange``.  This module makes it
the single public primitive every solver hot path goes through, so the
host work of a simulated sweep is proportional to the frontier's edges —
matching what the cost model charges — instead of a full-edge scan.

Ordering contract (load-bearing for byte-identical results): for a
frontier sorted ascending, :func:`frontier_edges` yields edge records in
global CSR edge order — exactly the order a full-edge boolean mask would
have produced.  Scatter updates (``np.add.at`` / ``np.minimum.at``)
applied to the gathered records therefore accumulate in the same order
as the pre-engine full-scan code, and float results match bit for bit.

:class:`LevelBuckets` is the backward-pass companion: one stable argsort
of the edge array by a per-edge integer key (BC uses the source's BFS
level) buys O(1) lookup of each level's contiguous edge-id bucket,
replacing a full-edge mask per level with a slice per level.
"""

from __future__ import annotations

import numpy as np

from ..graphs.properties import ragged_arange
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["LevelBuckets", "SweepExpansion", "expand_frontier", "frontier_edges"]


class SweepExpansion:
    """One sweep's CSR expansion, precomputed by the solver.

    The cost model expands the active list's adjacency the same way the
    gather engine does; handing it the solver's arrays via
    :meth:`repro.gpusim.kernel.ExecutionContext.charge` skips that
    duplicated work (charges are identical — only host time changes).

    ``frontier`` must be in the context's processing order; ``epos`` must
    be its adjacency's global edge positions grouped per node, ``step``
    the within-adjacency ordinal, ``degs``/``e_dst`` the matching
    degrees/destinations.  ``e_src`` is solver-side convenience and may
    be ``None``.
    """

    __slots__ = ("frontier", "degs", "step", "epos", "e_src", "e_dst")

    def __init__(
        self,
        frontier: np.ndarray,
        degs: np.ndarray,
        step: np.ndarray,
        epos: np.ndarray,
        e_src: np.ndarray | None,
        e_dst: np.ndarray,
    ) -> None:
        self.frontier = frontier
        self.degs = degs
        self.step = step
        self.epos = epos
        self.e_src = e_src
        self.e_dst = e_dst


def frontier_edges(
    offsets: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand ``frontier``'s out-edges from a CSR structure.

    Returns ``(e_src, e_dst, epos)``: the source node id, destination
    node id, and global edge-array position of every out-edge of every
    frontier node, in frontier order (global CSR edge order when the
    frontier is sorted ascending).  Work and memory are
    O(frontier + frontier-edges); the full edge array is never scanned.

    ``epos`` indexes parallel per-edge arrays (weights, per-edge levels),
    so callers can gather any edge attribute without re-deriving the
    positions.
    """
    exp = expand_frontier(offsets, indices, frontier)
    return exp.e_src, exp.e_dst, exp.epos


def expand_frontier(
    offsets: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
) -> SweepExpansion:
    """Like :func:`frontier_edges`, returning the full expansion record.

    The :class:`SweepExpansion` carries everything the cost model needs,
    so solvers can pass it to ``ExecutionContext.charge`` and avoid
    expanding the same frontier twice per sweep.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    if obs_trace.get_tracer() is not None:
        with obs_trace.span("perf.gather", frontier=int(frontier.size)) as sp:
            exp = _expand(offsets, indices, frontier)
            sp.set(edges=int(exp.epos.size))
        return exp
    return _expand(offsets, indices, frontier)


def _expand(
    offsets: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> SweepExpansion:
    starts = offsets[frontier].astype(np.int64)
    degs = (offsets[frontier + 1] - offsets[frontier]).astype(np.int64)
    total = int(degs.sum())
    obs_metrics.counter("perf.gather.calls").inc()
    obs_metrics.counter("perf.gather.edges").inc(total)
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return SweepExpansion(frontier, degs, e, e, e, e)
    step = ragged_arange(degs)
    epos = np.repeat(starts, degs) + step
    e_dst = indices[epos].astype(np.int64, copy=False)
    return SweepExpansion(frontier, degs, step, epos, np.repeat(frontier, degs), e_dst)


class LevelBuckets:
    """Edge ids bucketed by an integer per-edge key (e.g. source level).

    Built once per BC source from ``level[src]``: a single stable argsort
    groups the edge ids of each key value into a contiguous run, and
    :meth:`at` returns the run for one key as an ascending edge-id array
    — the same ids, in the same order, that the pre-engine code obtained
    from a full-edge ``(key == k)`` mask, at O(bucket) instead of O(E)
    per lookup.

    Keys may include negative sentinels (unvisited sources); those edges
    land in buckets :meth:`at` is simply never asked for.
    """

    def __init__(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys)
        with obs_trace.span("perf.gather.bucket_build", edges=int(keys.size)):
            # stable sort keeps edge ids ascending within each key's
            # run, preserving the full-mask iteration order
            self._order = np.argsort(keys, kind="stable")
            self._sorted = keys[self._order]
        obs_metrics.counter("perf.gather.bucket_builds").inc()

    def at(self, key: int) -> np.ndarray:
        """Ascending edge ids whose key equals ``key`` (may be empty)."""
        lo = int(np.searchsorted(self._sorted, key, side="left"))
        hi = int(np.searchsorted(self._sorted, key, side="right"))
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        # stable sort ⇒ ids within one key's run are already ascending
        return self._order[lo:hi]
