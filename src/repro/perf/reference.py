"""Pre-engine reference paths, kept for equivalence proofs and benchmarks.

The frontier-gather engine's hard constraint is *byte-identical outputs
and identical simulated-cycle charges*: only host wall-clock may change.
This module preserves the pre-refactor host paths —

* full-array snapshot change detection in the SSSP/WCC relax callbacks
  (``dist.copy()`` / ``labels.copy()`` per sweep);
* the ``values.copy()`` + ``array_equal`` fixed-point loop;
* BC's per-level ``np.isin`` full-edge scan (via
  ``betweenness_centrality(engine="reference")``)

— so the equivalence suite (``tests/test_perf_equivalence.py``) can
assert the engine matches them bit for bit, and ``python -m repro perf``
can report the engine's wall-clock speedup over them on the same inputs.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.common import (
    MAX_ITERATIONS,
    AlgorithmResult,
    EdgeView,
    Runner,
    plan_for,
)
from ..core.pipeline import ExecutionPlan
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C

__all__ = [
    "bc_reference",
    "fixed_point_reference",
    "sssp_reference",
    "sssp_relax_reference",
    "wcc_reference",
    "wcc_relax_reference",
]


def sssp_relax_reference(edges: EdgeView, dist: np.ndarray) -> bool:
    """Pre-engine SSSP relax: full ``dist`` snapshot per sweep."""
    src, dst, w = edges.src, edges.dst, edges.weights
    finite = np.isfinite(dist[src])
    if not finite.any():
        return False
    cand = dist[src[finite]] + w[finite]
    before = dist.copy()
    np.minimum.at(dist, dst[finite], cand)
    return bool(np.any(dist < before))


def wcc_relax_reference(edges: EdgeView, labels: np.ndarray) -> bool:
    """Pre-engine WCC relax: full ``labels`` snapshot per sweep."""
    src, dst = edges.src, edges.dst
    before = labels.copy()
    np.minimum.at(labels, dst, labels[src])
    np.minimum.at(labels, src, labels[dst])
    return bool(np.any(labels < before))


def fixed_point_reference(
    runner: Runner,
    values: np.ndarray,
    relax,
    *,
    max_iterations: int = MAX_ITERATIONS,
    improvement_atol: float = 0.5,
    improvement_rtol: float = 0.1,
) -> int:
    """Pre-engine fixed point: snapshot + ``array_equal`` per iteration.

    Mirrors :meth:`Runner.fixed_point` exactly except for the exact-plan
    convergence test, which re-derives change from a full snapshot
    instead of trusting the relax callback's flag.
    """
    if max_iterations < 1:
        raise AlgorithmError("max_iterations must be >= 1")
    approximate = runner.plan.has_replicas
    envelope = values.copy() if approximate else None
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        snapshot = values.copy()
        runner.sweep(values, relax, merge=False)
        if approximate:
            assert envelope is not None
            margin = improvement_atol + improvement_rtol * np.where(
                np.isfinite(envelope), np.abs(envelope), 0.0
            )
            improved = values < envelope - margin
            np.minimum(envelope, values, out=envelope)
            runner.confluence(values)
            np.minimum(envelope, values, out=envelope)
            if not improved.any():
                break
        elif np.array_equal(values, snapshot):
            break
        runner.cluster_rounds(values, relax)
    return iterations


def sssp_reference(
    graph_or_plan: CSRGraph | ExecutionPlan,
    source: int,
    *,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """SSSP through the reference relax + reference fixed point."""
    plan = plan_for(graph_or_plan)
    if not 0 <= source < plan.num_original:
        raise AlgorithmError(
            f"source {source} out of range for n={plan.num_original}"
        )
    runner = Runner(plan, device)
    init = np.full(plan.num_original, np.inf)
    init[source] = 0.0
    dist = plan.lift(init, fill=np.inf)
    iterations = fixed_point_reference(
        runner,
        dist,
        sssp_relax_reference,
        max_iterations=min(MAX_ITERATIONS, 4 * plan.graph.num_nodes + 50),
    )
    return AlgorithmResult(
        values=plan.lower(dist), metrics=runner.metrics, iterations=iterations
    )


def wcc_reference(
    graph_or_plan: CSRGraph | ExecutionPlan,
    *,
    device: DeviceConfig = K40C,
) -> AlgorithmResult:
    """WCC through the reference relax + reference fixed point."""
    plan = plan_for(graph_or_plan)
    runner = Runner(plan, device)
    init = np.arange(plan.num_original, dtype=np.float64)
    labels = plan.lift(init, fill=np.inf)
    iterations = fixed_point_reference(
        runner,
        labels,
        wcc_relax_reference,
        max_iterations=min(MAX_ITERATIONS, plan.graph.num_nodes + 10),
        improvement_atol=0.5,
        improvement_rtol=0.0,
    )
    values = plan.lower(labels)
    finite = values[np.isfinite(values)]
    num_components = int(np.unique(finite).size)
    return AlgorithmResult(
        values=values,
        metrics=runner.metrics,
        iterations=iterations,
        aux={"num_components": num_components},
    )


def bc_reference(
    graph_or_plan: CSRGraph | ExecutionPlan, **kwargs
) -> AlgorithmResult:
    """BC through the pre-engine ``np.isin`` full-edge-scan path."""
    return betweenness_centrality(graph_or_plan, engine="reference", **kwargs)
