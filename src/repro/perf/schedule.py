"""Sweep schedules: direction, frontier representation, load balance.

GraphIt-style algorithm/schedule decoupling for the sweep-based kernels
(BFS, BC forward/backward, SSSP, PageRank and the Gunrock baselines):
the *algorithm* says what a sweep computes, the *schedule* says how the
simulated kernel executes it.  Each kernel consults its schedule once
per iteration and receives a :class:`SweepDecision` fixing three
independent choices:

* ``direction`` — ``"push"`` expands the frontier's out-edges (the
  engine's historical behaviour); ``"pull"`` gathers over the reverse
  CSR view (:func:`repro.perf.edgeshare.shared_pull_view`), so the cost
  model charges the edges a bottom-up kernel would actually read;
* ``frontier`` — ``"sparse"`` builds the next frontier from the freshly
  touched ids (index-array style), ``"dense"`` rescans the value array
  (bitmap style); ``"auto"`` keeps each kernel's built-in heuristic;
* ``partition`` — ``"vertex"`` assigns one warp lane per active node
  (degree divergence, the classic vertex-balanced kernel),
  ``"edge"`` assigns one lane per edge record (perfectly load-balanced,
  extra per-edge source reads) — see
  :func:`repro.gpusim.costmodel.charge_sweep`.

Schedules never change algorithm *values*: a pull sweep gathers exactly
the push sweep's edge set from the reverse view and (where float
accumulation order matters) reorders it back into global CSR edge order
via the carried forward edge ids, so results stay byte-identical —
``tests/test_perf_schedule.py`` and the ``differential:schedules``
verify oracles hold that in place.  Only the *charges* differ, and they
stay bit-faithful per schedule: a pull sweep charges its actual
gathered (reverse) adjacency, an edge-balanced sweep its actual lane
assignment.

Policies
--------

:class:`FixedPush` is the do-nothing default (identical to passing no
schedule at all).  :class:`Explicit` pins any combination — ``repro
perf`` bench rows and tune-style sweeps use it to compare fixed
schedules.  :class:`DirectionOptimizing` is Beamer's classic
direction-optimizing traversal: switch push→pull when the frontier's
out-edges exceed ``unexplored_edges / alpha``, and pull→push when the
frontier shrinks below ``num_nodes / beta`` (α=15, β=18 hysteresis —
the constants from the original BFS paper, which generations of GPU
frameworks inherited).

Decisions are pure functions of the sweep stats plus the *previous*
decision (the hysteresis state) — a ``Schedule`` object itself is
immutable and safe to share across threads and kernels; each kernel
threads its own ``prev`` through the loop.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = [
    "SweepDecision",
    "Schedule",
    "FixedPush",
    "Explicit",
    "DirectionOptimizing",
    "schedule_for",
    "DIRECTIONS",
    "FRONTIERS",
    "PARTITIONS",
]

DIRECTIONS = ("push", "pull")
FRONTIERS = ("auto", "sparse", "dense")
PARTITIONS = ("vertex", "edge")


class SweepDecision:
    """One sweep's resolved (direction, frontier, partition) triple.

    Instances are interned: each distinct triple exists once per
    process, so per-sweep decision churn allocates nothing and
    hysteresis comparisons are identity-cheap.
    """

    __slots__ = ("direction", "frontier", "partition")
    _interned: dict[tuple[str, str, str], "SweepDecision"] = {}

    def __new__(
        cls,
        direction: str = "push",
        frontier: str = "auto",
        partition: str = "vertex",
    ) -> "SweepDecision":
        if direction not in DIRECTIONS:
            raise SimulationError(
                f"unknown direction {direction!r}; choose from {DIRECTIONS}"
            )
        if frontier not in FRONTIERS:
            raise SimulationError(
                f"unknown frontier {frontier!r}; choose from {FRONTIERS}"
            )
        if partition not in PARTITIONS:
            raise SimulationError(
                f"unknown partition {partition!r}; choose from {PARTITIONS}"
            )
        key = (direction, frontier, partition)
        hit = cls._interned.get(key)
        if hit is not None:
            return hit
        self = super().__new__(cls)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "frontier", frontier)
        object.__setattr__(self, "partition", partition)
        cls._interned[key] = self
        return self

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("SweepDecision is immutable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepDecision({self.direction}, {self.frontier}, "
            f"{self.partition})"
        )


class Schedule:
    """Base policy: maps per-sweep frontier stats to a decision.

    ``decide`` is pure — all hysteresis state lives in the ``prev``
    decision the caller threads through its own loop — so one schedule
    instance can drive any number of concurrent kernels.
    """

    name = "schedule"

    def decide(
        self,
        *,
        frontier_size: int,
        frontier_edges: int,
        num_nodes: int,
        num_edges: int,
        unexplored_edges: int | None = None,
        prev: SweepDecision | None = None,
    ) -> SweepDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FixedPush(Schedule):
    """Always push, kernel-default frontier, vertex-balanced.

    Byte-for-byte the no-schedule behaviour; exists so bench rows and
    differential checks can name the baseline explicitly.
    """

    name = "fixed-push"
    _DECISION = SweepDecision("push", "auto", "vertex")

    def decide(self, **_stats) -> SweepDecision:
        return self._DECISION


class Explicit(Schedule):
    """Pin every choice — the bench/tune building block.

    ``Explicit("pull")`` pins bottom-up sweeps, ``Explicit("push",
    partition="edge")`` pins edge-balanced top-down, etc.  The decision
    is constant, so pinned runs are exactly reproducible row specs.
    """

    def __init__(
        self,
        direction: str = "push",
        *,
        frontier: str = "auto",
        partition: str = "vertex",
    ) -> None:
        self._decision = SweepDecision(direction, frontier, partition)
        self.name = "-".join(
            p
            for p in (
                direction,
                frontier if frontier != "auto" else "",
                partition if partition != "vertex" else "",
            )
            if p
        )

    @property
    def decision(self) -> SweepDecision:
        return self._decision

    def decide(self, **_stats) -> SweepDecision:
        return self._decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Explicit({self._decision!r})"


class DirectionOptimizing(Schedule):
    """Beamer's α/β direction-optimizing policy.

    Top-down (push) until the frontier's out-edges exceed
    ``unexplored_edges / alpha`` — a dense frontier about to touch most
    of the remaining graph — then bottom-up (pull) until the frontier
    shrinks below ``num_nodes / beta``, then push again.  When the
    caller cannot cheaply track ``unexplored_edges`` it defaults to the
    total edge count, which only makes the switch more conservative.

    While pulling, the frontier representation is ``"dense"`` (the
    bottom-up kernel scans candidate nodes, classic bitmap style);
    while pushing it stays ``"auto"``.  ``partition`` applies to every
    sweep either way.
    """

    def __init__(
        self,
        *,
        alpha: float = 15.0,
        beta: float = 18.0,
        partition: str = "vertex",
    ) -> None:
        if alpha <= 0 or beta <= 0:
            raise SimulationError("alpha and beta must be positive")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._push = SweepDecision("push", "auto", partition)
        self._pull = SweepDecision("pull", "dense", partition)
        self.name = "direction-optimizing"

    def decide(
        self,
        *,
        frontier_size: int,
        frontier_edges: int,
        num_nodes: int,
        num_edges: int,
        unexplored_edges: int | None = None,
        prev: SweepDecision | None = None,
    ) -> SweepDecision:
        remaining = num_edges if unexplored_edges is None else unexplored_edges
        if prev is not None and prev.direction == "pull":
            # hysteresis: stay bottom-up until the frontier thins out
            if frontier_size < num_nodes / self.beta:
                return self._push
            return self._pull
        if frontier_edges > remaining / self.alpha:
            return self._pull
        return self._push

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirectionOptimizing(alpha={self.alpha}, beta={self.beta}, "
            f"partition={self._push.partition!r})"
        )


#: the schedule semantics of passing ``schedule=None`` to a kernel
FIXED_PUSH = FixedPush()


def schedule_for(spec) -> "Schedule | None":
    """Parse a schedule spec (CLI/bench row syntax) into a policy.

    ``None`` and ``"fixed-push"``/``"push"`` mean the default push
    behaviour; ``"pull"`` pins bottom-up sweeps;
    ``"direction-optimizing"`` (aliases ``"do"``, ``"diropt"``) enables
    the α/β policy.  Modifiers join with ``:`` — ``"push:edge"`` pins
    edge-balanced partitioning, ``"pull:sparse"`` a sparse frontier,
    ``"diropt:edge"`` edge-balanced direction optimizing.  A
    :class:`Schedule` instance passes through unchanged.
    """
    if spec is None or isinstance(spec, Schedule):
        return spec
    parts = [p for p in str(spec).strip().lower().split(":") if p]
    if not parts:
        raise SimulationError(f"empty schedule spec {spec!r}")
    head, mods = parts[0], parts[1:]
    frontier = "auto"
    partition = "vertex"
    for mod in mods:
        if mod in ("sparse", "dense"):
            frontier = mod
        elif mod in PARTITIONS:
            partition = mod
        else:
            raise SimulationError(
                f"unknown schedule modifier {mod!r} in {spec!r}"
            )
    if head in ("push", "fixed-push"):
        if frontier == "auto" and partition == "vertex":
            return FIXED_PUSH
        return Explicit("push", frontier=frontier, partition=partition)
    if head == "pull":
        return Explicit("pull", frontier=frontier, partition=partition)
    if head in ("direction-optimizing", "diropt", "do"):
        if frontier != "auto":
            raise SimulationError(
                "direction-optimizing picks its own frontier representation"
            )
        return DirectionOptimizing(partition=partition)
    raise SimulationError(
        f"unknown schedule {spec!r}; use push, pull, or direction-optimizing"
    )
