"""Reusable scratch buffers for solver hot paths.

Every fixed-point sweep used to allocate (and garbage-collect) fresh
O(V)/O(E) arrays just to detect change — ``dist.copy()`` per SSSP sweep,
``labels.copy()`` per WCC sweep, ``values.copy()`` per harness
iteration.  The :class:`WorkspacePool` keeps one named buffer per call
site and hands out right-sized views, so steady-state sweeps allocate
nothing; a buffer only (re)grows when a larger graph comes through.

Lifetime rules (see ``docs/performance.md``):

* a borrowed view is valid until the *same key* is borrowed again —
  callers must consume it before re-borrowing, and never store it;
* distinct call sites use distinct keys, so nesting different sites is
  safe; a call site that must survive *reentrant* use (nested runners in
  the serve layer can re-enter a relax while an outer frame still holds
  its snapshot) wraps the borrow in :meth:`WorkspacePool.lease`, which
  detects the reentry and hands the inner frame a throwaway allocation
  instead of aliasing the outer frame's view;
* buffers are per-thread (``threading.local``) — worker processes and
  threads never share or corrupt each other's scratch space.  This is
  the pool's *concurrency contract*, audited for the multi-threaded
  serve layer: every borrow goes through :meth:`WorkspacePool._buffers`,
  which only ever touches the calling thread's ``threading.local`` slot,
  so N server workers sweeping concurrently get N independent buffer
  sets with no locking on the hot path (the thread-hammer regression
  test in ``tests/test_serve_threadsafety.py`` holds this in place).

``perf.workspace.reuse`` / ``perf.workspace.alloc`` counters record how
often the pool served a sweep without touching the allocator.

:func:`scatter_min_changed` is the touched-destinations change-detection
idiom (first proven in ``baselines/operators.py``) lifted into the
shared engine: instead of snapshotting the whole value array around a
scatter-min, it snapshots only the values at the touched indices — O(k)
for k touched edges — and reports exactly which of them improved.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = ["WorkspacePool", "pool", "reset_pool", "scatter_min_changed"]


class WorkspacePool:
    """Named, growable scratch buffers handing out right-sized views."""

    def __init__(self) -> None:
        self._local = threading.local()

    def _buffers(self) -> dict:
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = {}
        return buffers

    def _held(self) -> set:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = set()
        return held

    def borrow(self, key: str, size: int, dtype=np.float64) -> np.ndarray:
        """A length-``size`` view of the pooled buffer for ``key``.

        Contents are unspecified (whatever the previous borrow left);
        callers overwrite before reading.  The view is invalidated by the
        next ``borrow`` of the same key.
        """
        dtype = np.dtype(dtype)
        buffers = self._buffers()
        buf = buffers.get(key)
        if buf is None or buf.dtype != dtype or buf.size < size:
            capacity = max(size, buf.size if buf is not None else 0)
            buf = buffers[key] = np.empty(capacity, dtype=dtype)
            obs_metrics.counter("perf.workspace.alloc").inc()
        else:
            obs_metrics.counter("perf.workspace.reuse").inc()
        return buf[:size]

    @contextmanager
    def lease(self, key: str, size: int, dtype=np.float64):
        """A scoped :meth:`borrow` that survives reentrant use.

        While the ``with`` block runs, ``key`` is marked *held* on this
        thread; a nested lease of the same key (a relax re-entered
        through a nested runner, as the serve layer's handlers can do)
        gets a fresh throwaway allocation instead of a view aliasing the
        outer frame's buffer — the outer snapshot stays intact, at the
        cost of one allocation counted on ``perf.workspace.reentrant``.
        The pooled view itself is only valid inside the block.
        """
        held = self._held()
        if key in held:
            obs_metrics.counter("perf.workspace.reentrant").inc()
            yield np.empty(size, dtype=np.dtype(dtype))
            return
        held.add(key)
        try:
            yield self.borrow(key, size, dtype)
        finally:
            held.discard(key)

    def clear(self) -> None:
        """Drop this thread's buffers (tests / memory pressure)."""
        self._buffers().clear()
        self._held().clear()


_pool = WorkspacePool()


def pool() -> WorkspacePool:
    """The process-wide default pool (one buffer set per thread)."""
    return _pool


def reset_pool() -> None:
    """Drop the calling thread's pooled buffers."""
    _pool.clear()


def scatter_min_changed(
    values: np.ndarray,
    idx: np.ndarray,
    cand: np.ndarray,
    *,
    key: str = "engine.scatter_min",
) -> np.ndarray:
    """``np.minimum.at(values, idx, cand)`` + touched-only change mask.

    Returns a boolean mask parallel to ``idx`` marking the records whose
    destination value strictly improved (every record pointing at an
    improved destination is marked, as the operator-API relax functor
    contract requires).  Only the touched destinations are snapshotted —
    never the whole array.  The snapshots are leased, so a reentrant
    sweep with the same ``key`` (nested runners) cannot corrupt an outer
    frame's change detection.  The returned mask lives in pooled scratch
    space: treat it as ephemeral (consume before the same ``key`` is
    borrowed again).
    """
    p = pool()
    with p.lease(key + ".before", idx.size, values.dtype) as before:
        np.take(values, idx, out=before)
        np.minimum.at(values, idx, cand)
        with p.lease(key + ".after", idx.size, values.dtype) as after:
            np.take(values, idx, out=after)
            changed = p.borrow(key + ".changed", idx.size, np.bool_)
            np.less(after, before, out=changed)
    return changed
