"""Related-work approximation methods (paper §6), for comparison benches.

Graffix is *not* the only way to trade accuracy for speed on graphs; the
paper positions itself against algorithm-specific approximations.  This
package implements the cited representative so the trade-off spaces can
be compared under one cost model:

* :mod:`.landmarks` — Gubichev et al. (CIKM 2010) landmark-based
  shortest-path estimation: precompute distances to a few landmarks,
  answer any query by triangulation.  Algorithm-*specific* (SSSP only)
  where Graffix is algorithm-oblivious — which is exactly the contrast
  the paper draws.
"""

from .landmarks import LandmarkIndex, build_landmark_index

__all__ = ["LandmarkIndex", "build_landmark_index"]
