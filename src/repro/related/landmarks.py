"""Landmark-based approximate shortest paths (Gubichev et al., CIKM 2010).

The paper's §6 cites this as the representative *algorithm-specific*
approximation: "As precomputation, the shortest paths w.r.t. few landmark
nodes are computed for every node.  The distance values of the query
nodes w.r.t. a selected landmark node are combined to find the
approximate distances."

Estimate: ``d(s, v) ≈ min over landmarks L of  d(s, L) + d(L, v)`` — an
upper bound by the triangle inequality, exact whenever a shortest path
passes through a landmark.  Precomputation is ``2·|L|`` SSSP runs (one on
the graph, one on its transpose per landmark), charged on the simulator
like any other kernel work so the amortization math is comparable with
Graffix's preprocessing.

The contrast the comparison bench draws: landmarks answer *only*
distance queries (and degrade on road networks unless many landmarks are
used), while Graffix's transforms accelerate every vertex-centric
algorithm on the same preprocessed graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.sssp import sssp
from ..errors import AlgorithmError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..gpusim.metrics import SimMetrics

__all__ = ["LandmarkIndex", "build_landmark_index", "pick_landmarks"]


def pick_landmarks(graph: CSRGraph, count: int, *, seed: int = 0) -> np.ndarray:
    """Degree-proportional landmark selection (the paper's cited work
    found high-degree landmarks the most effective single heuristic)."""
    if count < 1:
        raise AlgorithmError("need at least one landmark")
    count = min(count, graph.num_nodes)
    degs = graph.out_degrees() + graph.in_degrees()
    order = np.argsort(-degs, kind="stable")
    return order[:count].astype(np.int64)


@dataclass
class LandmarkIndex:
    """Precomputed landmark distances.

    ``to_landmark[i, v]``  = d(v, landmark_i)  (via the transpose graph);
    ``from_landmark[i, v]`` = d(landmark_i, v).
    """

    landmarks: np.ndarray
    from_landmark: np.ndarray
    to_landmark: np.ndarray
    preprocess_metrics: SimMetrics

    @property
    def num_landmarks(self) -> int:
        return int(self.landmarks.size)

    def estimate_from(self, source: int) -> np.ndarray:
        """Approximate distances from ``source`` to every node.

        ``O(|L| · n)`` arithmetic, no graph traversal — this is the whole
        point of the method (and also why its accuracy is capped).
        """
        n = self.from_landmark.shape[1]
        if not 0 <= source < n:
            raise AlgorithmError(f"source {source} out of range")
        # d(source, L_i) + d(L_i, v), minimized over i
        s_to_l = self.to_landmark[:, source][:, None]  # (L, 1)
        est = np.min(s_to_l + self.from_landmark, axis=0)
        est[source] = 0.0
        return est

    def estimate(self, source: int, target: int) -> float:
        """Point-to-point estimate (the cited work's primary query)."""
        return float(self.estimate_from(source)[target])


def build_landmark_index(
    graph: CSRGraph,
    num_landmarks: int = 8,
    *,
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> LandmarkIndex:
    """Run the ``2·|L|`` SSSP precomputations and assemble the index."""
    landmarks = pick_landmarks(graph, num_landmarks, seed=seed)
    rev = graph.reverse()
    n = graph.num_nodes
    from_l = np.full((landmarks.size, n), np.inf)
    to_l = np.full((landmarks.size, n), np.inf)
    metrics = SimMetrics(device=device)
    for i, lm in enumerate(landmarks.tolist()):
        fwd = sssp(graph, lm, device=device)
        bwd = sssp(rev, lm, device=device)
        from_l[i] = fwd.values
        to_l[i] = bwd.values
        metrics.merge(fwd.metrics)
        metrics.merge(bwd.metrics)
    return LandmarkIndex(
        landmarks=landmarks,
        from_landmark=from_l,
        to_landmark=to_l,
        preprocess_metrics=metrics,
    )
