"""Fault-tolerant experiment execution.

The paper's evaluation is hundreds of independent (graph x algorithm x
technique x baseline) cells; this package keeps a sweep alive through
partial failure instead of losing completed work:

* :mod:`.journal` — append-only JSONL checkpoint store; ``--resume``
  replays finished cells byte-for-byte and re-runs only the gaps.
* :mod:`.retry`   — exponential-backoff retry policies for workers that
  time out or crash.
* :mod:`.faults`  — deterministic fault injection (env/knob driven) so
  every recovery path is provable in tests.

The degradation ladder itself (approximate cell falls back to the exact
baseline with an explicit ``degraded`` flag) lives in
:mod:`repro.eval.harness` / :mod:`repro.eval.tables`, following the
GraphGuess pattern: when an approximation step fails, step toward the
exact path and record the correction rather than dying.
"""

from ..errors import DegradedResult, FaultInjected, ResilienceError, WorkerTimeout
from .faults import FaultInjector, FaultRule, fault_point, install, parse_spec, reset
from .journal import RunJournal, cell_key, exact_row_key
from .retry import RetryPolicy, call_with_retries

__all__ = [
    "DegradedResult",
    "FaultInjected",
    "FaultInjector",
    "FaultRule",
    "ResilienceError",
    "RetryPolicy",
    "RunJournal",
    "WorkerTimeout",
    "call_with_retries",
    "cell_key",
    "exact_row_key",
    "fault_point",
    "install",
    "parse_spec",
    "reset",
]
