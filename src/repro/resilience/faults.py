"""Deterministic fault injection for exercising the recovery paths.

The eval stack calls :func:`fault_point` at a handful of instrumented
sites (graph transforms, baseline kernel runs, graph I/O, sweep workers).
Normally these calls are no-ops; when a fault plan is armed — via the
``REPRO_FAULTS`` environment variable or :func:`install` — matching sites
raise or stall deterministically, letting the resilience test suite prove
every retry/degradation/resume path without flaky sleeps or monkeypatching
deep internals.

Spec grammar (``;``-separated rules of ``,``-separated ``key=value`` pairs)::

    REPRO_FAULTS="site=transform,mode=transform-error,match=coalescing,times=1"
    REPRO_FAULTS="site=worker,mode=stall,match=rmat:attempt0,delay=30;site=io,mode=error"

A compact shorthand ``<mode>:<site>[:<ms>[:<match>]]`` covers the common
chaos clauses — latency faults especially — without the key=value
ceremony::

    REPRO_FAULTS="delay:cache:50"            # 50 ms on every cache I/O
    REPRO_FAULTS="delay:serve:20:sssp"       # 20 ms on serve keys matching "sssp"
    REPRO_FAULTS="error:io"                  # raise on every io call

Rule fields:

``site``
    required; one of :data:`SITES` (``transform``, ``baseline``, ``io``,
    ``worker``, ``cache``, ``serve``).
``mode``
    ``error`` (raise :class:`~repro.errors.FaultInjected`, the default),
    ``transform-error`` (raise :class:`~repro.errors.TransformError`),
    ``oom`` (raise :class:`MemoryError`), ``stall`` (sleep ``delay``
    seconds, triggering worker deadlines), or ``delay`` (sleep ``ms``
    milliseconds and return — the non-fatal latency fault for slow-I/O
    chaos: the call still succeeds, just late).
``match``
    substring the site's key must contain (empty = match every call).
``times``
    trigger at most this many matching calls (``-1`` = unlimited).
``after``
    let this many matching calls through before triggering.
``delay``
    seconds to sleep for ``mode=stall``.
``ms``
    milliseconds to sleep for ``mode=delay``.

Matching is counted per rule per process; because sweep workers embed the
attempt number in their key (``"<graph>:attempt<N>"``), a rule such as
``match=attempt0`` fails every *first* attempt deterministically while
letting retries succeed — independent of process boundaries.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..errors import FaultInjected, ResilienceError, TransformError

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultRule",
    "FaultInjector",
    "parse_spec",
    "install",
    "reset",
    "current",
    "fault_point",
]

ENV_VAR = "REPRO_FAULTS"
SITES = ("transform", "baseline", "io", "worker", "cache", "serve")
_MODES = ("error", "transform-error", "oom", "stall", "delay")


@dataclass
class FaultRule:
    """One armed fault: where it hits, how it fails, and how often."""

    site: str
    mode: str = "error"
    match: str = ""
    times: int = -1
    after: int = 0
    delay: float = 1.0
    ms: float = 10.0
    _seen: int = field(default=0, repr=False)
    _fired: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ResilienceError(
                f"unknown fault site {self.site!r}; choose from {SITES}"
            )
        if self.mode not in _MODES:
            raise ResilienceError(
                f"unknown fault mode {self.mode!r}; choose from {_MODES}"
            )

    def check(self, site: str, key: str) -> None:
        """Trigger this rule's effect if ``(site, key)`` matches and it is armed."""
        if site != self.site or self.match not in key:
            return
        self._seen += 1
        if self._seen <= self.after:
            return
        if self.times >= 0 and self._fired >= self.times:
            return
        self._fired += 1
        detail = f"injected fault at {site}:{key!r} (rule {self.mode})"
        if self.mode == "delay":
            time.sleep(self.ms / 1000.0)
        elif self.mode == "stall":
            time.sleep(self.delay)
        elif self.mode == "transform-error":
            raise TransformError(detail)
        elif self.mode == "oom":
            raise MemoryError(detail)
        else:
            raise FaultInjected(detail)


class FaultInjector:
    """Holds a parsed fault plan and dispatches :func:`fault_point` calls."""

    def __init__(self, rules: list[FaultRule]):
        self.rules = rules

    def check(self, site: str, key: str = "") -> None:
        for rule in self.rules:
            rule.check(site, key)


def _parse_compact(clause: str) -> FaultRule:
    """Parse the ``<mode>:<site>[:<ms>[:<match>]]`` shorthand."""
    parts = clause.split(":", 3)
    mode = parts[0].strip()
    if len(parts) < 2 or not parts[1].strip():
        raise ResilienceError(
            f"compact fault clause {clause!r} is missing a site "
            "(expected <mode>:<site>[:<ms>[:<match>]])"
        )
    site = parts[1].strip()
    kwargs: dict[str, object] = {}
    if len(parts) >= 3 and parts[2].strip():
        try:
            amount = float(parts[2])
        except ValueError as exc:
            raise ResilienceError(
                f"malformed fault clause {clause!r}: {exc}"
            ) from exc
        # the shorthand's third field is milliseconds for delay faults,
        # seconds for stalls (matching each mode's long-form field)
        kwargs["ms" if mode == "delay" else "delay"] = amount
    if len(parts) >= 4:
        kwargs["match"] = parts[3].strip()
    return FaultRule(site=site, mode=mode, **kwargs)  # type: ignore[arg-type]


def parse_spec(spec: str) -> list[FaultRule]:
    """Parse the ``REPRO_FAULTS`` grammar into :class:`FaultRule` objects."""
    rules: list[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause and ":" in clause:
            rules.append(_parse_compact(clause))
            continue
        fields: dict[str, str] = {}
        for pair in clause.split(","):
            if "=" not in pair:
                raise ResilienceError(
                    f"malformed fault clause {clause!r}: expected key=value pairs"
                )
            k, v = pair.split("=", 1)
            fields[k.strip()] = v.strip()
        if "site" not in fields:
            raise ResilienceError(f"fault clause {clause!r} is missing site=")
        try:
            rules.append(
                FaultRule(
                    site=fields["site"],
                    mode=fields.get("mode", "error"),
                    match=fields.get("match", ""),
                    times=int(fields.get("times", -1)),
                    after=int(fields.get("after", 0)),
                    delay=float(fields.get("delay", 1.0)),
                    ms=float(fields.get("ms", 10.0)),
                )
            )
        except ValueError as exc:
            raise ResilienceError(
                f"malformed fault clause {clause!r}: {exc}"
            ) from exc
    return rules


_installed: FaultInjector | None = None
_env_cache: tuple[str, FaultInjector] | None = None


def install(spec_or_rules: str | list[FaultRule]) -> FaultInjector:
    """Programmatically arm a fault plan for this process (tests)."""
    global _installed
    rules = (
        parse_spec(spec_or_rules)
        if isinstance(spec_or_rules, str)
        else list(spec_or_rules)
    )
    _installed = FaultInjector(rules)
    return _installed


def reset() -> None:
    """Disarm any installed plan and forget cached env parses."""
    global _installed, _env_cache
    _installed = None
    _env_cache = None


def current() -> FaultInjector | None:
    """The active injector: installed plan first, else ``REPRO_FAULTS``."""
    global _env_cache
    if _installed is not None:
        return _installed
    spec = os.environ.get(ENV_VAR, "")
    if not spec:
        return None
    if _env_cache is None or _env_cache[0] != spec:
        _env_cache = (spec, FaultInjector(parse_spec(spec)))
    return _env_cache[1]


def fault_point(site: str, key: str = "") -> None:
    """Instrumentation hook: no-op unless a matching fault is armed."""
    injector = current()
    if injector is not None:
        injector.check(site, key)
