"""Append-only JSONL checkpoint store for table sweeps.

Every completed table cell is recorded as one JSON line the moment it
finishes, flushed and fsynced so a crash loses at most the cell in
flight.  ``python -m repro --resume`` reloads the journal and skips
finished work, replaying the recorded rows byte-for-byte (the journal is
never rewritten on resume — new cells append after the old ones).

Line format::

    {"kind": "meta", "key": {"scale": ..., "seed": ...}, "payload": {...}}
    {"kind": "cell", "key": {...cell identity...}, "payload": {...row dict...}}

A trailing partial line (the telltale of a crash mid-write) is ignored on
load; any earlier malformed line is as well, costing only a re-run of
that cell.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from ..errors import ResilienceError

__all__ = ["RunJournal", "cell_key", "exact_row_key"]


def cell_key(
    technique: str,
    baseline: str,
    algorithm: str,
    graph: str,
    scale: str,
    seed: int,
    num_bc_sources: int,
) -> dict:
    """Identity of one technique-table cell, for journal lookups."""
    return {
        "technique": technique,
        "baseline": baseline,
        "algorithm": algorithm,
        "graph": graph,
        "scale": scale,
        "seed": seed,
        "num_bc_sources": num_bc_sources,
    }


def exact_row_key(
    baseline: str,
    graph: str,
    algorithms: tuple[str, ...],
    scale: str,
    seed: int,
    num_bc_sources: int,
) -> dict:
    """Identity of one exact-baseline table row (Tables 2-4)."""
    return {
        "baseline": baseline,
        "graph": graph,
        "algorithms": list(algorithms),
        "scale": scale,
        "seed": seed,
        "num_bc_sources": num_bc_sources,
    }


class RunJournal:
    """One run's checkpoint file (``journal.jsonl`` under ``--output-dir``)."""

    def __init__(
        self,
        path: str | Path,
        *,
        resume: bool = False,
        meta: Mapping[str, Any] | None = None,
    ):
        self.path = Path(path)
        self.meta = dict(meta or {})
        self._index: dict[str, Any] = {}
        self.replayed = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
        else:
            # fresh run: truncate and stamp the run identity
            self.path.write_text("")
            if self.meta:
                self._append("meta", self.meta, {})

    # ------------------------------------------------------------------
    @staticmethod
    def _index_key(kind: str, key: Mapping[str, Any]) -> str:
        return kind + "\x00" + json.dumps(key, sort_keys=True, default=str)

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                kind = entry["kind"]
                key = entry["key"]
                payload = entry["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # partial trailing write from a crash, or corruption: the
                # cell simply re-runs
                continue
            if kind == "meta":
                for field, want in self.meta.items():
                    if field in key and key[field] != want:
                        raise ResilienceError(
                            f"{self.path}: journal was written for "
                            f"{field}={key[field]!r} but this run uses "
                            f"{field}={want!r}; refusing to resume"
                        )
                continue
            self._index[self._index_key(kind, key)] = payload
            self.replayed += 1

    def _append(self, kind: str, key: Mapping[str, Any], payload: Any) -> None:
        line = json.dumps(
            {"kind": kind, "key": dict(key), "payload": payload}, default=float
        )
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    def record(self, kind: str, key: Mapping[str, Any], payload: Any) -> None:
        """Persist one completed unit of work (idempotent per key)."""
        ik = self._index_key(kind, key)
        if ik in self._index:
            return
        self._index[ik] = payload
        self._append(kind, key, payload)

    def get(self, kind: str, key: Mapping[str, Any]) -> Any | None:
        """The recorded payload for ``key``, or ``None`` if not completed."""
        return self._index.get(self._index_key(kind, key))

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunJournal({str(self.path)!r}, entries={len(self._index)})"
