"""Retry policies with exponential backoff for sweep workers.

The parallel table runner retries a worker that times out or raises,
spacing attempts by ``backoff_base * 2**attempt`` (capped) so a transient
resource squeeze — the common cause of worker OOMs in a wide sweep — has
time to clear before the task re-runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import ResilienceError

__all__ = ["RetryPolicy", "call_with_retries"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed task and how long to wait."""

    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ResilienceError("backoff durations must be non-negative")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-running after failed attempt ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * (2.0**attempt))

    def attempts(self) -> int:
        """Total attempts allowed (first try plus retries)."""
        return self.max_retries + 1


def call_with_retries(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = RetryPolicy(),
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run ``fn`` under ``policy``, sleeping the backoff between attempts.

    The in-process counterpart of the worker scheduler's retry loop, for
    flaky single operations (e.g. loading an input over a glitchy mount).
    """
    last: BaseException | None = None
    for attempt in range(policy.attempts()):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt >= policy.max_retries:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(policy.delay(attempt))
    assert last is not None
    raise last
