"""Hardened analytics serving: a long-lived, overload-safe query server.

ROADMAP item 1 made concrete, robustness-first.  ``python -m repro
serve`` stands up a concurrent TCP server that holds pre-transformed
Graffix plans hot (via :mod:`repro.cache`) and answers SSSP / PageRank
top-k / BC analytics queries over a line-delimited JSON protocol
(:mod:`repro.serve.protocol`), with the failure behavior engineered
before the throughput:

* :mod:`.admission` — token gate + bounded queue; overload sheds with
  explicit ``overloaded`` responses and retry-after hints;
* :mod:`.deadline` — per-request budgets checked at admission, between
  stages, and inside sweep loops, so late work is cancelled cheaply;
* :mod:`.breaker` — a circuit breaker guarding the disk cache tier
  (trip on corruption/slow reads, fall back to recompute);
* :mod:`.degrade` — a pressure-driven ladder that steps hot queries
  down to the paper's approximate plans (footnoted, PR-1 style) instead
  of collapsing;
* :mod:`.service` / :mod:`.server` — hot plans, startup self-check via
  the :mod:`repro.verify` oracles, health/readiness probes, graceful
  SIGTERM drain;
* :mod:`.loadgen` — the redisbench-style YAML load generator + KPI gate
  (``python -m repro bench serve``), including a chaos mode that arms
  ``REPRO_FAULTS`` mid-run and checks correctness and recovery.

See ``docs/serving.md`` for the protocol and semantics.
"""

from __future__ import annotations

from .admission import AdmissionGate
from .breaker import CircuitBreaker
from .deadline import Deadline, DeadlineRunner, deadline_runner_factory
from .degrade import DegradationLadder
from .protocol import ServeClient
from .server import ReproServer
from .service import GraphService, ServeConfig

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
    "DeadlineRunner",
    "deadline_runner_factory",
    "DegradationLadder",
    "GraphService",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
]
