"""Admission control: a token gate with a bounded wait queue.

The server sizes its concurrency to the worker pool (one token per
worker); requests beyond that wait in a *bounded* queue.  Two explicit
failure modes replace implicit collapse:

* **shed** — when the queue is already ``max_queue_depth`` deep, the
  request is refused immediately with :class:`~repro.errors.Overloaded`
  and a ``retry_after_ms`` hint that scales with the backlog, so
  overload produces fast 503-style answers instead of unbounded queueing
  (the redisbench KPI gate counts these as shed-rate, not latency);
* **deadline at admission** — a waiter only waits as long as its
  remaining budget; if the token does not arrive in time it leaves with
  :class:`~repro.errors.DeadlineExceeded` having consumed no sweep work.

Telemetry: ``serve.admission.wait`` (histogram, seconds),
``serve.queue.depth`` (gauge, sampled on every transition),
``serve.admission.{admitted,shed,expired}`` counters.  The measured
wait also feeds the degradation ladder's pressure signal (the caller
passes it to :meth:`repro.serve.degrade.DegradationLadder.observe`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic
from typing import Iterator

from ..errors import Overloaded
from ..obs import metrics as obs_metrics
from .deadline import Deadline

__all__ = ["AdmissionGate"]

#: admission-wait histogram buckets (seconds): serving latencies are
#: milliseconds-scale, so the default seconds-scale buckets are too coarse
WAIT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)


class AdmissionGate:
    """Bounded-concurrency, bounded-queue admission for request workers."""

    def __init__(
        self,
        max_concurrency: int,
        max_queue_depth: int = 16,
        *,
        base_retry_after_ms: float = 25.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.max_queue_depth = int(max_queue_depth)
        self.base_retry_after_ms = float(base_retry_after_ms)
        self._tokens = threading.Semaphore(self.max_concurrency)
        self._lock = threading.Lock()
        self._waiting = 0
        self._active = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a token."""
        return self._waiting

    @property
    def active(self) -> int:
        """Requests currently holding a token."""
        return self._active

    def occupancy(self) -> float:
        """Queue fullness in [0, 1] — a pressure signal for degradation."""
        if self.max_queue_depth == 0:
            return 1.0 if self._waiting else 0.0
        return min(1.0, self._waiting / self.max_queue_depth)

    def retry_after_ms(self) -> float:
        """Backoff hint for shed responses, scaled by the backlog."""
        backlog = self._waiting + self._active
        return self.base_retry_after_ms * max(1.0, float(backlog))

    def _gauge(self) -> None:
        obs_metrics.gauge("serve.queue.depth").set(float(self._waiting))
        obs_metrics.gauge("serve.active.workers").set(float(self._active))

    # ------------------------------------------------------------------
    @contextmanager
    def admit(self, deadline: Deadline) -> Iterator[float]:
        """Hold one worker token for the duration of the ``with`` block.

        Yields the seconds spent waiting for the token (the queue-wait
        pressure signal).  Raises :class:`Overloaded` when the queue is
        full and :class:`DeadlineExceeded` (via ``deadline.check``) when
        the budget runs out before a token frees up.
        """
        deadline.check("admission")
        with self._lock:
            if self._waiting >= self.max_queue_depth:
                obs_metrics.counter("serve.admission.shed").inc()
                raise Overloaded(
                    f"queue full ({self._waiting}/{self.max_queue_depth} waiting)",
                    retry_after_ms=self.retry_after_ms(),
                )
            self._waiting += 1
            self._gauge()
        t0 = monotonic()
        try:
            while True:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    obs_metrics.counter("serve.admission.expired").inc()
                    deadline.check("admission")  # raises with the stage detail
                # bounded acquire so an unbounded deadline still re-checks
                # periodically (and drain can interrupt via the deadline)
                if self._tokens.acquire(timeout=min(remaining, 0.05)):
                    break
        finally:
            with self._lock:
                self._waiting -= 1
                self._gauge()
        wait = monotonic() - t0
        obs_metrics.histogram("serve.admission.wait", WAIT_BUCKETS).observe(wait)
        obs_metrics.counter("serve.admission.admitted").inc()
        with self._lock:
            self._active += 1
            self._gauge()
        try:
            yield wait
        finally:
            self._tokens.release()
            with self._lock:
                self._active -= 1
                self._gauge()
