"""The serve-side batching window: same-shape queries share one sweep.

:class:`BatchWindow` is the admission-side collector behind
``ServeConfig.batch_window_ms``: the first request for a *batch key*
(same graph, same algorithm, same plan-determining params) becomes the
group's **leader** and holds the window open; requests with the same key
arriving within the window become **followers**.  When the window closes
— the configured wait elapses, the group fills ``batch_max_lanes``, or
holding it longer would endanger the tightest member deadline — the
leader runs one batched sweep (:mod:`repro.perf.batched`) over every
member's lane and fans the per-lane results back out, so a burst of S
same-graph queries pays one stacked solve instead of S looped ones.
Responses answered from a shared sweep are footnoted ``batched: true``
with the group's ``batch_lanes``.

Deadline semantics: the shared sweep runs under the group's
**earliest-deadline lane** (the member with the least remaining budget),
so batching never spends budget a member doesn't have; the leader also
never waits longer than half the tightest member's remaining budget.
If the shared sweep still exceeds that earliest deadline — or fails for
any other reason — the group *falls back*: every member re-runs solo
under its own deadline, so one tight-budget lane cannot time out the
whole group.  A single-member window just runs the solo path directly.

The degrade ladder composes upstream: technique substitution happens
before the batch key is formed, and the key includes the technique — a
degraded request therefore lands in a different group than an exact one
and lanes of mixed fidelity never share a sweep.

Observability: ``serve.batch.groups`` / ``serve.batch.requests`` /
``serve.batch.solo`` / ``serve.batch.fallback`` counters plus the
``serve.batch.window`` (leader wait, seconds) and ``serve.batch.lanes``
(members per shared sweep) histograms, all surfaced by
``python -m repro stats``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable, Sequence

from ..errors import DeadlineExceeded
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .deadline import Deadline

__all__ = ["BatchWindow"]

WINDOW_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1)
LANE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


class _Group:
    __slots__ = (
        "key",
        "payloads",
        "deadlines",
        "batch_fn",
        "sealed",
        "full",
        "done",
        "results",
        "error",
    )

    def __init__(self, key: Hashable, batch_fn) -> None:
        self.key = key
        self.payloads: list[Any] = []
        self.deadlines: list[Deadline] = []
        self.batch_fn = batch_fn  # the leader's; identical per key
        self.sealed = False
        self.full = threading.Event()  # set when the group hits max lanes
        self.done = threading.Event()  # set when results (or error) land
        self.results: list[Any] | None = None
        self.error: BaseException | None = None

    def earliest(self) -> Deadline:
        """The member deadline with the least remaining budget."""
        return min(self.deadlines, key=lambda d: d.start + d.budget)


class BatchWindow:
    """Groups same-key requests arriving within a window into one solve.

    ``run`` is the only entry point; it is safe to call from any number
    of threads.  ``batch_fn(payloads, deadline)`` must return one result
    per payload (in order) and is invoked on exactly one member's thread
    per group; ``solo_fn(payload, deadline)`` is the per-request
    fallback and also serves single-member windows.
    """

    def __init__(self, window_seconds: float, max_lanes: int) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        self.window_seconds = float(window_seconds)
        self.max_lanes = int(max_lanes)
        self._lock = threading.Lock()
        self._open: dict[Hashable, _Group] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        key: Hashable,
        payload: Any,
        deadline: Deadline,
        batch_fn: Callable[[Sequence[Any], Deadline], Sequence[Any]],
        solo_fn: Callable[[Any, Deadline], Any],
    ) -> tuple[Any, int]:
        """Join the window for ``key``; returns ``(result, lanes)``.

        ``lanes`` is the number of members the answering sweep covered —
        ``1`` means the request was answered solo (empty window, or the
        group fell back).
        """
        with self._lock:
            group = self._open.get(key)
            if group is None or group.sealed or len(group.payloads) >= self.max_lanes:
                group = _Group(key, batch_fn)
                self._open[key] = group
                leader = True
            else:
                leader = False
            idx = len(group.payloads)
            group.payloads.append(payload)
            group.deadlines.append(deadline)
            if len(group.payloads) >= self.max_lanes:
                group.full.set()

        if leader:
            self._lead(group)
        else:
            self._follow(group, deadline)

        if group.error is not None:
            # shared sweep failed (typically the earliest-deadline lane
            # expired mid-batch): answer solo under *this* member's own
            # budget instead of failing the whole group
            obs_metrics.counter("serve.batch.fallback").inc()
            return solo_fn(payload, deadline), 1

        if group.results is None:  # single-member window: no shared sweep
            obs_metrics.counter("serve.batch.solo").inc()
            return solo_fn(payload, deadline), 1

        return group.results[idx], len(group.payloads)

    # ------------------------------------------------------------------
    def _lead(self, group: _Group) -> None:
        # hold the window open, but never past half the tightest member
        # budget — the earliest-deadline lane still has to run the sweep
        wait = min(
            self.window_seconds, 0.5 * max(group.earliest().remaining(), 0.0)
        )
        t0 = time.perf_counter()
        if wait > 0:
            group.full.wait(wait)
        obs_metrics.histogram("serve.batch.window", WINDOW_BUCKETS).observe(
            time.perf_counter() - t0
        )
        with self._lock:
            group.sealed = True
            if self._open.get(group.key) is group:
                del self._open[group.key]
        try:
            if len(group.payloads) > 1:
                earliest = group.earliest()
                with obs_trace.span(
                    "serve.batch.sweep", lanes=len(group.payloads)
                ):
                    results = list(group.batch_fn(group.payloads, earliest))
                if len(results) != len(group.payloads):
                    raise RuntimeError(
                        "batch_fn returned wrong result count"
                    )
                group.results = results
                obs_metrics.counter("serve.batch.groups").inc()
                obs_metrics.counter("serve.batch.requests").inc(
                    len(group.payloads)
                )
                obs_metrics.histogram(
                    "serve.batch.lanes", LANE_BUCKETS
                ).observe(float(len(group.payloads)))
        except BaseException as exc:  # noqa: BLE001 - fanned out per member
            group.error = exc
        finally:
            group.done.set()

    def _follow(self, group: _Group, deadline: Deadline) -> None:
        # the leader seals and answers within its own bounded wait; the
        # margin covers the sweep itself, capped by this member's budget
        timeout = deadline.remaining()
        if timeout <= 0 or not group.done.wait(timeout + 0.05):
            raise DeadlineExceeded(
                "deadline exceeded at batch: shared sweep did not finish "
                "within this request's budget"
            )
