"""A circuit breaker for flaky dependencies (the disk cache tier).

The classic three-state machine, tuned for the serve hot path:

* **closed** — calls flow; consecutive failures (or successes slower
  than ``slow_call_seconds``, which count as failures — a disk that
  answers in 500 ms is as useless to a 100 ms-budget request as one
  that errors) are counted, and ``failure_threshold`` of them in a row
  trip the breaker;
* **open** — calls are refused instantly (:meth:`allow` returns false)
  for ``cooldown_seconds``; the dependency gets air to recover and the
  caller takes its fallback path (for the cache tier: recompute);
* **half-open** — after the cooldown, up to ``half_open_probes`` trial
  calls pass through; a success closes the breaker, a failure re-opens
  it with a fresh cooldown.

:class:`~repro.cache.store.DiskStore` accepts one of these as its
``breaker`` and reports every disk read/write outcome into it, so
repeated checksum corruption or injected slow-I/O faults
(``REPRO_FAULTS="delay:cache:<ms>"``) flip the server to
recompute-from-plan instead of stalling every worker on a dying disk.

Thread-safe; the clock is injectable for deterministic tests.
State transitions are counted on ``serve.breaker.<name>.{open,close,half_open}``
and the current state is exported on the ``serve.breaker.<name>.state``
gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

logger = get_logger("serve.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Consecutive-failure breaker with slow-call accounting."""

    def __init__(
        self,
        name: str = "disk",
        *,
        failure_threshold: int = 3,
        slow_call_seconds: float = math.inf,
        cooldown_seconds: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.slow_call_seconds = float(slow_call_seconds)
        self.cooldown_seconds = float(cooldown_seconds)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    # ------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        if state != self._state:
            self._state = state
            metric = state.replace("-", "_")
            obs_metrics.counter(f"serve.breaker.{self.name}.{metric}").inc()
            logger.info("breaker %s -> %s", self.name, state)
        obs_metrics.gauge(f"serve.breaker.{self.name}.state").set(
            _STATE_GAUGE[state]
        )

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the guarded call may proceed right now."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_seconds:
                    return False
                self._set_state(HALF_OPEN)
                self._probes_in_flight = 0
            # half-open: admit a bounded number of probes
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self, elapsed_seconds: float = 0.0) -> None:
        """Report a completed call; slow completions count as failures."""
        if elapsed_seconds > self.slow_call_seconds:
            obs_metrics.counter(f"serve.breaker.{self.name}.slow_call").inc()
            self.record_failure()
            return
        with self._lock:
            self._failures = 0
            if self._state == HALF_OPEN:
                self._set_state(CLOSED)
                self._probes_in_flight = 0

    def record_failure(self) -> None:
        """Report a failed call; enough in a row trip the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._set_state(OPEN)
        self._failures = 0
        self._probes_in_flight = 0
        self._opened_at = self._clock()

    def reset(self) -> None:
        """Force-close (tests, operator action)."""
        with self._lock:
            self._failures = 0
            self._probes_in_flight = 0
            self._set_state(CLOSED)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker({self.name!r}, state={self._state})"
