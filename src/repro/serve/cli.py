"""``python -m repro serve``: run the analytics server in the foreground.

Starts a :class:`~repro.serve.server.ReproServer`, prints one startup
line (host, port, graphs, workers) so scripts can scrape the bound
port, and blocks until SIGTERM/SIGINT — both trigger the graceful
drain: in-flight queries finish, new ones answer ``shutting_down``,
and the ``--metrics-out``/``--trace-out`` sinks are flushed before
exit.  See ``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import signal

from ..core.pipeline import TECHNIQUES
from ..obs import trace as obs_trace
from .server import ReproServer
from .service import ServeConfig

__all__ = ["build_config", "main"]


def build_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        scale=args.scale,
        seed=args.seed,
        techniques=tuple(args.techniques),
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms,
        drain_seconds=args.drain_seconds,
        cache_dir=args.cache_dir,
        self_check=not args.no_self_check,
        allow_chaos=args.allow_chaos,
        degradation=not args.no_degradation,
        tune_config=args.tune_config,
        batch_window_ms=args.batch_window_ms,
        batch_max_lanes=args.batch_max_lanes,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Long-lived graph-analytics query server "
        "(line-delimited JSON over TCP; see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port (printed)"
    )
    parser.add_argument(
        "--scale", default="tiny", help="paper_suite scale to load (tiny/small/medium)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--techniques",
        nargs="+",
        default=["exact", "coalescing"],
        choices=list(TECHNIQUES),
        help="plans to hold hot (default: exact coalescing)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--queue-depth", type=int, default=16, help="admission queue bound"
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=2000.0, help="default request budget"
    )
    parser.add_argument("--drain-seconds", type=float, default=10.0)
    parser.add_argument("--cache-dir", default=None, help="disk plan cache")
    parser.add_argument(
        "--no-self-check", action="store_true",
        help="skip the startup verify-oracle pass over loaded plans",
    )
    parser.add_argument(
        "--no-degradation", action="store_true",
        help="disable the pressure-driven approximate-plan ladder",
    )
    parser.add_argument(
        "--tune-config", default=None, metavar="BENCH_TUNE.json",
        help="auto-tuner report whose serve block drives the level-2 "
        "reduced-work knobs (default: historical halving fallbacks)",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=0.0,
        help="group same-key queries into one stacked multi-source sweep "
        "for up to this long (0 disables the batching window)",
    )
    parser.add_argument(
        "--batch-max-lanes", type=int, default=8,
        help="seal and run a batch group once it reaches this many lanes",
    )
    parser.add_argument(
        "--allow-chaos", action="store_true",
        help="honor the chaos admin op (fault injection; benchmarking only)",
    )
    parser.add_argument("--metrics-out", default=None)
    parser.add_argument("--trace-out", default=None)
    parser.add_argument(
        "--profile", default=None, metavar="PREFIX",
        help="sample the server until drain: writes PREFIX.collapsed + "
        "PREFIX.json (REPRO_PROFILE env works too)",
    )
    args = parser.parse_args(argv)

    if args.trace_out:
        obs_trace.install_tracer()

    from ..obs import prof as obs_prof

    profiler, profile_prefix = obs_prof.start_from_cli(args.profile)
    server = ReproServer(build_config(args))

    def _terminate(signum, frame):
        server.stop()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    port = server.start()
    print(
        f"repro serve listening on {args.host}:{port} "
        f"({len(server.service.graphs)} graphs, "
        f"{len(args.techniques)} plan(s) each, {args.workers} workers)",
        flush=True,
    )
    server.run()
    if profiler is not None:
        obs_prof.write_outputs(profiler, profile_prefix)
    return 0
