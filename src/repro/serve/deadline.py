"""Per-request latency budgets, checked everywhere work happens.

Every request admitted to the server carries a :class:`Deadline` — a
monotonic-clock budget fixed at arrival.  The budget is consulted at
three depths, so a request that can no longer make it is cancelled for
the price of a clock read instead of burning a worker to completion:

* **admission** — a request whose budget is already spent (or that
  exhausted it waiting in the queue) is rejected before any plan or
  sweep work;
* **stage boundaries** — the service checks between pipeline stages
  (plan fetch, solve, serialize) via :meth:`Deadline.check`;
* **sweep loops** — :class:`DeadlineRunner` wraps the algorithm
  :class:`~repro.algorithms.common.Runner` so every global sweep and
  cluster round re-checks; a fixed-point loop over a large plan notices
  expiry within one sweep rather than at convergence.

Expiry raises :class:`~repro.errors.DeadlineExceeded`, which the server
maps to a ``status="timeout"`` response.  ``serve.deadline.expired``
counts them per stage via the counter suffix.
"""

from __future__ import annotations

import math
import time

from ..algorithms.common import Runner
from ..errors import DeadlineExceeded
from ..obs import metrics as obs_metrics

__all__ = ["Deadline", "DeadlineRunner", "deadline_runner_factory"]


class Deadline:
    """A wall-clock budget anchored at construction time.

    ``budget`` is in seconds; ``None`` / ``inf`` means unbounded (health
    probes, offline tools).  Instances are immutable after construction
    and safe to share across the stages of one request (they are only
    read).
    """

    __slots__ = ("budget", "start")

    def __init__(self, budget: float | None, *, start: float | None = None) -> None:
        self.budget = math.inf if budget is None else float(budget)
        self.start = time.monotonic() if start is None else start

    @classmethod
    def from_ms(cls, budget_ms: float | None) -> "Deadline":
        """The wire-protocol constructor (requests carry milliseconds)."""
        return cls(None if budget_ms is None else float(budget_ms) / 1000.0)

    @classmethod
    def none(cls) -> "Deadline":
        """An unbounded deadline (never expires)."""
        return cls(None)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired, inf if unbounded)."""
        return self.budget - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        ``stage`` names where the request died (``admission``,
        ``sweep``, …) for the error message and the per-stage counter.
        """
        rem = self.remaining()
        if rem <= 0.0:
            obs_metrics.counter(f"serve.deadline.expired.{stage}").inc()
            raise DeadlineExceeded(
                f"deadline exceeded at {stage}: budget {self.budget * 1000.0:.0f}ms,"
                f" over by {-rem * 1000.0:.1f}ms"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if math.isinf(self.budget):
            return "Deadline(unbounded)"
        return f"Deadline({self.budget * 1000.0:.0f}ms, remaining={self.remaining() * 1000.0:.1f}ms)"


class DeadlineRunner(Runner):
    """A :class:`Runner` whose sweeps re-check the request deadline.

    Algorithms accept a ``runner_factory``, so deadline propagation
    reaches inside SSSP/PR/BC fixed-point loops without the algorithms
    knowing about serving: each global sweep and each block of cluster
    rounds costs one monotonic clock read.
    """

    def __init__(self, plan, device, *, deadline: Deadline) -> None:
        super().__init__(plan, device)
        self.deadline = deadline

    def sweep(self, values, relax, **kwargs):
        self.deadline.check("sweep")
        return super().sweep(values, relax, **kwargs)

    def cluster_rounds(self, values, relax):
        self.deadline.check("cluster_rounds")
        return super().cluster_rounds(values, relax)


def deadline_runner_factory(deadline: Deadline):
    """A ``runner_factory`` binding ``deadline`` into every runner built."""

    def factory(plan, device) -> DeadlineRunner:
        return DeadlineRunner(plan, device, deadline=deadline)

    return factory
