"""Pressure-driven graceful degradation to approximate plans.

GraphGuess (PAPERS.md) adapts its approximation knobs *during* execution
in response to runtime signals; the serving analogue is a degradation
ladder driven by queue pressure.  When admission waits climb, the server
steps hot queries down to cheaper execution — Graffix's approximate
transform plans first, then reduced work — instead of shedding more or
missing deadlines; when pressure drains it steps back up.  Every
degraded answer is footnoted (``degraded: true`` plus a reason) exactly
like PR 1's degraded table cells, so a client can always tell an exact
answer from an approximate one.

Ladder levels:

``0`` — serve the requested technique (the configured default, exact);
``1`` — switch to the approximate plan (``approx_technique``,
        default ``coalescing``): same algorithm, transformed graph,
        bounded inaccuracy per the paper's envelopes;
``2`` — approximate plan *and* reduced work.  With **tuned overrides**
        (the ``serve`` block of ``BENCH_TUNE.json`` from ``python -m
        repro tune``, wired via ``--tune-config``) BC serves the
        auto-tuner's probed source-sample size and PageRank the
        budget-derived tolerance; without them the historical fallbacks
        apply (BC halves its source sample, PageRank loosens its
        tolerance 100×).  SSSP stays on the approximate plan either way
        (its cost is dominated by the plan, not a knob).  Tuned
        substitutions carry ``(tuned)`` in the footnote reason.

The pressure signal is an exponentially-weighted moving average of
admission wait, blended with queue occupancy and — since the SLO
observatory — the fast-window error-budget **burn rate** from
:class:`~repro.obs.slo.SLOTracker`: a server blowing through its
latency or availability budget starts degrading even while its queue
still looks healthy (e.g. requests completing fast but *failing*).
Burn is scaled onto the wait axis so one set of thresholds governs all
three signals: burn at ``level2_burn_rate`` exerts the same pressure as
an EWMA wait at ``level2_wait_seconds``.  Transitions use hysteresis
(exit thresholds at half the entry thresholds) so the ladder does not
flap at a boundary.  ``serve.pressure.level`` gauges the current level;
``serve.degrade.step_{up,down}`` count transitions.

Thread-safe: one ladder is shared by every worker thread.
"""

from __future__ import annotations

import threading

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

__all__ = ["DegradationLadder", "tuned_overrides_from_report"]

logger = get_logger("serve.degrade")


def _validated_overrides(overrides: dict | None) -> dict | None:
    """Shape-check tuned level-2 overrides (``None`` passes through)."""
    if overrides is None:
        return None
    if not isinstance(overrides, dict):
        raise ValueError("tuned_overrides must be a dict")
    out: dict = {}
    if "bc_node" in overrides:
        try:
            num_sources = int(overrides["bc_node"]["num_sources"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                "tuned_overrides['bc_node'] needs an integer num_sources"
            ) from exc
        if num_sources < 1:
            raise ValueError("tuned num_sources must be >= 1")
        out["bc_node"] = {"num_sources": num_sources}
    if "pr_topk" in overrides:
        try:
            tol = float(overrides["pr_topk"]["tol"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                "tuned_overrides['pr_topk'] needs a float tol"
            ) from exc
        if not tol > 0:
            raise ValueError("tuned tol must be positive")
        out["pr_topk"] = {"tol": tol}
    unknown = set(overrides) - {"bc_node", "pr_topk"}
    if unknown:
        raise ValueError(f"unknown tuned_overrides keys: {sorted(unknown)}")
    return out or None


def tuned_overrides_from_report(report: dict) -> dict | None:
    """Extract the ladder's tuned overrides from a ``BENCH_TUNE.json``.

    Accepts either the full tune report (its ``serve`` block) or a bare
    overrides dict; validates the shape either way.
    """
    if not isinstance(report, dict):
        raise ValueError("tune report must be a dict")
    block = report.get("serve", report)
    return _validated_overrides(block if block else None)


class DegradationLadder:
    """Maps a smoothed pressure signal to a degradation level (0..2)."""

    def __init__(
        self,
        *,
        approx_technique: str = "coalescing",
        level1_wait_seconds: float = 0.050,
        level2_wait_seconds: float = 0.200,
        level2_burn_rate: float = 8.0,
        ewma_alpha: float = 0.3,
        enabled: bool = True,
        tuned_overrides: dict | None = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if level2_wait_seconds < level1_wait_seconds:
            raise ValueError("level2 threshold must be >= level1 threshold")
        if level2_burn_rate <= 0.0:
            raise ValueError("level2_burn_rate must be positive")
        self.tuned_overrides = _validated_overrides(tuned_overrides)
        self.approx_technique = approx_technique
        self.level1_wait_seconds = float(level1_wait_seconds)
        self.level2_wait_seconds = float(level2_wait_seconds)
        self.level2_burn_rate = float(level2_burn_rate)
        self.ewma_alpha = float(ewma_alpha)
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._ewma_wait = 0.0
        self._level = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    @property
    def pressure(self) -> float:
        """The smoothed admission-wait signal, in seconds."""
        with self._lock:
            return self._ewma_wait

    def observe(
        self, wait_seconds: float, occupancy: float = 0.0, burn_rate: float = 0.0
    ) -> int:
        """Fold one admission observation in; returns the (new) level.

        ``occupancy`` (queue fullness in [0, 1]) lets a rapidly filling
        queue raise pressure before waits have accumulated;
        ``burn_rate`` (the SLO tracker's fast-window error-budget burn)
        lets objective violations raise pressure before the queue does.
        The signal is the max of the measured wait and each auxiliary
        signal scaled onto the level-2 threshold.
        """
        if not self.enabled:
            return 0
        signal = max(
            float(wait_seconds),
            float(occupancy) * self.level2_wait_seconds,
            (float(burn_rate) / self.level2_burn_rate) * self.level2_wait_seconds,
        )
        with self._lock:
            self._ewma_wait += self.ewma_alpha * (signal - self._ewma_wait)
            w = self._ewma_wait
            level = self._level
            # hysteresis: step up at the entry threshold, back down only
            # once the signal falls below half of it
            if level < 2 and w >= self.level2_wait_seconds:
                level = 2
            elif level < 1 and w >= self.level1_wait_seconds:
                level = 1
            elif level == 2 and w < self.level2_wait_seconds / 2.0:
                level = 1 if w >= self.level1_wait_seconds / 2.0 else 0
            elif level == 1 and w < self.level1_wait_seconds / 2.0:
                level = 0
            if level != self._level:
                counter = "step_up" if level > self._level else "step_down"
                obs_metrics.counter(f"serve.degrade.{counter}").inc()
                logger.info(
                    "degradation level %d -> %d (ewma wait %.1fms)",
                    self._level, level, w * 1000.0,
                )
                self._level = level
            obs_metrics.gauge("serve.pressure.level").set(float(self._level))
            obs_metrics.gauge("serve.pressure.ewma_wait").set(w)
            return self._level

    # ------------------------------------------------------------------
    def apply(self, op: str, technique: str, params: dict) -> tuple[str, dict, str]:
        """The (technique, params, reason) to actually serve at this level.

        ``reason`` is the footnote for the response; empty means serve
        as requested (level 0, or the request already asked for the
        approximate technique).
        """
        with self._lock:
            level = self._level
        if level == 0 or not self.enabled:
            return technique, params, ""
        out = dict(params)
        changed: list[str] = []
        if technique != self.approx_technique:
            technique = self.approx_technique
            changed.append(f"plan={self.approx_technique}")
        tuned = self.tuned_overrides or {}
        if level >= 2:
            if op == "bc_node":
                requested = int(out.get("num_sources", 8))
                if "bc_node" in tuned:
                    # the auto-tuner probed the smallest source sample
                    # within budget — never *raise* the requested count
                    reduced = min(requested, tuned["bc_node"]["num_sources"])
                    marker = "(tuned)"
                else:
                    reduced = max(1, requested // 2)
                    marker = ""
                if reduced != requested:
                    out["num_sources"] = reduced
                    changed.append(f"num_sources={reduced}{marker}")
            elif op == "pr_topk":
                requested_tol = float(out.get("tol", 1e-8))
                if "pr_topk" in tuned:
                    # never tighten below what the client asked for
                    tol = max(requested_tol, tuned["pr_topk"]["tol"])
                    marker = "(tuned)"
                else:
                    tol = requested_tol * 100.0
                    marker = ""
                if tol != requested_tol:
                    out["tol"] = tol
                    changed.append(f"tol={tol:g}{marker}")
        if not changed:
            return technique, out, ""
        reason = f"pressure:level{level}:" + ",".join(changed)
        return technique, out, reason
