"""Declarative load generation + KPI gating for the serve layer.

Modeled on redisbench-admin's benchmark definitions (SNIPPETS.md
Snippet 2): a YAML spec names the workload — N client threads, a total
request count, a seeded query mix with per-query ratios — and a
``kpis:`` block of ``le:``/``ge:`` clauses that turn the run into a
pass/fail gate.  ``python -m repro bench serve --spec <yml>`` runs it
and emits ``BENCH_SERVE.json``.

Spec schema::

    name: serve-smoke
    server:                    # in-process server to spawn (omit when
      scale: tiny              # targeting a live one via `connect:`)
      seed: 7
      workers: 4
      max_queue_depth: 16
    connect: {host: ..., port: ...}   # optional: external server
    clients: 4                 # client threads
    requests: 400              # total requests across clients
    seed: 12345                # request-stream RNG seed
    deadline_ms: 2000          # per-request budget
    verify: true               # check answers against a reference run
    queries:
      - {op: sssp,    graph: rmat,     ratio: 0.5}
      - {op: sssp,    graph: rmat,     ratio: 0.0, source: 0}  # pinned
      - {op: pr_topk, graph: rmat,     ratio: 0.3, k: 8}
      - {op: bc_node, graph: usa-road, ratio: 0.2, num_sources: 4}
    kpis:
      - le: {q50_ms: 100}
      - ge: {qps: 20}
      - le: {shed_rate: 0.0}
      - le: {degraded_rate: 0.0}
    server_kpis:               # optional: gate on the server's own
      - ge: {serve.batch.groups: 1}     # counters after the drive (the
      - le: {serve.batch.fallback: 0}   # batching-window burst specs)
    slo:                       # optional: gate on server-side SLOs
      - name: latency          # evaluated from the drained server's
        indicator: serve.request.time     # own metrics registry via
        threshold_ms: 250      # the admin `stats` op (repro.obs.slo)
        target: 0.95
        max_burn_rate: 8.0     # optional: also gate lifetime burn
    chaos:                     # optional fault window mid-run
      faults: "delay:serve:30"                  # REPRO_FAULTS spec
      start_fraction: 0.3      # arm after 30 % of requests issued
      stop_fraction: 0.6       # disarm after 60 %
      kpis:                    # evaluated on the recovery phase only
        - le: {q50_ms: 100}

KPI metric names: ``q50_ms``/``q90_ms``/``q99_ms`` (latency quantiles
over completed analytics responses), ``qps`` (completed responses per
second of wall-clock), ``shed_rate``/``timeout_rate``/``error_rate``/
``degraded_rate``/``ok_rate`` (fractions of issued requests),
``batched``/``batched_rate`` (responses footnoted ``batched: true`` —
answered from a shared batching-window sweep), and ``wrong``
(verified-mismatch count — with ``verify: true`` the gate implicitly
requires 0).  A ``server_kpis:`` block applies the same ``le:``/``ge:``
clauses to the server's own counter snapshot (pulled via the admin
``stats`` op), e.g. ``serve.batch.groups`` to assert shared sweeps
actually ran server-side.

Queries may pin ``source:`` (sssp) or ``node:`` (bc_node) instead of
drawing them per-request — a pinned burst lands every client on the
same batch key, which is how the burst specs exercise the batching
window deterministically.

An ``slo:`` block lists :func:`repro.obs.slo.slo_from_spec` mappings;
after the drive the loadgen pulls the server's own metrics snapshot
(admin ``stats`` op) and gates ``compliance >= target`` per objective
(plus ``burn_rate <= max_burn_rate`` when the spec sets one) — the
server-side view, so admission waits and shed requests the client never
timed still count.  Against an external ``connect:`` server the
snapshot is cumulative since that server started, not just this run.

With ``verify: true`` the loadgen rebuilds the server's (deterministic)
graph suite and checks every completed, *non-degraded* ``ok`` answer
bit-for-bit against an exact-plan reference run; degraded answers are
only required to carry the footnote.  This is the chaos-mode oracle:
under injected faults the server may shed, time out, error, or degrade
— it may never return a wrong answer silently.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

import numpy as np

from ..algorithms.bc import betweenness_centrality
from ..algorithms.pagerank import pagerank
from ..algorithms.sssp import sssp
from ..core.pipeline import build_plan
from ..errors import ProtocolError, ServeError
from ..graphs.generators import paper_suite
from ..obs.log import get_logger
from .protocol import ServeClient
from .server import ReproServer
from .service import ServeConfig

__all__ = ["load_spec", "run_spec", "evaluate_kpis", "main"]

logger = get_logger("serve.loadgen")

PHASES = ("before", "fault", "recovery")


# ---------------------------------------------------------------------------
# spec loading
# ---------------------------------------------------------------------------
def load_spec(path: str | Path) -> dict:
    """Parse and sanity-check one YAML load spec."""
    import yaml

    spec = yaml.safe_load(Path(path).read_text())
    if not isinstance(spec, dict):
        raise ServeError(f"load spec {path} must be a YAML mapping")
    queries = spec.get("queries")
    if not isinstance(queries, list) or not queries:
        raise ServeError("load spec needs a non-empty queries: list")
    total_ratio = sum(float(q.get("ratio", 0.0)) for q in queries)
    if total_ratio <= 0.0:
        raise ServeError("query ratios must sum to a positive value")
    for q in queries:
        if q.get("op") not in ("sssp", "pr_topk", "bc_node"):
            raise ServeError(f"unknown query op {q.get('op')!r} in spec")
        if "graph" not in q:
            raise ServeError(f"query {q} is missing graph:")
    spec.setdefault("clients", 4)
    spec.setdefault("requests", 200)
    spec.setdefault("seed", 12345)
    spec.setdefault("deadline_ms", 2000.0)
    spec.setdefault("verify", True)
    return spec


def _server_config(spec: dict, *, allow_chaos: bool) -> ServeConfig:
    s = dict(spec.get("server") or {})
    techniques = tuple(s.pop("techniques", ("exact", "coalescing")))
    return ServeConfig(
        techniques=techniques, allow_chaos=allow_chaos, **s
    )


# ---------------------------------------------------------------------------
# the reference oracle
# ---------------------------------------------------------------------------
class _Reference:
    """Lazily computed exact-plan answers keyed like the server's ops.

    The suite is deterministic in (scale, seed), so rebuilding it client-
    side yields bit-identical graphs; exact-plan runs of the same
    algorithm code then yield bit-identical values to the server's
    non-degraded answers.
    """

    def __init__(self, scale: str, seed: int):
        self.graphs = dict(paper_suite(scale, seed=seed))
        self._plans: dict[str, object] = {}
        self._memo: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _plan(self, graph: str):
        with self._lock:
            if graph not in self._plans:
                self._plans[graph] = build_plan(self.graphs[graph], "exact")
            return self._plans[graph]

    def _get(self, key: tuple, compute):
        with self._lock:
            if key in self._memo:
                return self._memo[key]
        value = compute()
        with self._lock:
            self._memo[key] = value
        return value

    def check(self, req: dict, result: dict) -> bool:
        """True iff ``result`` matches the exact reference for ``req``."""
        op, graph = req["op"], req["graph"]
        if op == "sssp":
            dist = self._get(
                (op, graph, req["source"]),
                lambda: sssp(self._plan(graph), req["source"]).values,
            )
            if "target" in req:
                ref = float(dist[req["target"]])
                if not np.isfinite(ref):
                    return result.get("distance") is None
                got = result.get("distance")
                return got is not None and _close(got, ref)
            finite = np.isfinite(dist)
            return result.get("reached") == int(finite.sum()) and _close(
                result.get("total_distance", np.nan), float(dist[finite].sum())
            )
        if op == "pr_topk":
            tol = float(req.get("tol", 1e-8))
            ranks = self._get(
                (op, graph, tol), lambda: pagerank(self._plan(graph), tol=tol).values
            )
            for node, rank in result.get("top", []):
                if not _close(rank, float(ranks[node])):
                    return False
            return True
        if op == "bc_node":
            num_sources = int(req.get("num_sources", 8))
            seed = int(req.get("seed", 0))
            scores = self._get(
                (op, graph, num_sources, seed),
                lambda: betweenness_centrality(
                    self._plan(graph), num_sources=num_sources, seed=seed
                ).values,
            )
            return _close(result.get("score", np.nan), float(scores[req["node"]]))
        return True  # pragma: no cover - spec validation rejects other ops


def _close(a: float, b: float) -> bool:
    return bool(np.isclose(float(a), float(b), rtol=1e-9, atol=1e-12))


# ---------------------------------------------------------------------------
# the run
# ---------------------------------------------------------------------------
def run_spec(
    spec: dict,
    *,
    host: str | None = None,
    port: int | None = None,
) -> dict:
    """Execute one load spec; returns the BENCH_SERVE report dict.

    ``host``/``port`` override the spec's ``connect:`` block; with
    neither, an in-process server is spawned from the ``server:`` block.
    """
    chaos = spec.get("chaos") or None
    connect = spec.get("connect") or {}
    if host is None:
        host = connect.get("host")
    if port is None:
        port = connect.get("port")

    server: ReproServer | None = None
    if host is None or port is None:
        server = ReproServer(_server_config(spec, allow_chaos=chaos is not None))
        port = server.start()
        host = server.config.host

    try:
        return _drive(spec, host=host, port=int(port), server=server)
    finally:
        if server is not None:
            server.stop()


def _drive(spec: dict, *, host: str, port: int, server: ReproServer | None) -> dict:
    clients = int(spec["clients"])
    total = int(spec["requests"])
    deadline_ms = float(spec["deadline_ms"])
    chaos = spec.get("chaos") or None
    queries = spec["queries"]
    ratios = np.array([float(q.get("ratio", 0.0)) for q in queries])
    ratios = ratios / ratios.sum()

    with ServeClient(host, port) as admin:
        info = admin.request({"op": "graphs"})
        if info["status"] != "ok":
            raise ServeError(f"graphs op failed: {info}")
        graph_nodes = {name: g["nodes"] for name, g in info["result"].items()}
    for q in queries:
        if q["graph"] not in graph_nodes:
            raise ServeError(
                f"spec queries graph {q['graph']!r} not loaded on the server"
            )

    reference = None
    if spec.get("verify", True):
        srv_spec = dict(spec.get("server") or {})
        reference = _Reference(
            srv_spec.get("scale", "tiny"), int(srv_spec.get("seed", 7))
        )

    issued = [0]
    issued_lock = threading.Lock()
    phase = ["before" if chaos else "recovery"]
    records: list[dict] = []
    records_lock = threading.Lock()
    per_client = [total // clients] * clients
    for i in range(total % clients):
        per_client[i] += 1

    def make_request(rng: np.random.Generator) -> dict:
        q = queries[int(rng.choice(len(queries), p=ratios))]
        req: dict = {
            "op": q["op"],
            "graph": q["graph"],
            "deadline_ms": deadline_ms,
        }
        n = graph_nodes[q["graph"]]
        if q["op"] == "sssp":
            # a pinned source: makes every client hit the same batch key
            # (the batching-window burst specs); targets stay random —
            # they are answered from the shared distance row
            req["source"] = (
                int(q["source"]) if "source" in q else int(rng.integers(n))
            )
            req["target"] = int(rng.integers(n))
        elif q["op"] == "pr_topk":
            req["k"] = int(q.get("k", 10))
        elif q["op"] == "bc_node":
            req["node"] = (
                int(q["node"]) if "node" in q else int(rng.integers(n))
            )
            req["num_sources"] = int(q.get("num_sources", 4))
            req["seed"] = int(q.get("seed", 0))
        return req

    def client_main(idx: int, count: int) -> None:
        rng = np.random.default_rng(int(spec["seed"]) + idx)
        with ServeClient(host, port, timeout=max(30.0, deadline_ms / 250.0)) as c:
            for _ in range(count):
                req = make_request(rng)
                with issued_lock:
                    issued[0] += 1
                t0 = time.perf_counter()
                try:
                    resp = c.request(req)
                except ProtocolError:
                    resp = {"status": "error", "error": "connection lost"}
                latency_ms = (time.perf_counter() - t0) * 1000.0
                rec = {
                    "op": req["op"],
                    "graph": req["graph"],
                    "status": resp.get("status", "error"),
                    "degraded": bool(resp.get("degraded")),
                    "batched": bool(
                        (resp.get("result") or {}).get("batched")
                    ),
                    "latency_ms": latency_ms,
                    "phase": phase[0],
                }
                if (
                    reference is not None
                    and rec["status"] == "ok"
                    and not rec["degraded"]
                ):
                    rec["correct"] = reference.check(req, resp.get("result", {}))
                with records_lock:
                    records.append(rec)

    def chaos_main() -> None:
        start_at = int(float(chaos.get("start_fraction", 0.3)) * total)
        stop_at = int(float(chaos.get("stop_fraction", 0.6)) * total)
        with ServeClient(host, port) as c:
            while issued[0] < start_at:
                time.sleep(0.005)
            phase[0] = "fault"
            resp = c.request({"op": "chaos", "spec": chaos["faults"]})
            if resp["status"] != "ok":
                raise ServeError(f"failed to arm chaos: {resp}")
            logger.info("chaos window open (%s)", chaos["faults"])
            while issued[0] < stop_at:
                time.sleep(0.005)
            resp = c.request({"op": "chaos", "spec": ""})
            phase[0] = "recovery"
            logger.info("chaos window closed")

    threads = [
        threading.Thread(target=client_main, args=(i, per_client[i]), daemon=True)
        for i in range(clients)
    ]
    controller = (
        threading.Thread(target=chaos_main, daemon=True) if chaos else None
    )
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    if controller is not None:
        controller.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if controller is not None:
        controller.join(timeout=5.0)

    server_snapshot = None
    if spec.get("slo") or spec.get("server_kpis"):
        with ServeClient(host, port) as admin:
            resp = admin.request({"op": "stats"})
            if resp["status"] != "ok":
                raise ServeError(f"stats op failed: {resp}")
            server_snapshot = resp["result"]

    report = _report(spec, records, wall, server_snapshot=server_snapshot)
    return report


# ---------------------------------------------------------------------------
# metrics + KPI gating
# ---------------------------------------------------------------------------
def _phase_metrics(records: list[dict], wall_seconds: float | None) -> dict:
    n = len(records)
    by_status: dict[str, int] = {}
    for r in records:
        by_status[r["status"]] = by_status.get(r["status"], 0) + 1
    completed = [r for r in records if r["status"] == "ok"]
    lat = np.array([r["latency_ms"] for r in completed]) if completed else None
    degraded = sum(1 for r in completed if r["degraded"])
    batched = sum(1 for r in completed if r.get("batched"))
    wrong = sum(1 for r in records if r.get("correct") is False)
    verified = sum(1 for r in records if "correct" in r)
    out = {
        "requests": n,
        "ok": len(completed),
        "statuses": by_status,
        "ok_rate": len(completed) / n if n else 0.0,
        "shed_rate": by_status.get("overloaded", 0) / n if n else 0.0,
        "timeout_rate": by_status.get("timeout", 0) / n if n else 0.0,
        "error_rate": by_status.get("error", 0) / n if n else 0.0,
        "degraded": degraded,
        "degraded_rate": degraded / len(completed) if completed else 0.0,
        "batched": batched,
        "batched_rate": batched / len(completed) if completed else 0.0,
        "verified": verified,
        "wrong": wrong,
        "q50_ms": float(np.percentile(lat, 50)) if lat is not None else None,
        "q90_ms": float(np.percentile(lat, 90)) if lat is not None else None,
        "q99_ms": float(np.percentile(lat, 99)) if lat is not None else None,
        "mean_ms": float(lat.mean()) if lat is not None else None,
    }
    if wall_seconds is not None:
        out["wall_seconds"] = round(wall_seconds, 4)
        out["qps"] = len(completed) / wall_seconds if wall_seconds > 0 else 0.0
    return out


def evaluate_kpis(kpis: list, metrics: dict) -> list[dict]:
    """Evaluate ``le:``/``ge:`` clauses against a metrics dict."""
    results = []
    for clause in kpis or []:
        if not isinstance(clause, dict) or len(clause) != 1:
            raise ServeError(f"malformed kpi clause {clause!r}")
        op, body = next(iter(clause.items()))
        if op not in ("le", "ge") or not isinstance(body, dict) or len(body) != 1:
            raise ServeError(f"malformed kpi clause {clause!r}")
        metric, threshold = next(iter(body.items()))
        value = metrics.get(metric)
        if value is None:
            ok = False
        elif op == "le":
            ok = value <= float(threshold)
        else:
            ok = value >= float(threshold)
        results.append(
            {
                "metric": metric,
                "op": op,
                "threshold": float(threshold),
                "value": None if value is None else round(float(value), 6),
                "pass": bool(ok),
            }
        )
    return results


def _slo_gates(spec: dict, snapshot: dict | None) -> tuple[list[dict], list[dict]]:
    """(kpi gates, slo statuses) from the spec's ``slo:`` block."""
    from ..obs.slo import slo_from_spec

    gates: list[dict] = []
    statuses: list[dict] = []
    for raw in spec.get("slo") or []:
        slo = slo_from_spec(raw)
        st = slo.evaluate(snapshot or {})
        statuses.append(st)
        gates.append(
            {
                "metric": f"slo:{slo.name}:compliance",
                "op": "ge",
                "threshold": slo.target,
                "value": round(st["compliance"], 6),
                "pass": bool(st["ok"]),
            }
        )
        if raw.get("max_burn_rate") is not None:
            gates.append(
                {
                    "metric": f"slo:{slo.name}:burn_rate",
                    "op": "le",
                    "threshold": float(raw["max_burn_rate"]),
                    "value": st["burn_rate"],
                    "pass": st["burn_rate"] <= float(raw["max_burn_rate"]),
                }
            )
    return gates, statuses


def _report(
    spec: dict,
    records: list[dict],
    wall: float,
    *,
    server_snapshot: dict | None = None,
) -> dict:
    chaos = spec.get("chaos") or None
    overall = _phase_metrics(records, wall)
    report: dict = {
        "name": spec.get("name", "serve-load"),
        "created": time.time(),
        "clients": int(spec["clients"]),
        "requests": int(spec["requests"]),
        "seed": int(spec["seed"]),
        "deadline_ms": float(spec["deadline_ms"]),
        "chaos": bool(chaos),
        "overall": overall,
    }
    gates = evaluate_kpis(spec.get("kpis") or [], overall)
    if chaos:
        phases = {
            ph: _phase_metrics([r for r in records if r["phase"] == ph], None)
            for ph in PHASES
        }
        report["phases"] = phases
        gates += [
            dict(g, phase="recovery")
            for g in evaluate_kpis(chaos.get("kpis") or [], phases["recovery"])
        ]
    if spec.get("verify", True):
        gates.append(
            {
                "metric": "wrong",
                "op": "le",
                "threshold": 0.0,
                "value": overall["wrong"],
                "pass": overall["wrong"] == 0,
            }
        )
    if spec.get("slo"):
        slo_gates, slo_statuses = _slo_gates(spec, server_snapshot)
        gates += slo_gates
        report["slo"] = slo_statuses
    if spec.get("server_kpis"):
        # gate directly on the drained server's own counters (the
        # batching-window burst specs assert serve.batch.* this way); a
        # counter the server never bumped reads as 0, not as missing
        server_counters = dict((server_snapshot or {}).get("counters") or {})
        for clause in spec["server_kpis"]:
            if isinstance(clause, dict) and len(clause) == 1:
                body = next(iter(clause.values()))
                if isinstance(body, dict) and len(body) == 1:
                    server_counters.setdefault(next(iter(body)), 0.0)
        gates += [
            dict(g, scope="server")
            for g in evaluate_kpis(spec["server_kpis"], server_counters)
        ]
    report["kpis"] = gates
    report["ok"] = all(g["pass"] for g in gates)
    return report


# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench serve",
        description="Run a YAML load spec against the analytics server and "
        "gate on its kpis: block (redisbench-admin style).",
    )
    parser.add_argument("--spec", required=True, help="path to the YAML load spec")
    parser.add_argument(
        "--out", default="BENCH_SERVE.json", help="report path (default BENCH_SERVE.json)"
    )
    parser.add_argument("--host", default=None, help="target a live server instead")
    parser.add_argument("--port", default=None, type=int)
    args = parser.parse_args(argv)

    spec = load_spec(args.spec)
    report = run_spec(spec, host=args.host, port=args.port)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    o = report["overall"]
    print(f"serve bench: {report['name']} — {o['requests']} requests, "
          f"{o['ok']} ok, qps {o.get('qps', 0.0):.1f}")
    if o["q50_ms"] is not None:
        print(f"  latency q50 {o['q50_ms']:.2f}ms  q90 {o['q90_ms']:.2f}ms  "
              f"q99 {o['q99_ms']:.2f}ms")
    print(f"  shed {o['shed_rate']:.1%}  timeout {o['timeout_rate']:.1%}  "
          f"degraded {o['degraded_rate']:.1%}  wrong {o['wrong']}")
    for g in report["kpis"]:
        mark = "PASS" if g["pass"] else "FAIL"
        scope = f" [{g['phase']}]" if "phase" in g else ""
        print(f"  {mark} {g['metric']} {g['op']} {g['threshold']}"
              f" (value {g['value']}){scope}")
    print(f"report written to {args.out}")
    return 0 if report["ok"] else 1
