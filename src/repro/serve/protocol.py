"""The serve wire protocol: line-delimited JSON over TCP.

One request is one JSON object on one ``\\n``-terminated UTF-8 line; the
response is one JSON object on one line.  A connection may pipeline any
number of requests; responses come back in order.

Request fields:

``op``
    required — one of :data:`QUERY_OPS` (analytics) or
    :data:`ADMIN_OPS` (probes/inspection):

    * ``sssp`` — params ``graph``, ``source``, optional ``target``;
      answers the distance to ``target`` or a reachability summary;
    * ``pr_topk`` — params ``graph``, optional ``k`` (default 10);
      answers the top-k ``[node, rank]`` pairs;
    * ``bc_node`` — params ``graph``, ``node``, optional
      ``num_sources``/``seed``; answers the node's sampled BC score;
    * ``ping`` / ``health`` / ``graphs`` / ``stats`` — liveness,
      readiness + pressure, the loaded graph inventory, and a metrics
      snapshot; never queued behind analytics work;
    * ``metrics`` — the live registry as Prometheus text exposition
      (``result.text``), scrapeable off a running server;
    * ``slo`` — objective status: per-SLO compliance, error-budget
      consumption, and multi-window burn rates (``repro.obs.slo``);
    * ``chaos`` — arm/disarm a ``REPRO_FAULTS`` plan in the server
      process (only honored when the server was started with
      ``allow_chaos``; the loadgen's chaos mode uses this).

``id``
    optional client-chosen correlation id, echoed back verbatim.
``deadline_ms``
    optional latency budget; omitted means the server default.
``technique``
    optional execution plan to serve from (default ``exact``); the
    degradation ladder may substitute the approximate plan under
    pressure — footnoted in the response.

Response fields: ``id``, ``status`` (one of :data:`STATUSES`),
``result`` (op-specific, on ``ok``), ``error`` (message, otherwise),
``degraded`` + ``degraded_reason`` (the PR-1 footnote convention),
``retry_after_ms`` (on ``overloaded``), ``server_ms`` (measured
service time).
"""

from __future__ import annotations

import json
import math
import socket
from typing import Any

from ..errors import ProtocolError

__all__ = [
    "QUERY_OPS",
    "ADMIN_OPS",
    "STATUSES",
    "encode",
    "decode_line",
    "parse_request",
    "response",
    "error_response",
    "ServeClient",
]

QUERY_OPS = ("sssp", "pr_topk", "bc_node")
ADMIN_OPS = ("ping", "health", "graphs", "stats", "metrics", "slo", "chaos")
STATUSES = ("ok", "error", "overloaded", "timeout", "shutting_down")

#: refuse absurd lines before json-decoding them (memory robustness)
MAX_LINE_BYTES = 1 << 20


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line into a dict, or raise ProtocolError."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def parse_request(obj: dict) -> dict:
    """Validate the envelope fields of a decoded request."""
    op = obj.get("op")
    if not isinstance(op, str) or op not in QUERY_OPS + ADMIN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; choose from {QUERY_OPS + ADMIN_OPS}"
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        # bool is an int subclass and NaN compares False against <= 0,
        # so both need explicit rejection
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not math.isfinite(deadline_ms)
            or deadline_ms <= 0
        ):
            raise ProtocolError("deadline_ms must be a positive finite number")
    technique = obj.get("technique")
    if technique is not None and not isinstance(technique, str):
        raise ProtocolError("technique must be a string")
    return obj


def response(
    req: dict | None,
    status: str,
    *,
    result: Any = None,
    degraded: bool = False,
    degraded_reason: str = "",
    **extra: Any,
) -> dict:
    """Build a response envelope for ``req`` (None for unparseable lines)."""
    out: dict[str, Any] = {"status": status}
    if req is not None and "id" in req:
        out["id"] = req["id"]
    if result is not None:
        out["result"] = result
    if degraded:
        out["degraded"] = True
        out["degraded_reason"] = degraded_reason
    out.update(extra)
    return out


def error_response(req: dict | None, status: str, message: str, **extra: Any) -> dict:
    return response(req, status, error=message, **extra)


class ServeClient:
    """A blocking line-protocol client (tests, loadgen, simple tooling)."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 10.0
    ) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self.sock.makefile("rb")

    def request(self, obj: dict) -> dict:
        """Send one request and block for its response."""
        self.sock.sendall(encode(obj))
        line = self._file.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
