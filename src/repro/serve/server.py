"""The long-lived TCP server wrapping :class:`GraphService`.

Architecture: one acceptor thread, one handler thread per connection,
and a shared :class:`~repro.serve.admission.AdmissionGate` sized to the
configured worker count — so however many connections are open, at most
``workers`` queries execute concurrently, at most ``max_queue_depth``
wait, and everything beyond that is shed with an explicit
``overloaded`` response.  Admin ops (``ping``/``health``/``graphs``/
``stats``/``metrics``/``slo``/``chaos``) bypass admission entirely: a
health probe must answer even when the query queue is saturated.

The server owns an :class:`~repro.obs.slo.SLOTracker` over the standing
serve objectives (``default_serve_slos``): every handled request ticks
it (rate-limited internally), and the resulting fast-window burn rate
feeds the degradation ladder alongside admission wait and queue
occupancy — so budget-burning failure modes trigger degradation even
when the queue looks healthy.  ``metrics`` answers the live registry in
Prometheus text exposition; ``slo`` answers full objective status.

Failure mapping (one request can never take the connection down):

=====================================  ======================
raised by the pipeline                 response ``status``
=====================================  ======================
:class:`~repro.errors.Overloaded`      ``overloaded`` (+ retry_after_ms)
:class:`~repro.errors.DeadlineExceeded`  ``timeout``
:class:`~repro.errors.ProtocolError`   ``error``
any other exception                    ``error`` (counted on
                                       ``serve.requests.error``)
=====================================  ======================

Lifecycle: :meth:`start` binds and reports ready only after the service
finished its startup self-check; :meth:`stop` (the SIGTERM path) drains
gracefully — new queries answer ``shutting_down``, in-flight queries
finish (bounded by ``drain_seconds``), then metrics/trace sinks are
flushed and sockets closed.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

from ..errors import DeadlineExceeded, Overloaded, ProtocolError, ReproError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..obs.slo import SLOTracker, default_serve_slos
from ..resilience import faults
from .admission import AdmissionGate
from .deadline import Deadline
from .protocol import (
    ADMIN_OPS,
    decode_line,
    encode,
    error_response,
    parse_request,
    response,
)
from .service import GraphService, ServeConfig, STAGE_BUCKETS

__all__ = ["ReproServer"]

logger = get_logger("serve.server")


class ReproServer:
    """Accepts line-protocol connections and serves analytics queries."""

    def __init__(
        self, config: ServeConfig | None = None, *, service: GraphService | None = None
    ) -> None:
        if service is not None:
            self.service = service
            self.config = service.config
        else:
            self.config = config or ServeConfig()
            self.service = GraphService(self.config)
        cfg = self.config
        self.gate = AdmissionGate(cfg.workers, cfg.max_queue_depth)
        self.slo_tracker = SLOTracker(default_serve_slos())
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started_at = 0.0
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind, listen, and start accepting; returns the bound port."""
        if self._listener is not None:
            raise ReproError("server already started")
        cfg = self.config
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((cfg.host, cfg.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._started_at = time.monotonic()
        acceptor = threading.Thread(
            target=self._accept_loop, name="serve-acceptor", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        logger.info("listening on %s:%d (%d workers)", cfg.host, self.port, cfg.workers)
        return self.port

    def run(self) -> None:
        """Block until :meth:`stop` completes (the CLI foreground path)."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown: reject new work, finish in-flight, flush."""
        if self._stopped.is_set():
            return
        self._draining.set()
        logger.info("draining: rejecting new queries, finishing in-flight")
        if drain:
            deadline = time.monotonic() + self.config.drain_seconds
            while time.monotonic() < deadline:
                if self.gate.active == 0 and self.gate.queue_depth == 0:
                    break
                time.sleep(0.01)
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._flush_observability()
        self._stopped.set()
        logger.info("server stopped")

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _flush_observability(self) -> None:
        cfg = self.config
        if cfg.metrics_out:
            snap = obs_metrics.snapshot()
            Path(cfg.metrics_out).write_text(json.dumps(snap, indent=2) + "\n")
            logger.info("flushed metrics snapshot to %s", cfg.metrics_out)
        if cfg.trace_out:
            tracer = obs_trace.get_tracer()
            if tracer is not None:
                tracer.export_jsonl(cfg.trace_out)
                logger.info("flushed trace to %s", cfg.trace_out)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._draining.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            t.start()
            self._threads.append(t)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rb") as reader:
                for line in reader:
                    line = line.strip()
                    if not line:
                        continue
                    resp = self.handle_line(line)
                    try:
                        conn.sendall(encode(resp))
                    except OSError:
                        return
        except OSError:
            pass
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    # ------------------------------------------------------------------
    # request dispatch (also the in-process entry point for tests)
    # ------------------------------------------------------------------
    def handle_line(self, line: bytes) -> dict:
        """Decode, dispatch, and answer one protocol line."""
        obs_metrics.counter("serve.requests.total").inc()
        try:
            req = parse_request(decode_line(line))
        except ProtocolError as exc:
            obs_metrics.counter("serve.requests.error").inc()
            return error_response(None, "error", str(exc))
        return self.handle_request(req)

    def handle_request(self, req: dict) -> dict:
        op = req["op"]
        if op in ADMIN_OPS:
            return self._handle_admin(req)
        # queries get their own denominator: serve.requests.total counts
        # every protocol line (admin probes included), which would make
        # an availability objective treat each health check as a failure
        obs_metrics.counter("serve.queries.total").inc()
        if self._draining.is_set():
            obs_metrics.counter("serve.requests.shutting_down").inc()
            return error_response(req, "shutting_down", "server is draining")
        deadline = Deadline.from_ms(
            req.get("deadline_ms", self.config.default_deadline_ms)
        )
        t0 = time.perf_counter()
        status = "ok"
        try:
            with obs_trace.span("serve.request", op=op) as sp:
                with self.gate.admit(deadline) as wait:
                    self.service.ladder.observe(
                        wait, self.gate.occupancy(), self.slo_tracker.burn_rate
                    )
                    resp = self.service.execute(req, deadline)
                if sp is not None:
                    sp.set(
                        status=resp["status"],
                        degraded=bool(resp.get("degraded")),
                        wait_ms=wait * 1000.0,
                    )
        except Overloaded as exc:
            status = "overloaded"
            resp = error_response(
                req, status, str(exc), retry_after_ms=exc.retry_after_ms
            )
        except DeadlineExceeded as exc:
            status = "timeout"
            resp = error_response(req, status, str(exc))
        except ProtocolError as exc:
            status = "error"
            resp = error_response(req, status, str(exc))
        except Exception as exc:  # a request must never kill its worker
            status = "error"
            logger.warning("query %s failed: %s", op, exc)
            resp = error_response(req, status, f"{type(exc).__name__}: {exc}")
        elapsed = time.perf_counter() - t0
        obs_metrics.counter(f"serve.requests.{status}").inc()
        obs_metrics.histogram("serve.request.time", STAGE_BUCKETS).observe(elapsed)
        # tick after the outcome counters land, so the burn the *next*
        # request hands the ladder already reflects this one
        self.slo_tracker.observe()
        resp["server_ms"] = round(elapsed * 1000.0, 3)
        return resp

    # ------------------------------------------------------------------
    def _handle_admin(self, req: dict) -> dict:
        op = req["op"]
        if op == "ping":
            return response(req, "ok", result={"pong": True})
        if op == "health":
            return response(req, "ok", result=self.health())
        if op == "graphs":
            return response(req, "ok", result=self.service.graphs_info())
        if op == "stats":
            return response(req, "ok", result=obs_metrics.snapshot())
        if op == "metrics":
            return response(
                req, "ok",
                result={
                    "content_type": "text/plain; version=0.0.4",
                    "text": obs_metrics.prometheus_text(),
                },
            )
        if op == "slo":
            return response(req, "ok", result=self.slo_tracker.status())
        if op == "chaos":
            return self._handle_chaos(req)
        raise ProtocolError(f"unhandled admin op {op!r}")  # pragma: no cover

    def health(self) -> dict:
        """Readiness + pressure snapshot (the ``health`` admin op)."""
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "ready": self._listener is not None,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "queue_depth": self.gate.queue_depth,
            "active_workers": self.gate.active,
            "max_workers": self.gate.max_concurrency,
            "pressure_level": self.service.ladder.level,
            "pressure_ewma_wait_ms": round(
                self.service.ladder.pressure * 1000.0, 3
            ),
            "slo_burn_rate": round(self.slo_tracker.burn_rate, 6),
            "breaker": self.service.breaker.state,
        }

    def _handle_chaos(self, req: dict) -> dict:
        if not self.config.allow_chaos:
            obs_metrics.counter("serve.requests.error").inc()
            return error_response(
                req, "error", "chaos op disabled (start with allow_chaos)"
            )
        spec = req.get("spec", "")
        if not isinstance(spec, str):
            return error_response(req, "error", "chaos spec must be a string")
        if spec:
            injector = faults.install(spec)
            armed = len(injector.rules)
            logger.warning("chaos armed: %d fault rule(s) (%s)", armed, spec)
        else:
            faults.reset()
            armed = 0
            logger.warning("chaos disarmed")
        obs_metrics.counter("serve.chaos.toggles").inc()
        return response(req, "ok", result={"armed_rules": armed})
