"""The analytics service: hot plans + deadline-aware query execution.

:class:`GraphService` owns the state a long-lived server keeps hot:

* the graph suite (:func:`repro.graphs.generators.paper_suite` at a
  configured scale/seed — deterministic, so clients and load generators
  can rebuild bit-identical references);
* one pre-transformed :class:`~repro.core.pipeline.ExecutionPlan` per
  (graph, technique), built through :mod:`repro.cache` so a restart with
  a disk cache warm-starts, with the serve circuit breaker guarding that
  disk tier;
* a startup **self-check**: every preloaded plan is run through the
  :mod:`repro.verify` structural oracles before the server reports
  ready — a corrupt cache entry or a bad transform can not silently
  serve wrong answers.

:meth:`GraphService.execute` answers one query under a
:class:`~repro.serve.deadline.Deadline`: the budget is checked between
stages (plan fetch → solve → serialize) and inside the sweep loops via
:class:`~repro.serve.deadline.DeadlineRunner`, and the degradation
ladder may substitute the approximate plan (footnoted) before any work
starts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import cache as repro_cache
from ..algorithms.bc import betweenness_centrality
from ..algorithms.pagerank import pagerank
from ..algorithms.sssp import sssp
from ..core.pipeline import TECHNIQUES, ExecutionPlan, build_plan
from ..errors import ProtocolError, ServeError
from ..graphs.csr import CSRGraph
from ..graphs.generators import paper_suite
from ..gpusim.device import DeviceConfig, K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..perf.batched import sssp_batched
from ..resilience.faults import fault_point
from ..verify.invariants import verify_plan
from .batching import BatchWindow
from .breaker import CircuitBreaker
from .deadline import Deadline, deadline_runner_factory
from .degrade import DegradationLadder, tuned_overrides_from_report

__all__ = ["ServeConfig", "GraphService"]

logger = get_logger("serve.service")

#: histogram buckets for per-stage service time (seconds, ms-scale)
STAGE_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)


@dataclass
class ServeConfig:
    """Everything the server and service need, in one place."""

    scale: str = "tiny"
    seed: int = 7
    techniques: tuple[str, ...] = ("exact", "coalescing")
    default_technique: str = "exact"
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    max_queue_depth: int = 16
    default_deadline_ms: float = 2000.0
    drain_seconds: float = 10.0
    cache_dir: str | None = None
    self_check: bool = True
    allow_chaos: bool = False
    device: DeviceConfig = K40C
    # breaker knobs (disk cache tier)
    breaker_failure_threshold: int = 3
    breaker_slow_call_seconds: float = 0.25
    breaker_cooldown_seconds: float = 2.0
    # degradation ladder knobs
    degradation: bool = True
    approx_technique: str = "coalescing"
    level1_wait_ms: float = 50.0
    level2_wait_ms: float = 200.0
    # BENCH_TUNE.json (or its serve block) driving level-2 reduced-work
    # knobs; None keeps the historical halving fallbacks
    tune_config: str | None = None
    # query batching window (0 = disabled): same-graph/same-algorithm
    # queries arriving within the window share one batched sweep
    batch_window_ms: float = 0.0
    batch_max_lanes: int = 8
    # observability sinks flushed on drain
    metrics_out: str | None = None
    trace_out: str | None = None
    extra_graphs: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for t in tuple(self.techniques) + (self.default_technique, self.approx_technique):
            if t not in TECHNIQUES:
                raise ServeError(
                    f"unknown technique {t!r}; choose from {TECHNIQUES}"
                )
        if self.default_technique not in self.techniques:
            raise ServeError("default_technique must be in techniques")
        if self.approx_technique not in self.techniques:
            raise ServeError("approx_technique must be in techniques")
        if self.workers < 1:
            raise ServeError("workers must be >= 1")
        if self.batch_window_ms < 0:
            raise ServeError("batch_window_ms must be >= 0")
        if self.batch_max_lanes < 1:
            raise ServeError("batch_max_lanes must be >= 1")


class GraphService:
    """Executes analytics queries over pre-transformed hot plans."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.breaker = CircuitBreaker(
            "disk",
            failure_threshold=config.breaker_failure_threshold,
            slow_call_seconds=config.breaker_slow_call_seconds,
            cooldown_seconds=config.breaker_cooldown_seconds,
        )
        tuned_overrides = None
        if config.tune_config:
            import json
            from pathlib import Path

            try:
                tuned_overrides = tuned_overrides_from_report(
                    json.loads(Path(config.tune_config).read_text())
                )
            except (OSError, ValueError) as exc:
                raise ServeError(
                    f"bad tune config {config.tune_config!r}: {exc}"
                ) from exc
            logger.info(
                "tuned level-2 overrides from %s: %s",
                config.tune_config, tuned_overrides,
            )
        self.ladder = DegradationLadder(
            approx_technique=config.approx_technique,
            level1_wait_seconds=config.level1_wait_ms / 1000.0,
            level2_wait_seconds=config.level2_wait_ms / 1000.0,
            enabled=config.degradation,
            tuned_overrides=tuned_overrides,
        )
        if config.cache_dir is not None:
            cfg = repro_cache.configure(cache_dir=config.cache_dir)
            if cfg.disk is not None:
                cfg.disk.breaker = self.breaker
        with obs_trace.span("serve.startup.graphs", scale=config.scale):
            self.graphs: dict[str, CSRGraph] = dict(
                paper_suite(config.scale, seed=config.seed)
            )
            self.graphs.update(config.extra_graphs)
        self._plans: dict[tuple[str, str], ExecutionPlan] = {}
        self._plan_lock = threading.Lock()
        with obs_trace.span("serve.startup.plans"):
            for name in self.graphs:
                for technique in config.techniques:
                    self._plans[(name, technique)] = build_plan(
                        self.graphs[name], technique, device=config.device
                    )
        self.batcher = (
            BatchWindow(config.batch_window_ms / 1000.0, config.batch_max_lanes)
            if config.batch_window_ms > 0
            else None
        )
        if config.self_check:
            self.self_check()
        logger.info(
            "service ready: %d graphs x %s (%d plans hot)",
            len(self.graphs), list(config.techniques), len(self._plans),
        )

    # ------------------------------------------------------------------
    def self_check(self) -> None:
        """Run the structural oracles over every hot plan (startup gate).

        Raises :class:`~repro.errors.VerificationError` on the first
        violating plan — a server that would serve from a broken plan
        must fail readiness, not answer queries.
        """
        with obs_trace.span("serve.startup.self_check", plans=len(self._plans)):
            for (name, technique), plan in self._plans.items():
                verify_plan(self.graphs[name], plan)
                obs_metrics.counter("serve.self_check.plans").inc()
        logger.info("startup self-check passed on %d plans", len(self._plans))

    def plan(self, graph: str, technique: str) -> ExecutionPlan:
        """The hot plan for (graph, technique), building it on first use."""
        key = (graph, technique)
        hot = self._plans.get(key)
        if hot is not None:
            return hot
        if graph not in self.graphs:
            raise ProtocolError(
                f"unknown graph {graph!r}; choose from {sorted(self.graphs)}"
            )
        if technique not in TECHNIQUES:
            raise ProtocolError(f"unknown technique {technique!r}")
        with self._plan_lock:
            hot = self._plans.get(key)
            if hot is None:
                hot = self._plans[key] = build_plan(
                    self.graphs[graph], technique, device=self.config.device
                )
        return hot

    def graphs_info(self) -> dict[str, dict[str, int]]:
        """The loaded graph inventory (the ``graphs`` admin op)."""
        return {
            name: {"nodes": int(g.num_nodes), "edges": int(g.num_edges)}
            for name, g in self.graphs.items()
        }

    # ------------------------------------------------------------------
    def execute(self, req: dict, deadline: Deadline) -> dict:
        """Answer one validated query request; returns the response dict.

        Raises :class:`DeadlineExceeded` on budget expiry and
        :class:`ProtocolError` on bad parameters — the server maps both
        to response statuses.
        """
        from .protocol import response

        op = req["op"]
        graph_name = req.get("graph")
        if not isinstance(graph_name, str) or graph_name not in self.graphs:
            raise ProtocolError(
                f"unknown graph {graph_name!r}; choose from {sorted(self.graphs)}"
            )
        requested = req.get("technique") or self.config.default_technique
        params = {
            k: v
            for k, v in req.items()
            if k not in ("op", "id", "graph", "technique", "deadline_ms")
        }
        technique, params, reason = self.ladder.apply(op, requested, params)
        degraded = bool(reason)
        if degraded:
            obs_metrics.counter("serve.requests.degraded").inc()

        with obs_trace.span(
            "serve.execute", op=op, graph=graph_name, technique=technique
        ):
            fault_point("serve", f"{op}:{graph_name}")
            deadline.check("plan")
            t0 = _now()
            plan = self.plan(graph_name, technique)
            _stage_time("plan", t0)

            deadline.check("solve")
            t0 = _now()
            batch_key = (graph_name, technique)
            if op == "sssp":
                result = self._sssp(plan, params, deadline, batch_key=batch_key)
            elif op == "pr_topk":
                result = self._pr_topk(plan, params, deadline)
            elif op == "bc_node":
                result = self._bc_node(plan, params, deadline, batch_key=batch_key)
            else:  # pragma: no cover - parse_request rejects these
                raise ProtocolError(f"op {op!r} is not a query op")
            _stage_time("solve", t0)

            deadline.check("serialize")
        result["technique"] = technique
        return response(
            req, "ok", result=result, degraded=degraded, degraded_reason=reason
        )

    # ------------------------------------------------------------------
    def _sssp(
        self,
        plan: ExecutionPlan,
        params: dict,
        deadline: Deadline,
        *,
        batch_key: tuple | None = None,
    ) -> dict:
        source = _int_param(params, "source", required=True)
        n = plan.num_original
        if not 0 <= source < n:
            raise ProtocolError(f"source {source} out of range for n={n}")
        target = _int_param(params, "target", required=False)
        if target is not None and not 0 <= target < n:
            raise ProtocolError(f"target {target} out of range for n={n}")

        def solo(src: int, dl: Deadline) -> tuple[np.ndarray, int]:
            res = sssp(
                plan,
                src,
                device=self.config.device,
                runner_factory=deadline_runner_factory(dl),
            )
            return res.values, int(res.iterations)

        if self.batcher is not None and batch_key is not None:

            def batch(sources: list[int], dl: Deadline) -> list:
                res = sssp_batched(
                    plan,
                    sources,
                    device=self.config.device,
                    runner_factory=deadline_runner_factory(dl),
                    deadline=dl,
                )
                return [
                    (res.values[i], int(res.iterations[i]))
                    for i in range(len(sources))
                ]

            (dist, iters), lanes = self.batcher.run(
                ("sssp",) + batch_key, source, deadline, batch, solo
            )
        else:
            (dist, iters), lanes = solo(source, deadline), 1

        out: dict[str, Any] = {"source": source, "iterations": iters}
        if lanes > 1:
            out["batched"] = True
            out["batch_lanes"] = lanes
        if target is not None:
            d = float(dist[target])
            out["target"] = target
            out["reachable"] = bool(np.isfinite(d))
            out["distance"] = d if np.isfinite(d) else None
        else:
            finite = np.isfinite(dist)
            out["reached"] = int(finite.sum())
            out["total_distance"] = float(dist[finite].sum())
        return out

    def _pr_topk(self, plan: ExecutionPlan, params: dict, deadline: Deadline) -> dict:
        k = _int_param(params, "k", required=False)
        k = 10 if k is None else k
        if k < 1:
            raise ProtocolError("k must be >= 1")
        tol = _float_param(params, "tol", default=1e-8)
        if tol <= 0:
            raise ProtocolError("tol must be > 0")
        res = pagerank(
            plan,
            tol=tol,
            device=self.config.device,
            runner_factory=deadline_runner_factory(deadline),
        )
        ranks = res.values
        k = min(k, ranks.size)
        # deterministic top-k: rank descending, node id ascending on ties
        order = np.lexsort((np.arange(ranks.size), -ranks))[:k]
        return {
            "k": int(k),
            "iterations": int(res.iterations),
            "top": [[int(i), float(ranks[i])] for i in order],
        }

    def _bc_node(
        self,
        plan: ExecutionPlan,
        params: dict,
        deadline: Deadline,
        *,
        batch_key: tuple | None = None,
    ) -> dict:
        node = _int_param(params, "node", required=True)
        n = plan.num_original
        if not 0 <= node < n:
            raise ProtocolError(f"node {node} out of range for n={n}")
        num_sources = _int_param(params, "num_sources", required=False)
        num_sources = 8 if num_sources is None else num_sources
        if num_sources < 1:
            raise ProtocolError("num_sources must be >= 1")
        seed = _int_param(params, "seed", required=False)
        seed = 0 if seed is None else seed
        if seed < 0:
            raise ProtocolError("seed must be >= 0")

        def solo(nd: int, dl: Deadline) -> float:
            res = betweenness_centrality(
                plan,
                num_sources=num_sources,
                seed=seed,
                device=self.config.device,
                runner_factory=deadline_runner_factory(dl),
            )
            return float(res.values[nd])

        if self.batcher is not None and batch_key is not None:
            # one BC run answers every node in the group, and the batched
            # engine stacks its sampled sources into one sweep besides
            def batch(nodes: list[int], dl: Deadline) -> list[float]:
                res = betweenness_centrality(
                    plan,
                    num_sources=num_sources,
                    seed=seed,
                    engine="batched",
                    device=self.config.device,
                    runner_factory=deadline_runner_factory(dl),
                )
                return [float(res.values[nd]) for nd in nodes]

            key = ("bc_node",) + batch_key + (num_sources, seed)
            score, lanes = self.batcher.run(key, node, deadline, batch, solo)
        else:
            score, lanes = solo(node, deadline), 1

        out: dict[str, Any] = {
            "node": node,
            "num_sources": int(num_sources),
            "seed": int(seed),
            "score": score,
        }
        if lanes > 1:
            out["batched"] = True
            out["batch_lanes"] = lanes
        return out


def _now() -> float:
    import time

    return time.perf_counter()


def _stage_time(stage: str, t0: float) -> None:
    obs_metrics.histogram(f"serve.stage.{stage}", STAGE_BUCKETS).observe(
        _now() - t0
    )


def _int_param(params: dict, name: str, *, required: bool) -> int | None:
    value = params.get(name)
    if value is None:
        if required:
            raise ProtocolError(f"missing required param {name!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"param {name!r} must be an integer")
    if isinstance(value, float) and not value.is_integer():
        raise ProtocolError(f"param {name!r} must be an integer")
    return int(value)


def _float_param(params: dict, name: str, *, default: float) -> float:
    value = params.get(name)
    if value is None:
        return default
    # bool is an int subclass; NaN/inf survive float() and poison solves
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"param {name!r} must be a finite number")
    value = float(value)
    import math

    if not math.isfinite(value):
        raise ProtocolError(f"param {name!r} must be a finite number")
    return value
