"""Adaptive correction: runtime error control + the offline knob tuner.

Graffix fixes its three approximation knobs offline; GraphGuess
(PAPERS.md) shows the aggressiveness can instead be adapted *during*
execution against a runtime error budget, and Hong et al. motivate
keeping a cheap exact signal alive alongside the approximate sweeps.
This package supplies both halves:

* :mod:`repro.tune.proxies` — the cheap per-iteration error proxies
  (replica disagreement, residual mass, frontier mismatch against a
  sampled exact sweep);
* :mod:`repro.tune.controller` — :class:`AdaptiveController`, a
  :class:`~repro.algorithms.common.Runner` that steers the knobs'
  runtime counterparts against an :class:`ErrorBudget`, plugged into
  every algorithm through the existing ``runner_factory`` seam;
* :mod:`repro.tune.search` — the offline auto-tuner behind
  ``python -m repro tune``: per graph family it searches the
  knob × schedule space, layers the controller on the winner, caches
  winning configs through :mod:`repro.cache` and emits
  ``BENCH_TUNE.json``;
* :mod:`repro.tune.cli` — the CLI entry point.

See ``docs/tuning.md`` for the controller design and budget semantics.
"""

from .controller import AdaptiveController, ErrorBudget, adaptive_runner_factory
from .proxies import ProxyReadings, frontier_mismatch, replica_disagreement, residual_mass
from .search import run_tune, serve_overrides, tune_family

__all__ = [
    "AdaptiveController",
    "ErrorBudget",
    "ProxyReadings",
    "adaptive_runner_factory",
    "frontier_mismatch",
    "replica_disagreement",
    "residual_mass",
    "run_tune",
    "serve_overrides",
    "tune_family",
]
