"""``python -m repro tune`` — the offline knob auto-tuner CLI.

Runs :func:`repro.tune.search.run_tune` over the paper suite, prints a
per-family table, writes ``BENCH_TUNE.json`` and (optionally) appends
to the tune trajectory so ``repro obs diff`` can gate drift.  Exit code
is non-zero when ``--min-speedup`` is set and no family reaches it, or
when any family's tuned config blows the budget — the contract the
``tune-smoke`` CI job relies on.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from ..cache import memo
from ..obs import metrics as obs_metrics
from .search import DEFAULT_BUDGET_PERCENT, run_tune

__all__ = ["main"]

TUNE_REPORT_PATH = "BENCH_TUNE.json"
TRAJECTORY_PATH = "benchmarks/results/TRAJECTORY_TUNE.json"


def _format_report(report: dict) -> str:
    lines = [
        f"repro tune — scale={report['scale']} "
        f"budget={report['budget_percent']:.1f}% "
        f"{'(quick)' if report['quick'] else ''}".rstrip(),
        f"{'family':<12}{'technique':<12}{'schedule':<22}"
        f"{'static cyc':>12}{'tuned cyc':>12}{'vs static':>10}{'inacc %':>9}",
    ]
    for name, rec in sorted(report["families"].items()):
        sched = rec["schedule"] or "fixed-push"
        flag = "" if rec["within_budget"] else " !over-budget"
        lines.append(
            f"{name:<12}{rec['technique']:<12}{sched:<22}"
            f"{rec['static']['cycles']:>12.0f}"
            f"{rec['tuned']['cycles']:>12.0f}"
            f"{rec['speedup_vs_static']:>9.2f}x"
            f"{rec['tuned']['inaccuracy_percent']:>9.2f}{flag}"
        )
    agg = report.get("aggregate_speedup_vs_static")
    if agg is not None:
        lines.append(
            f"aggregate speedup vs best static: {agg:.2f}x "
            f"(best family {report['best_family']}: "
            f"{report['best_speedup_vs_static']:.2f}x)"
        )
    serve = report.get("serve", {})
    if serve:
        lines.append(
            f"serve level-2 overrides: bc num_sources="
            f"{serve['bc_node']['num_sources']}, "
            f"pr tol={serve['pr_topk']['tol']:.4g} "
            f"(probed on {report.get('serve_probe_family')})"
        )
    cache = report.get("cache", {})
    lines.append(
        f"cache: {cache.get('hits', 0)} hits, "
        f"{cache.get('misses', 0)} misses"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="offline knob auto-tuner (adaptive controller search)",
    )
    parser.add_argument(
        "--scale", default="tiny", help="suite scale (tiny/small/medium)"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_PERCENT,
        help="target inaccuracy budget in percent",
    )
    parser.add_argument(
        "--families",
        nargs="+",
        default=None,
        help="restrict to these suite families",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="SSSP-only probes and a smaller controller grid",
    )
    parser.add_argument("--out", default=TUNE_REPORT_PATH)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory (enables warm reuse across runs)",
    )
    parser.add_argument(
        "--record-trajectory",
        nargs="?",
        const=TRAJECTORY_PATH,
        default=None,
        help="append this run to the tune trajectory file",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless some family's speedup_vs_static reaches this",
    )
    args = parser.parse_args(argv)

    if args.cache_dir:
        memo.configure(cache_dir=args.cache_dir)

    report = run_tune(
        scale=args.scale,
        seed=args.seed,
        budget_percent=args.budget,
        families=args.families,
        quick=args.quick,
    )
    report["generated_unix"] = time.time()

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(_format_report(report))
    print(f"wrote {out}")

    if args.record_trajectory:
        from ..perf.bench import record_trajectory

        entry = record_trajectory(report, args.record_trajectory)
        print(
            f"recorded trajectory entry at commit {entry['commit']} "
            f"in {args.record_trajectory}"
        )

    obs_metrics.counter("tune.cli.runs")
    failures = []
    over = [n for n, r in report["families"].items() if not r["within_budget"]]
    if over:
        failures.append(f"families over budget: {', '.join(sorted(over))}")
    if args.min_speedup is not None:
        best = report.get("best_speedup_vs_static") or 0.0
        if best < args.min_speedup:
            failures.append(
                f"best speedup_vs_static {best:.2f}x "
                f"< required {args.min_speedup:.2f}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0
