"""The per-iteration adaptive controller over the Graffix knobs.

:class:`AdaptiveController` is a :class:`~repro.algorithms.common.Runner`
that monitors the :mod:`~repro.tune.proxies` during a solve and
tightens/loosens the *runtime counterparts* of the paper's three knobs
against an :class:`ErrorBudget`:

* **coalescing aggressiveness** → the confluence operator.  The paper's
  mean-confluence is where replica drift enters (§2.4); when the
  disagreement/mismatch pressure exceeds the budget the controller
  merges with the budget's ``safe_operator`` (``min`` for the
  distance-like monotone solves it fires on) instead — replicas resolve
  instead of averaging, which can only remove drift.
* **shmem clustering** → the §3 local iteration count.  While the
  proxies run far below budget the controller appends extra local
  cluster rounds after each global sweep: intra-cluster convergence at
  shared-memory rates displaces expensive global sweeps.
* **divergence normalization** → rectification by exact signal.  Every
  ``sample_every`` iterations the controller charges and runs one sweep
  over the *original* graph's edges (the frontier-mismatch probe); if
  the mismatch exceeds the budget, the exact sweep's relaxations are
  folded into the solve — the cheap exact signal Hong et al. keep alive
  alongside the approximate one.

The generic *loosen* lever is early termination: the envelope margins of
:meth:`~repro.algorithms.common.Runner.fixed_point` widen geometrically
while pressure stays low, and the solve stops outright once the residual
mass stays below ``stop_fraction × target`` for ``patience`` sweeps.
For PageRank the same rule arrives through the
:meth:`~repro.algorithms.common.Runner.keep_iterating` seam as a
loosened effective tolerance.

**The infinite-budget contract**: with ``target_percent = inf`` (the
default) the controller is *disabled* — every override delegates
straight to :class:`Runner`, no proxy is computed, nothing extra is
charged, and the run is byte-identical to a static-knob run (values,
iterations, charged cycles).  There is no error signal to steer against,
so neither tightening nor loosening ever fires.
``tests/test_tune_equivalence.py`` pins this bit-for-bit.

BFS and BC accept the controller through the same ``runner_factory``
seam but drive :attr:`Runner.ctx` directly (level-synchronous loops, the
Brandes passes), so they execute statically under it; their tuned
degradation path is the serve ladder's knob overrides instead
(``docs/tuning.md`` documents the reach of each lever).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..algorithms.common import Runner
from ..core.confluence import CONFLUENCE_OPERATORS
from ..core.pipeline import ExecutionPlan
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..perf.edgeshare import shared_edge_view
from . import proxies

__all__ = ["ErrorBudget", "AdaptiveController", "adaptive_runner_factory"]


@dataclass(frozen=True)
class ErrorBudget:
    """Target inaccuracy budget + controller gains.

    ``target_percent`` is in the units of the paper's inaccuracy metric
    (percent).  ``inf`` disables the controller entirely (see the
    infinite-budget contract above).  Every threshold scales with the
    target, so a tighter budget can only intervene more conservatively:
    stop later, loosen less, rectify and safe-merge more.
    """

    target_percent: float = math.inf
    #: run the charged exact-sweep probe every N global sweeps (0 = never)
    sample_every: int = 4
    #: early-stop once residual mass ≤ stop_fraction × target …
    stop_fraction: float = 0.25
    #: … for this many consecutive sweeps
    patience: int = 2
    #: pressure (error proxy / target) below which the margins loosen
    loosen_pressure: float = 0.5
    #: pressure at or above which the controller tightens
    tighten_pressure: float = 1.0
    #: cap and growth rate of the envelope-margin loosening
    max_margin_scale: float = 4.0
    margin_growth: float = 2.0
    #: extra §3 local round batches per loosened sweep (0 = lever off)
    extra_local_rounds: int = 1
    #: confluence operator substituted while tightened (monotone solves)
    safe_operator: str = "min"

    def __post_init__(self) -> None:
        if not self.target_percent > 0:
            raise ValueError("target_percent must be positive (inf disables)")
        if self.sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        if not 0.0 < self.stop_fraction <= 1.0:
            raise ValueError("stop_fraction must be in (0, 1]")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < self.loosen_pressure <= self.tighten_pressure:
            raise ValueError(
                "need 0 < loosen_pressure <= tighten_pressure"
            )
        if self.max_margin_scale < 1.0:
            raise ValueError("max_margin_scale must be >= 1")
        if self.margin_growth < 1.0:
            raise ValueError("margin_growth must be >= 1")
        if self.extra_local_rounds < 0:
            raise ValueError("extra_local_rounds must be >= 0")
        if self.safe_operator not in CONFLUENCE_OPERATORS:
            raise ValueError(
                f"unknown safe_operator {self.safe_operator!r}; choose from"
                f" {sorted(CONFLUENCE_OPERATORS)}"
            )

    @property
    def enabled(self) -> bool:
        """Finite budgets steer; an infinite budget is the identity."""
        return math.isfinite(self.target_percent)


class AdaptiveController(Runner):
    """A Runner that steers the knobs' runtime levers against a budget."""

    def __init__(
        self,
        plan: ExecutionPlan,
        device: DeviceConfig = K40C,
        *,
        budget: ErrorBudget | None = None,
        exact_graph: CSRGraph | None = None,
    ) -> None:
        super().__init__(plan, device)
        self.budget = budget if budget is not None else ErrorBudget()
        self.enabled = self.budget.enabled
        # the exact-sweep probe needs the original graph in the same
        # value space as the plan (replica renumbering breaks that, and
        # an exact plan's edges ARE the exact edges — nothing to probe)
        if (
            exact_graph is not None
            and plan.technique != "exact"
            and plan.graph.num_nodes == exact_graph.num_nodes
        ):
            self._exact_graph: CSRGraph | None = exact_graph
        else:
            self._exact_graph = None
        self._exact_edges = None
        self._margin_scale = 1.0
        self._tightened = False
        self._loosened = False
        self._monotone_solve = False
        #: per-run intervention tally (also mirrored to obs counters)
        self.interventions: dict[str, int] = {
            "loosen": 0,
            "tighten": 0,
            "early_stop": 0,
            "safe_merges": 0,
            "exact_samples": 0,
            "rectify": 0,
        }

    # ------------------------------------------------------------------
    def _exact_edge_view(self):
        if self._exact_graph is None:
            return None
        if self._exact_edges is None:
            self._exact_edges = shared_edge_view(self._exact_graph)
        return self._exact_edges

    def _bump(self, what: str) -> None:
        self.interventions[what] += 1
        obs_metrics.counter(f"tune.controller.{what}").inc()

    # ------------------------------------------------------------------
    # lever 1: coalescing aggressiveness (the confluence operator)
    # ------------------------------------------------------------------
    def confluence(self, values: np.ndarray, operator: str | None = None) -> None:
        if (
            self.enabled
            and self._tightened
            and self._monotone_solve
            and operator is None
            and self.plan.graffix is not None
        ):
            self._bump("safe_merges")
            super().confluence(values, operator=self.budget.safe_operator)
            return
        super().confluence(values, operator=operator)

    # ------------------------------------------------------------------
    # the monitored fixed point (SSSP-style monotone solves)
    # ------------------------------------------------------------------
    def _fixed_point(
        self,
        values: np.ndarray,
        relax,
        *,
        max_iterations: int,
        improvement_atol: float,
        improvement_rtol: float,
    ) -> int:
        if not self.enabled:
            return super()._fixed_point(
                values,
                relax,
                max_iterations=max_iterations,
                improvement_atol=improvement_atol,
                improvement_rtol=improvement_rtol,
            )
        return self._adaptive_fixed_point(
            values,
            relax,
            max_iterations=max_iterations,
            improvement_atol=improvement_atol,
            improvement_rtol=improvement_rtol,
        )

    def _adaptive_fixed_point(
        self,
        values: np.ndarray,
        relax,
        *,
        max_iterations: int,
        improvement_atol: float,
        improvement_rtol: float,
    ) -> int:
        b = self.budget
        approximate = self.plan.has_replicas
        envelope = values.copy() if approximate else None
        prev = values.copy()
        calm = 0
        iterations = 0
        self._monotone_solve = True
        try:
            with obs_trace.span(
                "tune.adaptive", technique=self.plan.technique,
                target_percent=b.target_percent,
            ):
                while iterations < max_iterations:
                    iterations += 1
                    changed = self.sweep(values, relax, merge=False)
                    improved_any = True
                    if approximate:
                        assert envelope is not None
                        margin = (
                            improvement_atol
                            + improvement_rtol
                            * np.where(
                                np.isfinite(envelope), np.abs(envelope), 0.0
                            )
                        ) * self._margin_scale
                        improved_any = bool((values < envelope - margin).any())
                        np.minimum(envelope, values, out=envelope)
                        self.confluence(values)
                        np.minimum(envelope, values, out=envelope)
                    reading = self._observe(
                        prev, values, relax, iterations, envelope
                    )
                    np.copyto(prev, values)
                    self._steer(reading)
                    # budget-certified early stop: the residual says the
                    # solve is only polishing within the error envelope
                    if (
                        iterations >= 2
                        and reading.residual_percent
                        <= b.stop_fraction * b.target_percent
                    ):
                        calm += 1
                        if calm >= b.patience:
                            self._bump("early_stop")
                            break
                    else:
                        calm = 0
                    if approximate:
                        if not improved_any:
                            break
                    elif not changed:
                        break
                    self.cluster_rounds(values, relax)
                    if (
                        self._loosened
                        and b.extra_local_rounds
                        and self.plan.has_clusters
                        and reading.residual_percent
                        > b.stop_fraction * b.target_percent
                    ):
                        # loosened shmem knob: extra local rounds at
                        # shared rates displace global sweeps — only
                        # while the solve is still converging (polishing
                        # inside the calm zone would be pure overhead)
                        self._bump("loosen")
                        for _ in range(b.extra_local_rounds):
                            self.cluster_rounds(values, relax)
        finally:
            self._monotone_solve = False
        return iterations

    # ------------------------------------------------------------------
    def _observe(
        self,
        prev: np.ndarray,
        values: np.ndarray,
        relax,
        iteration: int,
        envelope: np.ndarray | None,
    ) -> proxies.ProxyReadings:
        b = self.budget
        residual = proxies.residual_mass(prev, values)
        disagreement = (
            proxies.replica_disagreement(values, self.plan.graffix)
            if self.plan.graffix is not None
            else 0.0
        )
        mismatch: float | None = None
        if b.sample_every and iteration % b.sample_every == 0:
            exact = self._exact_edge_view()
            if exact is not None:
                # the probe is an honest exact sweep: charge it like one
                self.ctx.charge(None, subgraph=self._exact_graph)
                self._bump("exact_samples")
                mismatch = proxies.frontier_mismatch(
                    values, self.edges, exact, relax
                )
                obs_metrics.gauge("tune.proxy.mismatch").set(mismatch)
                if mismatch > b.target_percent:
                    # rectification (lever 3): fold the exact sweep in —
                    # relaxations over real edges only remove drift
                    relax(exact, values)
                    if envelope is not None:
                        np.minimum(envelope, values, out=envelope)
                    self._bump("rectify")
        obs_metrics.gauge("tune.proxy.residual").set(residual)
        obs_metrics.gauge("tune.proxy.disagreement").set(disagreement)
        return proxies.ProxyReadings(
            residual_percent=residual,
            disagreement_percent=disagreement,
            mismatch_percent=mismatch,
        )

    def _steer(self, reading: proxies.ProxyReadings) -> None:
        b = self.budget
        pressure = reading.error_percent() / b.target_percent
        if pressure >= b.tighten_pressure:
            if not self._tightened or self._margin_scale != 1.0:
                self._bump("tighten")
            self._tightened = True
            self._loosened = False
            self._margin_scale = 1.0
        elif pressure <= b.loosen_pressure:
            self._tightened = False
            self._loosened = True
            self._margin_scale = min(
                b.max_margin_scale, self._margin_scale * b.margin_growth
            )
        obs_metrics.gauge("tune.controller.margin_scale").set(self._margin_scale)

    # ------------------------------------------------------------------
    # residual-driven loops (PageRank): the loosened effective tolerance
    # ------------------------------------------------------------------
    def keep_iterating(self, delta: float, tol: float) -> bool:
        if not self.enabled:
            return super().keep_iterating(delta, tol)
        b = self.budget
        # PageRank mass sums to ~1, so the L1 delta *is* the residual
        # mass fraction; the budget maps onto it as an effective tol
        obs_metrics.gauge("tune.proxy.residual").set(100.0 * delta)
        effective_tol = max(tol, b.stop_fraction * b.target_percent / 100.0)
        cont = bool(delta > effective_tol)
        if not cont and delta > tol:
            self._bump("early_stop")
        return cont


def adaptive_runner_factory(
    budget: ErrorBudget | None = None,
    *,
    exact_graph: CSRGraph | None = None,
):
    """A ``runner_factory`` building :class:`AdaptiveController` runners.

    Mirrors :func:`repro.serve.deadline.deadline_runner_factory` — pass
    the result to any algorithm's ``runner_factory=`` parameter.
    ``exact_graph`` (the untransformed original) enables the
    frontier-mismatch probe and rectification.
    """

    def factory(plan: ExecutionPlan, device: DeviceConfig) -> AdaptiveController:
        return AdaptiveController(
            plan, device, budget=budget, exact_graph=exact_graph
        )

    return factory
