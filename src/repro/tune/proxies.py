"""Cheap per-iteration error proxies for the adaptive controller.

The controller cannot afford the paper's inaccuracy metric (it needs the
exact answer) mid-solve, so it steers on three proxies that are cheap
relative to a global sweep and correlate with the drift each knob
injects:

* **replica disagreement** — the normalized spread of attribute values
  inside each Graffix replica group, *before* the next confluence merge
  folds it away.  Mean-confluence drift is exactly disagreement that got
  averaged instead of resolved, so a rising spread means the coalescing
  approximation is actively injecting error (§2.4).
* **residual mass** — the L1 delta between consecutive sweeps over the
  L1 magnitude of the current values (PageRank's classic convergence
  residual, generalized: newly-reached nodes count their full value).
  Near zero it certifies the solve is only polishing — the signal that
  makes early termination safe.
* **frontier mismatch** — apply one relax sweep over the *plan's* edges
  and one over the *original exact* edges to two scratch copies and
  count the nodes on which they disagree.  This is the periodically
  sampled exact sweep: the structural edits (added 2-hop shortcut
  edges, clustering) show up as destinations the two sweeps treat
  differently.

All three return **percentages** so they compare directly against the
budget's ``target_percent``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ProxyReadings",
    "replica_disagreement",
    "residual_mass",
    "frontier_mismatch",
]

#: guards the normalizing denominators; values below this are treated as
#: mass-less rather than dividing the proxies into meaninglessness
_EPS = 1e-12


@dataclass(frozen=True)
class ProxyReadings:
    """One iteration's proxy sample (percent units; ``None`` = not taken)."""

    residual_percent: float
    disagreement_percent: float = 0.0
    mismatch_percent: float | None = None

    def error_percent(self) -> float:
        """The error-like pressure signal (residual is progress, not error)."""
        return max(self.disagreement_percent, self.mismatch_percent or 0.0)


def replica_disagreement(values: np.ndarray, graffix) -> float:
    """Mean relative spread inside replica groups, in percent.

    Groups where fewer than two members hold finite values carry no
    disagreement (an ``inf`` sentinel next to a distance is "not yet
    propagated", not drift — mirroring the confluence-mean convention).
    """
    if graffix is None:
        return 0.0
    slots, gids, sizes = graffix.replica_groups()
    if slots.size == 0:
        return 0.0
    member = values[slots]
    finite = np.isfinite(member)
    n = sizes.size
    counts = np.bincount(gids[finite], minlength=n)
    live = counts >= 2
    if not live.any():
        return 0.0
    lo = np.full(n, np.inf)
    hi = np.full(n, -np.inf)
    np.minimum.at(lo, gids[finite], member[finite])
    np.maximum.at(hi, gids[finite], member[finite])
    spread = hi[live] - lo[live]
    scale = np.maximum(np.abs(hi[live]), np.abs(lo[live]))
    rel = spread / np.maximum(scale, _EPS)
    return float(100.0 * rel.mean())


def residual_mass(prev: np.ndarray, curr: np.ndarray) -> float:
    """L1 change between sweeps over current L1 magnitude, in percent.

    Entries finite on both sides contribute their absolute delta; an
    entry that just became finite (a newly reached node) contributes its
    full magnitude — reaching new nodes is progress the plain delta of
    two ``inf`` sentinels would hide.
    """
    curr_finite = np.isfinite(curr)
    if not curr_finite.any():
        return 0.0
    prev_finite = np.isfinite(prev)
    both = curr_finite & prev_finite
    fresh = curr_finite & ~prev_finite
    moved = float(np.abs(curr[both] - prev[both]).sum())
    moved += float(np.abs(curr[fresh]).sum()) + float(fresh.sum())
    mass = float(np.abs(curr[curr_finite]).sum())
    return 100.0 * moved / max(mass, _EPS)


def frontier_mismatch(
    values: np.ndarray,
    plan_edges,
    exact_edges,
    relax,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> float:
    """Percent of nodes on which a plan sweep and an exact sweep disagree.

    Both sweeps run on scratch copies of ``values`` (the solve state is
    untouched); the caller is responsible for charging the exact sweep
    to the cost model — sampling exact signal is not free on the GPU
    either.  Only meaningful when the plan's value space matches the
    original graph's node space (no replica renumbering).
    """
    a = values.copy()
    b = values.copy()
    relax(plan_edges, a)
    relax(exact_edges, b)
    if a.size == 0:
        return 0.0
    both = np.isfinite(a) & np.isfinite(b)
    agree = ~np.isfinite(a) & ~np.isfinite(b)
    agree[both] = np.isclose(a[both], b[both], rtol=rtol, atol=atol)
    return float(100.0 * (1.0 - agree.mean()))
