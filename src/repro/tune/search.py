"""The offline auto-tuner behind ``python -m repro tune``.

Per graph family (the :func:`~repro.graphs.generators.paper_suite`
graphs), the tuner searches the knob × schedule space the way
:mod:`repro.core.autotune` pioneered — guideline-seeded thresholds per
technique, scored by simulator probes — then layers the adaptive
controller (:mod:`repro.tune.controller`) over the winning static
config and searches its gains.  The probe workload is SSSP from the
max-out-degree hub, plus PageRank outside ``--quick``; all scoring uses
**charged cycles**, which are deterministic across machines, so the
emitted ``BENCH_TUNE.json`` diffs exactly under ``repro obs diff``.

Winning configs are cached through :mod:`repro.cache`
(``memoize_json``, stage ``tune.search``): a second pass over the same
graphs with the same budget serves every family from the cache —
the warm-reuse contract the ``tune-smoke`` CI job asserts.

``speedup_vs_static`` is the controller's win over the *best static
knobs on the same workload*: the static run already uses the winning
plan and schedule; the tuned run differs only in the runtime levers
(early stop, margin loosening, extra local rounds, rectification).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..cache import memo
from ..core.autotune import _candidates, _plan_with_threshold
from ..eval.accuracy import attribute_inaccuracy
from ..graphs.csr import CSRGraph
from ..graphs.generators import paper_suite
from ..gpusim.device import DeviceConfig, K40C
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .controller import ErrorBudget, adaptive_runner_factory

__all__ = [
    "DEFAULT_BUDGET_PERCENT",
    "run_tune",
    "serve_overrides",
    "tune_family",
]

SCHEMA_VERSION = 1

#: bump to invalidate cached search results when the scoring changes
SEARCH_VERSION = 1

#: the default target inaccuracy budget (percent, the paper's metric)
DEFAULT_BUDGET_PERCENT = 20.0

#: techniques whose knob space the static search covers
TECHNIQUES_SEARCHED = ("coalescing", "shmem", "divergence")

#: sweep schedules the static search pins (PR 8's layer)
SCHEDULES_SEARCHED = (None, "direction-optimizing")

#: controller-gain candidates layered on the winning static config; the
#: first is pure early-stop/margin loosening (never charges extra work,
#: so tuned cycles <= static cycles by construction)
_CONTROLLER_GRID = (
    {
        "sample_every": 0, "stop_fraction": 0.25,
        "max_margin_scale": 4.0, "extra_local_rounds": 0,
    },
    {
        "sample_every": 6, "stop_fraction": 0.25,
        "max_margin_scale": 4.0, "extra_local_rounds": 1,
    },
    {
        "sample_every": 0, "stop_fraction": 0.5,
        "max_margin_scale": 8.0, "extra_local_rounds": 1,
    },
)
_CONTROLLER_GRID_QUICK = _CONTROLLER_GRID[:2]

#: BC source-sample candidates probed for the serve ladder's level-2 knob
_BC_SOURCE_CANDIDATES = (6, 4, 2)
_BC_REFERENCE_SOURCES = 8


def _hub(graph: CSRGraph) -> int:
    return int(np.argmax(graph.out_degrees()))


def _probe(
    target,
    graph: CSRGraph,
    device: DeviceConfig,
    schedule: str | None,
    exact: dict,
    *,
    quick: bool,
    runner_factory=None,
) -> tuple[float, float]:
    """Run the probe workload; returns (charged cycles, worst inaccuracy %)."""
    from ..algorithms.pagerank import pagerank
    from ..algorithms.sssp import sssp

    res = sssp(
        target, _hub(graph), device=device,
        runner_factory=runner_factory, schedule=schedule,
    )
    cycles = float(res.cycles)
    inacc = attribute_inaccuracy(exact["sssp"].values, res.values)
    if not quick:
        pr = pagerank(
            target, device=device,
            runner_factory=runner_factory, schedule=schedule,
        )
        cycles += float(pr.cycles)
        inacc = max(inacc, attribute_inaccuracy(exact["pr"].values, pr.values))
    return cycles, inacc


def _exact_reference(graph: CSRGraph, device: DeviceConfig, quick: bool) -> dict:
    from ..algorithms.pagerank import pagerank
    from ..algorithms.sssp import sssp

    exact = {"sssp": sssp(graph, _hub(graph), device=device)}
    cycles = float(exact["sssp"].cycles)
    if not quick:
        exact["pr"] = pagerank(graph, device=device)
        cycles += float(exact["pr"].cycles)
    exact["cycles"] = cycles
    return exact


def _pick(trials: list[dict], budget_percent: float) -> dict:
    """Feasible (within budget) with min cycles, else min inaccuracy."""
    feasible = [t for t in trials if t["inaccuracy_percent"] <= budget_percent]
    if feasible:
        return min(feasible, key=lambda t: t["cycles"])
    return min(trials, key=lambda t: t["inaccuracy_percent"])


def tune_family(
    name: str,
    graph: CSRGraph,
    *,
    budget_percent: float = DEFAULT_BUDGET_PERCENT,
    device: DeviceConfig = K40C,
    quick: bool = False,
    schedules: tuple = SCHEDULES_SEARCHED,
) -> dict:
    """Search knobs × schedules for one graph family; returns the record.

    The result is cached through ``repro.cache`` (stage ``tune.search``)
    keyed on the graph fingerprint + search parameters, so re-tuning an
    unchanged family is a cache hit.
    """
    params = {
        "budget_percent": float(budget_percent),
        "quick": bool(quick),
        "schedules": [s or "fixed-push" for s in schedules],
        "version": SEARCH_VERSION,
        "device": dataclasses.asdict(device),
    }

    def compute() -> dict:
        with obs_trace.span("tune.family", family=name):
            return _search_family(
                name, graph,
                budget_percent=budget_percent,
                device=device,
                quick=quick,
                schedules=schedules,
            )

    return memo.memoize_json(
        "tune.search", graph, params, compute,
        to_jsonable=lambda v: v, from_jsonable=lambda v: v,
    )


def _search_family(
    name: str,
    graph: CSRGraph,
    *,
    budget_percent: float,
    device: DeviceConfig,
    quick: bool,
    schedules: tuple,
) -> dict:
    exact = _exact_reference(graph, device, quick)

    static_trials: list[dict] = []
    plans: dict[tuple, object] = {}
    for technique in TECHNIQUES_SEARCHED:
        for thr in _candidates(graph, technique):
            plan = _plan_with_threshold(graph, technique, thr, device)
            for schedule in schedules:
                cycles, inacc = _probe(
                    plan, graph, device, schedule, exact, quick=quick
                )
                trial = {
                    "technique": technique,
                    "threshold": float(thr),
                    "schedule": schedule,
                    "cycles": cycles,
                    "inaccuracy_percent": inacc,
                    "speedup_vs_exact": exact["cycles"] / max(cycles, 1e-12),
                }
                static_trials.append(trial)
                plans[(technique, float(thr))] = plan

    best_static = _pick(static_trials, budget_percent)
    plan = plans[(best_static["technique"], best_static["threshold"])]
    schedule = best_static["schedule"]

    grid = _CONTROLLER_GRID_QUICK if quick else _CONTROLLER_GRID
    tuned_trials: list[dict] = []
    for gains in grid:
        budget = ErrorBudget(target_percent=budget_percent, **gains)
        factory = adaptive_runner_factory(budget, exact_graph=graph)
        cycles, inacc = _probe(
            plan, graph, device, schedule, exact,
            quick=quick, runner_factory=factory,
        )
        tuned_trials.append(
            {
                "controller": dict(gains),
                "cycles": cycles,
                "inaccuracy_percent": inacc,
                "speedup_vs_exact": exact["cycles"] / max(cycles, 1e-12),
            }
        )
    best_tuned = _pick(tuned_trials, budget_percent)

    speedup_vs_static = best_static["cycles"] / max(best_tuned["cycles"], 1e-12)
    return {
        "family": name,
        "nodes": int(graph.num_nodes),
        "edges": int(graph.num_edges),
        "budget_percent": float(budget_percent),
        "technique": best_static["technique"],
        "threshold": best_static["threshold"],
        "schedule": schedule,
        "controller": best_tuned["controller"],
        "exact_cycles": exact["cycles"],
        "static": {
            "cycles": best_static["cycles"],
            "inaccuracy_percent": best_static["inaccuracy_percent"],
            "speedup_vs_exact": best_static["speedup_vs_exact"],
        },
        "tuned": {
            "cycles": best_tuned["cycles"],
            "inaccuracy_percent": best_tuned["inaccuracy_percent"],
            "speedup_vs_exact": best_tuned["speedup_vs_exact"],
        },
        "speedup_vs_static": speedup_vs_static,
        "within_budget": best_tuned["inaccuracy_percent"] <= budget_percent,
        "static_trials": len(static_trials),
        "tuned_trials": len(tuned_trials),
    }


def serve_overrides(
    graph: CSRGraph,
    *,
    budget_percent: float = DEFAULT_BUDGET_PERCENT,
    device: DeviceConfig = K40C,
    quick: bool = False,
) -> dict:
    """Tuned level-2 degradation knobs for the serve ladder.

    Replaces the ladder's hardcoded halving: BC's source sample is the
    *smallest* candidate whose scores stay within the budget of the
    8-source reference on the probe graph, and PageRank's tolerance is
    the controller's effective budget tolerance.  See
    :meth:`repro.serve.degrade.DegradationLadder.apply`.
    """
    from ..algorithms.bc import betweenness_centrality

    candidates = _BC_SOURCE_CANDIDATES[1:] if quick else _BC_SOURCE_CANDIDATES
    ref = betweenness_centrality(
        graph,
        num_sources=min(_BC_REFERENCE_SOURCES, graph.num_nodes),
        seed=0,
        device=device,
    )
    num_sources = max(1, _BC_REFERENCE_SOURCES // 2)  # the old halving
    for cand in sorted(candidates):
        probe = betweenness_centrality(
            graph, num_sources=min(cand, graph.num_nodes), seed=0, device=device
        )
        if attribute_inaccuracy(ref.values, probe.values) <= budget_percent:
            num_sources = cand
            break
    pr_tol = ErrorBudget(
        target_percent=budget_percent
    ).stop_fraction * budget_percent / 100.0
    return {
        "bc_node": {"num_sources": int(num_sources)},
        "pr_topk": {"tol": float(pr_tol)},
    }


def _geomean(values: list[float]) -> float | None:
    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return float(math.exp(sum(math.log(v) for v in positive) / len(positive)))


def _cache_counters() -> tuple[int, int]:
    counters = obs_metrics.snapshot().get("counters", {})
    return (
        int(counters.get("cache.tune.search.hit", 0)),
        int(counters.get("cache.tune.search.miss", 0)),
    )


def run_tune(
    *,
    scale: str = "tiny",
    seed: int = 7,
    budget_percent: float = DEFAULT_BUDGET_PERCENT,
    families: list[str] | None = None,
    device: DeviceConfig = K40C,
    quick: bool = False,
) -> dict:
    """Tune every requested family; returns the ``BENCH_TUNE.json`` dict."""
    if budget_percent <= 0 or not math.isfinite(budget_percent):
        raise ValueError("budget_percent must be positive and finite")
    with obs_trace.span("tune.suite", scale=scale):
        suite = paper_suite(scale, seed=seed)
    if families:
        unknown = sorted(set(families) - set(suite))
        if unknown:
            raise ValueError(
                f"unknown families {unknown}; suite has {sorted(suite)}"
            )
        suite = {name: suite[name] for name in families}

    hits0, misses0 = _cache_counters()
    records: dict[str, dict] = {}
    with obs_trace.span("tune.run", families=len(suite), quick=quick):
        for name, graph in suite.items():
            records[name] = tune_family(
                name, graph,
                budget_percent=budget_percent,
                device=device,
                quick=quick,
            )
        smallest = min(suite, key=lambda n: suite[n].num_edges)
        serve = serve_overrides(
            suite[smallest],
            budget_percent=budget_percent,
            device=device,
            quick=quick,
        )
    hits1, misses1 = _cache_counters()

    speedups = {n: r["speedup_vs_static"] for n, r in records.items()}
    best_family = max(speedups, key=speedups.get) if speedups else None
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "quick": quick,
        "budget_percent": float(budget_percent),
        "families": records,
        "aggregate_speedup_vs_static": _geomean(list(speedups.values())),
        "best_family": best_family,
        "best_speedup_vs_static": (
            speedups[best_family] if best_family else None
        ),
        "serve": serve,
        "serve_probe_family": smallest,
        "cache": {"hits": hits1 - hits0, "misses": misses1 - misses0},
    }
