"""Differential & metamorphic verification oracles for the Graffix pipeline.

Graffix's value proposition is *bounded* inaccuracy: the transforms may
perturb solver outputs, but only inside the envelopes the paper reports.
This package is the standing oracle layer that states, for an arbitrary
graph, whether a transformed plan still satisfies the paper's structural
contracts and whether independent execution paths still agree:

* :mod:`repro.verify.invariants` — composable structural oracles per
  pipeline stage (CSR, renumber, replicate, shmem, divergence, plan);
* :mod:`repro.verify.metamorphic` — relation checks through the full
  harness (relabel invariance, weight-scaling equivariance, monotone
  knobs, exact ≡ identity);
* :mod:`repro.verify.differential` — byte-equality between independent
  implementations (BC engines, cached vs uncached, serial vs parallel);
* :mod:`repro.verify.golden` — paper-claims tolerance bands with
  machine-readable per-cell verdicts;
* :mod:`repro.verify.corpus` — the deterministic adversarial graph
  corpus (multigraphs, self loops, disconnected pieces, …);
* :mod:`repro.verify.cli` — ``python -m repro verify --quick/--deep``.

See ``docs/verification.md`` for the oracle catalogue and how to add an
invariant.
"""

from __future__ import annotations

from . import cli, corpus, differential, golden, invariants, metamorphic
from .corpus import adversarial_corpus, default_corpus, generated_corpus
from .invariants import (
    Violation,
    check_coalescing,
    check_csr,
    check_divergence,
    check_plan,
    check_renumbering,
    check_shmem,
    verify_plan,
)

__all__ = [
    "cli",
    "corpus",
    "differential",
    "golden",
    "invariants",
    "metamorphic",
    "Violation",
    "adversarial_corpus",
    "default_corpus",
    "generated_corpus",
    "check_csr",
    "check_renumbering",
    "check_coalescing",
    "check_shmem",
    "check_divergence",
    "check_plan",
    "verify_plan",
]
