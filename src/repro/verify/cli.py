"""``python -m repro verify``: run the verification oracle suite.

Modes::

    python -m repro verify --quick            # structural + metamorphic +
                                              # fast differential checks
    python -m repro verify --deep             # + combined plans, the
                                              # serial-vs-parallel sweep and
                                              # the golden table bands
    python -m repro verify --report out.json  # machine-readable verdicts

``--quick`` is the CI smoke gate: every invariant oracle over the
adversarial + generated corpus on exact and all three transform plans,
the metamorphic relations, and the cross-engine/cache differentials.
``--deep`` is the nightly gate and adds the expensive end-to-end
comparisons.  Exit status is 0 iff every check is green.

Each check runs under a ``verify.check`` obs span, bumps the
``verify.checks.pass`` / ``verify.checks.fail`` counters, and records
its wall-clock through ``obs.metrics`` — a ``verify.check.seconds.<name>``
gauge per check plus the ``verify.check.time`` histogram.  With
``--report`` the metrics snapshot is embedded in the JSON
(``report["metrics"]``), so ``python -m repro obs diff old.json new.json``
catches verification-*time* regressions the pass/fail bits can't.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import traceback

from ..core.knobs import CoalescingKnobs, DivergenceKnobs, SharedMemoryKnobs
from ..core.pipeline import build_plan
from ..gpusim.device import DeviceConfig
from ..obs import metrics, trace
from . import differential, golden, metamorphic, tuned
from .corpus import default_corpus
from .invariants import Violation, check_plan
from .metamorphic import (
    check_exact_identity,
    check_knob_monotonicity,
    check_relabel_invariance,
    check_weight_scaling,
)

__all__ = ["main", "run_checks", "VERIFY_DEVICE"]

#: a deliberately small device so padding/clustering actually fire on the
#: corpus-sized graphs (the K40C's 32-lane warps would dwarf them)
VERIFY_DEVICE = DeviceConfig(warp_size=8, line_words=4, shared_mem_words=512)

#: knobs tuned so every transform does nontrivial work on tiny graphs —
#: replicas, added shmem edges and padded nodes all appear in the corpus
VERIFY_KNOBS = {
    "coalescing": CoalescingKnobs(chunk_size=4, connectedness_threshold=0.3),
    "shmem": SharedMemoryKnobs(cc_threshold=0.3, edge_budget_fraction=0.1),
    "divergence": DivergenceKnobs(degree_sim_threshold=0.4),
}

QUICK_TECHNIQUES = ("exact", "coalescing", "shmem", "divergence")


def _invariant_checks(corpus, techniques, device):
    for gname, graph in corpus.items():
        for technique in techniques:
            def run(graph=graph, technique=technique):
                plan = build_plan(
                    graph,
                    technique,
                    device=device,
                    coalescing=VERIFY_KNOBS["coalescing"],
                    shmem=VERIFY_KNOBS["shmem"],
                    divergence=VERIFY_KNOBS["divergence"],
                )
                return check_plan(
                    graph,
                    plan,
                    coalescing=VERIFY_KNOBS["coalescing"],
                    shmem=VERIFY_KNOBS["shmem"],
                    divergence=VERIFY_KNOBS["divergence"],
                    device=device,
                )

            yield f"invariants:{gname}:{technique}", run


def _metamorphic_checks(corpus, seed, device):
    yield "metamorphic:relabel:er", lambda: check_relabel_invariance(
        corpus["er"], seed=seed, device=device
    )
    yield "metamorphic:relabel:road", lambda: check_relabel_invariance(
        corpus["road"], seed=seed + 1, device=device
    )
    yield "metamorphic:scaling:zero-weight", lambda: check_weight_scaling(
        corpus["zero-weight"], device=device
    )
    yield "metamorphic:scaling:social", lambda: check_weight_scaling(
        corpus["social"], device=device
    )
    yield "metamorphic:monotone:social", lambda: check_knob_monotonicity(
        corpus["social"], device=device
    )
    yield "metamorphic:monotone:multigraph", lambda: check_knob_monotonicity(
        corpus["multigraph"], device=device
    )
    yield "metamorphic:identity:rmat", lambda: check_exact_identity(
        corpus["rmat"], device=device
    )


def _differential_checks(corpus, seed, device):
    yield "differential:bc-engines:rmat:exact", lambda: (
        differential.check_bc_engines(
            corpus["rmat"], technique="exact", seed=seed, device=device
        )
    )
    yield "differential:bc-engines:social:coalescing", lambda: (
        differential.check_bc_engines(
            corpus["social"], technique="coalescing", seed=seed, device=device
        )
    )

    yield "differential:schedules:road:exact", lambda: (
        differential.check_schedules(
            corpus["road"], technique="exact", seed=seed, device=device
        )
    )
    yield "differential:schedules:multigraph:exact", lambda: (
        differential.check_schedules(
            corpus["multigraph"], technique="exact", seed=seed, device=device
        )
    )
    yield "differential:schedules:social:coalescing", lambda: (
        differential.check_schedules(
            corpus["social"], technique="coalescing", seed=seed, device=device
        )
    )
    yield "differential:schedules:er:divergence", lambda: (
        differential.check_schedules(
            corpus["er"], technique="divergence", seed=seed, device=device
        )
    )
    yield "differential:schedules:zero-weight:shmem", lambda: (
        differential.check_schedules(
            corpus["zero-weight"], technique="shmem", seed=seed, device=device
        )
    )

    yield "differential:batched:road:exact", lambda: (
        differential.check_batched(
            corpus["road"], technique="exact", seed=seed, device=device
        )
    )
    yield "differential:batched:multigraph:exact", lambda: (
        differential.check_batched(
            corpus["multigraph"], technique="exact", seed=seed, device=device
        )
    )
    yield "differential:batched:social:coalescing", lambda: (
        differential.check_batched(
            corpus["social"], technique="coalescing", seed=seed, device=device
        )
    )
    yield "differential:batched:er:divergence", lambda: (
        differential.check_batched(
            corpus["er"], technique="divergence", seed=seed, device=device
        )
    )

    def cache_check():
        with tempfile.TemporaryDirectory(prefix="repro-verify-cache-") as tmp:
            return differential.check_cache_differential(
                corpus["er"], "divergence", tmp, device=device
            )

    yield "differential:cache:er:divergence", cache_check


def _tuned_checks(corpus, device):
    for gname, technique in (
        ("rmat", "coalescing"),
        ("road", "shmem"),
        ("social", "divergence"),
        ("multigraph", "exact"),
    ):
        yield (
            f"differential:tuned:identity:{gname}:{technique}",
            lambda g=gname, t=technique: tuned.check_tuned_identity(
                corpus[g], t, knobs=VERIFY_KNOBS, device=device
            ),
        )
    yield "differential:tuned:monotone:road", lambda: (
        tuned.check_budget_monotonicity(
            corpus["road"], knobs=VERIFY_KNOBS, device=device
        )
    )

    def tuned_golden_check():
        report = tuned.run_adaptive_golden(
            corpus, knobs=VERIFY_KNOBS, device=device
        )
        tuned_golden_check.report = report
        return tuned.adaptive_violations(report)

    tuned_golden_check.report = None
    yield "golden:tuned", tuned_golden_check


def _deep_checks(corpus, device):
    for gname, graph in corpus.items():
        def run(graph=graph):
            plan = build_plan(
                graph,
                "combined",
                device=device,
                coalescing=VERIFY_KNOBS["coalescing"],
                shmem=VERIFY_KNOBS["shmem"],
                divergence=VERIFY_KNOBS["divergence"],
            )
            return check_plan(
                graph,
                plan,
                coalescing=VERIFY_KNOBS["coalescing"],
                shmem=VERIFY_KNOBS["shmem"],
                divergence=VERIFY_KNOBS["divergence"],
                device=device,
            )

        yield f"invariants:{gname}:combined", run
    yield "differential:serial-vs-parallel", (
        lambda: differential.check_serial_parallel(
            technique="divergence", scale="tiny", algorithms=("sssp", "pr")
        )
    )

    def golden_check():
        report = golden.run_golden(scale="tiny")
        golden_check.report = report
        return golden.golden_violations(report)

    golden_check.report = None
    yield "golden:tables", golden_check


def run_checks(
    *, deep: bool = False, seed: int = 0, quiet: bool = False
) -> dict:
    """Run the suite; returns the machine-readable report dict."""
    corpus = default_corpus(seed)
    device = VERIFY_DEVICE
    checks = []
    checks += list(_invariant_checks(corpus, QUICK_TECHNIQUES, device))
    checks += list(_metamorphic_checks(corpus, seed, device))
    checks += list(_differential_checks(corpus, seed, device))
    checks += list(_tuned_checks(corpus, device))
    golden_report = None
    tuned_golden_report = None
    if deep:
        checks += list(_deep_checks(corpus, device))

    results = []
    failed = 0
    with trace.span("verify.run", deep=deep, seed=seed):
        for name, run in checks:
            t0 = time.perf_counter()
            with trace.span("verify.check", check=name):
                try:
                    violations = run()
                    error = None
                except Exception as exc:  # noqa: BLE001 - reported, not hidden
                    violations = [
                        Violation("verify.crash", f"{type(exc).__name__}: {exc}")
                    ]
                    error = traceback.format_exc()
            elapsed = time.perf_counter() - t0
            ok = not violations
            metrics.counter(
                "verify.checks.pass" if ok else "verify.checks.fail"
            ).inc()
            metrics.gauge(f"verify.check.seconds.{name}").set(elapsed)
            metrics.histogram("verify.check.time").observe(elapsed)
            if not ok:
                failed += 1
            results.append(
                {
                    "check": name,
                    "passed": ok,
                    "violations": [
                        {"oracle": x.oracle, "message": x.message}
                        for x in violations
                    ],
                    **({"traceback": error} if error else {}),
                }
            )
            if not quiet:
                status = "ok  " if ok else "FAIL"
                print(f"[{status}] {name}")
                for x in violations:
                    print(f"        - {x}")
            if name == "golden:tables" and getattr(run, "report", None):
                golden_report = run.report
            if name == "golden:tuned" and getattr(run, "report", None):
                tuned_golden_report = run.report

    report = {
        "mode": "deep" if deep else "quick",
        "seed": seed,
        "checks": results,
        "num_checks": len(results),
        "num_failed": failed,
        "passed": failed == 0,
        # per-check timing gauges + the verify.check.time histogram,
        # diffable across runs with `python -m repro obs diff`
        "metrics": metrics.snapshot(),
    }
    if golden_report is not None:
        report["golden"] = golden_report
    if tuned_golden_report is not None:
        report["tuned_golden"] = tuned_golden_report
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Run the structural/metamorphic/differential/golden "
        "verification oracles (see docs/verification.md).",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        action="store_true",
        help="fast oracle pass (default; the CI smoke gate)",
    )
    mode.add_argument(
        "--deep",
        action="store_true",
        help="add combined plans, serial-vs-parallel and golden table bands",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="corpus / sampling seed"
    )
    parser.add_argument(
        "--report", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-check lines"
    )
    args = parser.parse_args(argv)

    report = run_checks(deep=args.deep, seed=args.seed, quiet=args.quiet)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)

    print(
        f"verify: {report['num_checks'] - report['num_failed']}/"
        f"{report['num_checks']} checks passed"
        + ("" if report["passed"] else f" ({report['num_failed']} FAILED)")
    )
    return 0 if report["passed"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    sys.exit(main())
