"""Deterministic adversarial graph corpus for the verification oracles.

The PR 3 post-mortem showed that simple random graphs miss whole bug
classes: the divergence transform silently dropped *parallel* edges, and
``bfs_forest_levels`` mishandled leftover components — shapes that never
arise from deduplicated Erdős–Rényi samples.  This corpus pins down the
adversarial shapes (multigraphs, self loops, disconnected pieces,
zero-weight edges, stars, chains) as small named graphs, plus a few
generator samples for realistic degree structure.  Everything is built
from fixed seeds so one corpus name always means one exact graph.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.generators import (
    erdos_renyi,
    heavy_tail_social,
    rmat,
    road_network,
)

__all__ = ["adversarial_corpus", "generated_corpus", "default_corpus"]


def _multigraph(seed: int) -> CSRGraph:
    """Parallel edges with distinct weights — the PR 3 divergence trap."""
    rng = np.random.default_rng(seed)
    n = 24
    src = rng.integers(0, n, size=90)
    dst = rng.integers(0, n, size=90)
    # force guaranteed duplicates: repeat a block of edges verbatim
    src = np.concatenate([src, src[:20]])
    dst = np.concatenate([dst, dst[:20]])
    w = rng.uniform(0.5, 10.0, size=src.size)
    return CSRGraph.from_edges(n, src, dst, w, dedup=False)


def _self_loops(seed: int) -> CSRGraph:
    rng = np.random.default_rng(seed)
    n = 16
    src = rng.integers(0, n, size=40)
    dst = rng.integers(0, n, size=40)
    loops = np.arange(0, n, 2, dtype=np.int64)
    src = np.concatenate([src, loops])
    dst = np.concatenate([dst, loops])
    return CSRGraph.from_edges(n, src, dst, dedup=False)


def _disconnected(seed: int) -> CSRGraph:
    """Two dense components plus a tail of fully isolated nodes."""
    rng = np.random.default_rng(seed)
    block = 10
    src_a = rng.integers(0, block, size=30)
    dst_a = rng.integers(0, block, size=30)
    src_b = rng.integers(block, 2 * block, size=30)
    dst_b = rng.integers(block, 2 * block, size=30)
    n = 2 * block + 6  # six isolated nodes at the end
    return CSRGraph.from_edges(
        n,
        np.concatenate([src_a, src_b]),
        np.concatenate([dst_a, dst_b]),
        dedup=True,
    )


def _zero_weight(seed: int) -> CSRGraph:
    """Weighted graph where a fraction of edges carries weight exactly 0."""
    rng = np.random.default_rng(seed)
    n = 20
    m = 70
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.uniform(0.5, 8.0, size=m)
    w[:: 5] = 0.0
    return CSRGraph.from_edges(n, src, dst, w, dedup=True)


def _star(seed: int) -> CSRGraph:
    """One hub versus many leaves: the maximal degree-variance shape."""
    n = 33
    hub = 0
    leaves = np.arange(1, n, dtype=np.int64)
    src = np.concatenate([np.full(leaves.size, hub), leaves[: n // 2]])
    dst = np.concatenate([leaves, np.full(n // 2, hub)])
    return CSRGraph.from_edges(n, src, dst)


def _chain(seed: int) -> CSRGraph:
    """A directed path: maximal diameter, uniform degree 1."""
    n = 30
    src = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(n, src, src + 1, np.full(n - 1, 2.0))


def adversarial_corpus(seed: int = 0) -> dict[str, CSRGraph]:
    """The named hand-built shapes that have historically hidden bugs."""
    return {
        "multigraph": _multigraph(seed),
        "self-loops": _self_loops(seed + 1),
        "disconnected": _disconnected(seed + 2),
        "zero-weight": _zero_weight(seed + 3),
        "star": _star(seed + 4),
        "chain": _chain(seed + 5),
    }


def generated_corpus(seed: int = 0) -> dict[str, CSRGraph]:
    """Small samples of the paper-suite generators for realistic structure."""
    return {
        "rmat": rmat(6, edge_factor=4, seed=seed + 11),
        "er": erdos_renyi(64, 256, seed=seed + 12),
        "road": road_network(7, seed=seed + 13),
        "social": heavy_tail_social(72, mean_degree=6, seed=seed + 14),
    }


def default_corpus(seed: int = 0) -> dict[str, CSRGraph]:
    """Adversarial shapes plus generator samples — the ``--quick`` set."""
    corpus = adversarial_corpus(seed)
    corpus.update(generated_corpus(seed))
    return corpus
