"""Differential (cross-implementation) checks.

Two independent paths to the same answer must agree *byte for byte* —
both in solver values and in the simulated cost charges — or one of them
is wrong:

* :func:`check_bc_engines` — the PR 4 frontier-gather BC engine against
  the preserved reference path;
* :func:`check_cache_differential` — an uncached plan build against a
  cold-store build and a warm disk-tier reload (``--cache-dir``);
* :func:`check_serial_parallel` — ``TableRunner``'s in-process sweep
  against the fault-tolerant process pool in :mod:`repro.eval.parallel`;
* :func:`check_schedules` — push-pinned, pull-pinned and
  direction-optimizing sweep schedules against the unscheduled kernels
  (values and iterations byte-equal everywhere; push-pinned charges
  additionally bit-identical to no schedule at all);
* :func:`check_batched` — the multi-source batched sweep engine
  (:mod:`repro.perf.batched`) against per-source loops: every lane's
  values, iteration count, and cost-model charges must be byte-equal to
  the corresponding solo run, over adversarial source sets (single
  source, pairs, duplicates, more than half the graph).

``preprocess_seconds`` is the one field deliberately excluded from plan
comparisons: it is wall-clock and legitimately differs between runs.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality, pick_sources
from ..algorithms.sssp import sssp
from ..cache import memo
from ..core.pipeline import ExecutionPlan, build_plan
from ..eval.parallel import parallel_technique_rows
from ..eval.tables import TableRunner
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from .invariants import Violation

__all__ = [
    "check_batched",
    "check_bc_engines",
    "check_cache_differential",
    "check_schedules",
    "check_serial_parallel",
    "plans_identical",
]


def _arrays_equal(a: np.ndarray | None, b: np.ndarray | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return a.dtype == b.dtype and np.array_equal(a, b)


def _graphs_identical(a: CSRGraph | None, b: CSRGraph | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return (
        a.num_nodes == b.num_nodes
        and _arrays_equal(a.offsets, b.offsets)
        and _arrays_equal(a.indices, b.indices)
        and _arrays_equal(a.weights, b.weights)
    )


def plans_identical(a: ExecutionPlan, b: ExecutionPlan) -> list[str]:
    """Field-by-field byte comparison of two plans' *execution* state.

    Transform intermediates (``_shmem``/``_divergence``, the renumbering
    details inside ``graffix``) are not compared: the disk tier round-trips
    plans through :mod:`repro.core.serialize`, which keeps everything a
    runner reads but reconstructs those provenance records degenerately.
    ``preprocess_seconds`` is wall-clock and excluded by design.
    """
    diffs: list[str] = []
    if a.technique != b.technique:
        diffs.append("technique")
    if a.num_original != b.num_original:
        diffs.append("num_original")
    if a.edges_added != b.edges_added:
        diffs.append("edges_added")
    if a.confluence_operator != b.confluence_operator:
        diffs.append("confluence_operator")
    if a.local_iterations != b.local_iterations:
        diffs.append("local_iterations")
    if not _graphs_identical(a.graph, b.graph):
        diffs.append("graph")
    if not _arrays_equal(a.order, b.order):
        diffs.append("order")
    if not _arrays_equal(a.resident_mask, b.resident_mask):
        diffs.append("resident_mask")
    if not _graphs_identical(a.cluster_graph, b.cluster_graph):
        diffs.append("cluster_graph")
    ga, gb = a.graffix, b.graffix
    if (ga is None) != (gb is None):
        diffs.append("graffix")
    elif ga is not None and gb is not None:
        if (
            ga.num_original != gb.num_original
            or ga.chunk_size != gb.chunk_size
            or not _arrays_equal(ga.rep_of, gb.rep_of)
            or not _arrays_equal(ga.primary_slot, gb.primary_slot)
        ):
            diffs.append("graffix")
    return diffs


def _results_identical(a, b, what: str) -> list[Violation]:
    v: list[Violation] = []
    if not np.array_equal(a.values, b.values):
        v.append(
            Violation(f"differential.{what}", "solver values are not byte-equal")
        )
    if a.iterations != b.iterations:
        v.append(
            Violation(
                f"differential.{what}",
                f"iteration counts differ ({a.iterations} vs {b.iterations})",
            )
        )
    sa, sb = a.metrics.summary(), b.metrics.summary()
    if sa != sb:
        keys = sorted(k for k in set(sa) | set(sb) if sa.get(k) != sb.get(k))
        v.append(
            Violation(
                f"differential.{what}",
                f"simulated charges differ on {keys}",
            )
        )
    if a.metrics.num_sweeps != b.metrics.num_sweeps:
        v.append(
            Violation(
                f"differential.{what}",
                f"sweep counts differ ({a.metrics.num_sweeps} vs"
                f" {b.metrics.num_sweeps})",
            )
        )
    return v


# ---------------------------------------------------------------------------
def check_bc_engines(
    graph: CSRGraph,
    *,
    technique: str = "exact",
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """``engine="gather"`` and ``engine="reference"`` must match exactly."""
    target: CSRGraph | ExecutionPlan = graph
    if technique != "exact":
        target = build_plan(graph, technique, device=device)
    sources = pick_sources(graph.num_nodes, min(4, graph.num_nodes), seed)
    gather = betweenness_centrality(
        target, sources=sources, engine="gather", device=device
    )
    reference = betweenness_centrality(
        target, sources=sources, engine="reference", device=device
    )
    return _results_identical(gather, reference, f"bc_engines.{technique}")


# ---------------------------------------------------------------------------
def check_schedules(
    graph: CSRGraph,
    *,
    technique: str = "exact",
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Sweep schedules must never change what a kernel computes.

    Runs BFS, SSSP, PageRank and BC under push-pinned, pull-pinned and
    direction-optimizing schedules and diffs values + iteration counts
    against the unscheduled run; the push-pinned run must additionally
    reproduce the unscheduled charges bit-for-bit (it is the same code
    path by contract).
    """
    from ..algorithms.bfs import bfs
    from ..algorithms.pagerank import pagerank

    target: CSRGraph | ExecutionPlan = graph
    if technique != "exact":
        target = build_plan(graph, technique, device=device)
    source = int(np.argmax(graph.out_degrees()))
    sources = pick_sources(graph.num_nodes, min(3, graph.num_nodes), seed)
    kernels = {
        "bfs": lambda s: bfs(target, source, device=device, schedule=s),
        "sssp": lambda s: sssp(target, source, device=device, schedule=s),
        "pagerank": lambda s: pagerank(target, device=device, schedule=s),
        "bc": lambda s: betweenness_centrality(
            target, sources=sources, device=device, schedule=s
        ),
    }
    v: list[Violation] = []
    for kname, run in kernels.items():
        base = run(None)
        for spec in ("push", "pull", "direction-optimizing"):
            res = run(spec)
            what = f"schedules.{technique}.{kname}.{spec}"
            if (
                res.values.dtype != base.values.dtype
                or res.values.tobytes() != base.values.tobytes()
            ):
                v.append(
                    Violation(
                        f"differential.{what}",
                        "scheduled values are not byte-equal to unscheduled",
                    )
                )
            if res.iterations != base.iterations:
                v.append(
                    Violation(
                        f"differential.{what}",
                        f"iteration counts differ ({res.iterations} vs"
                        f" {base.iterations})",
                    )
                )
            if spec == "push":
                v += _results_identical(res, base, what)
    return v


# ---------------------------------------------------------------------------
def _lane_violations(
    batched, k: int, solo, what: str
) -> list[Violation]:
    """Diff batched lane ``k`` against its solo run, byte for byte."""
    v: list[Violation] = []
    lane_vals = batched.values[k]
    if (
        lane_vals.dtype != solo.values.dtype
        or lane_vals.tobytes() != solo.values.tobytes()
    ):
        v.append(
            Violation(
                f"differential.{what}",
                f"lane {k} values are not byte-equal to the looped run",
            )
        )
    if batched.iterations[k] != solo.iterations:
        v.append(
            Violation(
                f"differential.{what}",
                f"lane {k} iteration count differs "
                f"({batched.iterations[k]} vs {solo.iterations})",
            )
        )
    sa = batched.lane_metrics[k].summary()
    sb = solo.metrics.summary()
    if sa != sb:
        keys = sorted(x for x in set(sa) | set(sb) if sa.get(x) != sb.get(x))
        v.append(
            Violation(
                f"differential.{what}",
                f"lane {k} per-source charges differ on {keys}",
            )
        )
    return v


def check_batched(
    graph: CSRGraph,
    *,
    technique: str = "exact",
    seed: int = 0,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Batched multi-source sweeps must decompose into their looped runs.

    For BFS levels and SSSP, every lane of
    :func:`~repro.perf.batched.bfs_levels_batched` /
    :func:`~repro.perf.batched.sssp_batched` must match the corresponding
    single-source run byte-for-byte — values, iteration count, *and* the
    per-lane cost-model charges (the batched charging theorem, checked
    rather than assumed).  For BC, ``engine="batched"`` must reproduce
    ``engine="gather"`` exactly, including the per-source metrics in
    ``aux``.  Source sets are chosen adversarially: a single source, a
    pair, a set with duplicate sources, and one covering more than half
    the graph.
    """
    from ..algorithms.bfs import bfs
    from ..perf.batched import bfs_levels_batched, sssp_batched

    target: CSRGraph | ExecutionPlan = graph
    if technique != "exact":
        target = build_plan(graph, technique, device=device)
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    hub = int(np.argmax(graph.out_degrees()))
    source_sets = [
        ("single", [hub]),
        ("pair", sorted({hub, int(rng.integers(n))})),
        ("dup", [hub, hub]),
        ("wide", rng.choice(n, size=min(n, n // 2 + 1), replace=False).tolist()),
    ]

    v: list[Violation] = []
    for schedule in (None, "direction-optimizing"):
        sched_tag = schedule or "none"
        for set_name, srcs in source_sets:
            tag = f"batched.{technique}.{sched_tag}.{set_name}"
            bb = bfs_levels_batched(
                target, srcs, device=device, schedule=schedule
            )
            sb = sssp_batched(target, srcs, device=device, schedule=schedule)
            for k, s in enumerate(srcs):
                solo_bfs = bfs(target, int(s), device=device, schedule=schedule)
                solo_sssp = sssp(target, int(s), device=device, schedule=schedule)
                v += _lane_violations(bb, k, solo_bfs, f"{tag}.bfs")
                v += _lane_violations(sb, k, solo_sssp, f"{tag}.sssp")

        srcs = source_sets[-1][1]
        ref = betweenness_centrality(
            target, sources=srcs, engine="gather", device=device,
            schedule=schedule,
        )
        bat = betweenness_centrality(
            target, sources=srcs, engine="batched", device=device,
            schedule=schedule,
        )
        v += _results_identical(bat, ref, f"batched.{technique}.{sched_tag}.bc")
        for k, s in enumerate(srcs):
            solo = betweenness_centrality(
                target, sources=[int(s)], engine="gather", device=device,
                schedule=schedule,
            )
            sa = bat.aux["per_source_metrics"][k].summary()
            ss = solo.metrics.summary()
            if sa != ss:
                keys = sorted(
                    x for x in set(sa) | set(ss) if sa.get(x) != ss.get(x)
                )
                v.append(
                    Violation(
                        f"differential.batched.{technique}.{sched_tag}.bc",
                        f"lane {k} per-source charges differ on {keys}",
                    )
                )
            if bat.aux["per_source_iterations"][k] != solo.iterations:
                v.append(
                    Violation(
                        f"differential.batched.{technique}.{sched_tag}.bc",
                        f"lane {k} iteration count differs",
                    )
                )
    return v


# ---------------------------------------------------------------------------
def check_cache_differential(
    graph: CSRGraph,
    technique: str,
    cache_dir: str,
    *,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Uncached, cold-store, and warm-reload plans must be interchangeable.

    Three builds: one with the cache disabled, one that populates
    ``cache_dir`` (cold), and one in a *fresh* cache config over the same
    directory — so the memory tier is empty and the plan must round-trip
    through the disk store.  All three must execute identically.
    """
    v: list[Violation] = []
    with memo.enabled(None):  # force-disable any ambient cache config
        memo.disable()
        uncached = build_plan(graph, technique, device=device)
    with memo.enabled(cache_dir):
        cold = build_plan(graph, technique, device=device)
    with memo.enabled(cache_dir):
        warm = build_plan(graph, technique, device=device)

    for name, other in (("cold", cold), ("warm", warm)):
        diffs = plans_identical(uncached, other)
        if diffs:
            v.append(
                Violation(
                    "differential.cache.plan",
                    f"{name} {technique} plan differs from uncached on"
                    f" fields {diffs}",
                )
            )
    if v:
        return v

    source = int(np.argmax(graph.out_degrees()))
    runs = [sssp(p, source, device=device) for p in (uncached, cold, warm)]
    for name, run in zip(("cold", "warm"), runs[1:]):
        v += [
            Violation(x.oracle.replace("differential.", "differential.cache."), x.message)
            for x in _results_identical(runs[0], run, f"{name}.{technique}")
        ]
    return v


# ---------------------------------------------------------------------------
def check_serial_parallel(
    *,
    technique: str = "divergence",
    scale: str = "tiny",
    seed: int = 7,
    baseline: str = "baseline1",
    algorithms: tuple[str, ...] = ("sssp", "pr"),
) -> list[Violation]:
    """The process-pool sweep must reproduce the serial rows byte-for-byte."""
    runner = TableRunner(scale=scale, seed=seed, parallel=False, degrade=True)
    serial = runner._technique_rows(technique, baseline, algorithms)
    parallel = parallel_technique_rows(
        technique,
        baseline=baseline,
        algorithms=algorithms,
        scale=scale,
        seed=seed,
        num_bc_sources=runner.num_bc_sources,
        degrade=True,
    )
    key = lambda r: (r["algorithm"], r["graph"])  # noqa: E731
    serial = sorted(serial, key=key)
    parallel = sorted(parallel, key=key)
    v: list[Violation] = []
    if [key(r) for r in serial] != [key(r) for r in parallel]:
        v.append(
            Violation(
                "differential.parallel",
                "serial and parallel sweeps produced different cell sets",
            )
        )
        return v
    for s, p in zip(serial, parallel):
        fields = sorted(
            f for f in set(s) | set(p) if s.get(f) != p.get(f)
        )
        if fields:
            v.append(
                Violation(
                    "differential.parallel",
                    f"cell {key(s)} differs on {fields}",
                )
            )
    return v
