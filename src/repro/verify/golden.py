"""Golden checks: the reproduction's tables against the paper's claims.

A simulator on different hardware cannot match the paper's absolute
numbers, so the golden oracle checks *tolerance bands* instead: every
measured cell must stay inside a sane speedup/inaccuracy envelope, and
every table must stay directionally and ordinally consistent with the
transcribed paper data (:mod:`repro.eval.paper_data`), scored by
:mod:`repro.eval.agreement`.

The default :class:`ToleranceBand` was calibrated against the tiny-scale
suite at the repo's standard table seed (7): observed per-cell speedups
span 0.89–2.02, inaccuracies peak at ~48 % (BC on usa-road), direction
agreement bottoms out at 0.64 and the geomean ratio stays within
0.96–1.10.  The bands leave real headroom around those values while still
catching a transform whose approximation quality collapses.

Output is machine-readable: one verdict dict per table cell plus a
table-level agreement verdict, so CI can diff failures cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..eval.agreement import score_table
from ..eval.paper_data import TABLE_TECHNIQUE, TECHNIQUE_TABLES
from ..eval.tables import TableRunner
from .invariants import Violation

__all__ = [
    "ToleranceBand",
    "check_table",
    "run_golden",
    "golden_violations",
    "GOLDEN_TABLES",
]

#: the technique tables the golden pass replays (vs Baseline-I)
GOLDEN_TABLES = ("table6", "table7", "table8")

#: tables use the repo's standard suite seed so the bands stay meaningful;
#: ``--seed`` deliberately does not reach the golden pass
TABLE_SEED = 7


@dataclass(frozen=True)
class ToleranceBand:
    """Acceptance envelope for one technique table."""

    min_speedup: float = 0.25
    max_speedup: float = 8.0
    max_inaccuracy_percent: float = 60.0
    min_direction_agreement: float = 0.55
    min_spearman: float = 0.0
    geomean_ratio_low: float = 0.5
    geomean_ratio_high: float = 2.0


def _cell_verdict(table: str, row: dict, band: ToleranceBand) -> dict:
    paper_cells, _gm, _baseline, _algos = TECHNIQUE_TABLES[table]
    algo, graph = str(row["algorithm"]), str(row["graph"])
    paper = paper_cells.get(algo, {}).get(graph)
    reasons: list[str] = []
    if row.get("degraded"):
        # a degraded cell is exact-by-construction; the resilience layer
        # already footnotes it, the golden pass only records the fact
        reasons.append(f"degraded: {row.get('degraded_reason', '')}")
    else:
        spd = float(row["speedup"])
        inacc = float(row["inaccuracy_percent"])
        if not band.min_speedup <= spd <= band.max_speedup:
            reasons.append(
                f"speedup {spd:.3f} outside"
                f" [{band.min_speedup}, {band.max_speedup}]"
            )
        if inacc > band.max_inaccuracy_percent:
            reasons.append(
                f"inaccuracy {inacc:.2f}% above {band.max_inaccuracy_percent}%"
            )
    return {
        "table": table,
        "algorithm": algo,
        "graph": graph,
        "speedup": row["speedup"],
        "inaccuracy_percent": row["inaccuracy_percent"],
        "paper_speedup": None if paper is None else paper[0],
        "paper_inaccuracy_percent": None if paper is None else paper[1],
        "degraded": bool(row.get("degraded", False)),
        "passed": not [r for r in reasons if not r.startswith("degraded")],
        "reasons": reasons,
    }


def check_table(
    table: str, rows: list[dict], band: ToleranceBand | None = None
) -> dict:
    """Score one table's measured rows; returns a machine-readable verdict."""
    band = band or ToleranceBand()
    cells = [_cell_verdict(table, row, band) for row in rows]
    agreement = score_table(table, rows)
    reasons: list[str] = []
    if agreement.direction_agreement < band.min_direction_agreement:
        reasons.append(
            f"direction agreement {agreement.direction_agreement:.2f} below"
            f" {band.min_direction_agreement}"
        )
    if agreement.spearman_speedup < band.min_spearman:
        reasons.append(
            f"speedup rank correlation {agreement.spearman_speedup:.2f} below"
            f" {band.min_spearman}"
        )
    if not (
        band.geomean_ratio_low
        <= agreement.geomean_ratio
        <= band.geomean_ratio_high
    ):
        reasons.append(
            f"geomean ratio {agreement.geomean_ratio:.2f} outside"
            f" [{band.geomean_ratio_low}, {band.geomean_ratio_high}]"
        )
    failed_cells = [c for c in cells if not c["passed"]]
    return {
        "table": table,
        "technique": TABLE_TECHNIQUE[table],
        "cells": cells,
        "agreement": agreement.as_row(),
        "reasons": reasons,
        "passed": not reasons and not failed_cells,
    }


def run_golden(
    *,
    scale: str = "tiny",
    tables: tuple[str, ...] = GOLDEN_TABLES,
    band: ToleranceBand | None = None,
    runner: TableRunner | None = None,
) -> dict:
    """Replay the technique tables and check every cell against the band."""
    runner = runner or TableRunner(scale=scale, seed=TABLE_SEED)
    verdicts = []
    for table in tables:
        technique = TABLE_TECHNIQUE[table]
        _cells, _gm, baseline, algos = TECHNIQUE_TABLES[table]
        rows = runner._technique_rows(technique, baseline, algos)
        verdicts.append(check_table(table, rows, band))
    return {"tables": verdicts, "passed": all(v["passed"] for v in verdicts)}


def golden_violations(report: dict) -> list[Violation]:
    """Flatten a :func:`run_golden` report into oracle violations."""
    v: list[Violation] = []
    for verdict in report["tables"]:
        for reason in verdict["reasons"]:
            v.append(Violation(f"golden.{verdict['table']}", reason))
        for cell in verdict["cells"]:
            if not cell["passed"]:
                v.append(
                    Violation(
                        f"golden.{verdict['table']}",
                        f"{cell['algorithm']}/{cell['graph']}:"
                        f" {'; '.join(cell['reasons'])}",
                    )
                )
    return v
