"""Composable structural oracles for every Graffix pipeline stage.

Each ``check_*`` function takes the stage's input and output and returns a
list of :class:`Violation` records — empty means the oracle is green.  The
checks encode the *contracts* the transforms document rather than their
implementations, so a future rewrite of a transform is still held to the
same paper-level guarantees:

* CSR well-formedness (:func:`check_csr`);
* renumbering is a permutation onto chunk-aligned level blocks with exact
  hole accounting (:func:`check_renumbering`);
* replication's replica map is consistent and confluence-mergeable, and
  the slot graph projects back onto the original edge multiset plus
  exactly ``edges_added`` extras (:func:`check_coalescing`);
* shared-memory planning respects the global added-edge budget and the
  sibling 2-hop rule (:func:`check_shmem`);
* divergence padding hits at most the 85 %-of-warp-max degree target and
  never drops pre-existing parallel edges (:func:`check_divergence`);
* ``out.num_edges == in.num_edges + edges_added`` everywhere
  (:func:`check_plan`).

:func:`verify_plan` is the raising wrapper the CLI and tests use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.coalesce import GraffixGraph
from ..core.divergence import DivergencePlan, bucket_order
from ..core.knobs import CoalescingKnobs, DivergenceKnobs, SharedMemoryKnobs
from ..core.pipeline import TECHNIQUES, ExecutionPlan
from ..core.renumber import RenumberResult
from ..core.shmem import SharedMemoryPlan
from ..errors import GraphFormatError, VerificationError
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C

__all__ = [
    "Violation",
    "check_csr",
    "check_renumbering",
    "check_coalescing",
    "check_shmem",
    "check_divergence",
    "check_plan",
    "verify_plan",
]


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which oracle, and what it saw."""

    oracle: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.oracle}: {self.message}"


def _edge_counts(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Sorted ``(src, dst)`` multiset as (unique keys, multiplicities)."""
    src = graph.edge_sources().astype(np.int64)
    dst = graph.indices.astype(np.int64)
    return np.unique(src * graph.num_nodes + dst, return_counts=True)


def _count_of(keys: np.ndarray, counts: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Multiplicity of each ``query`` key in a sorted unique-key table."""
    pos = np.searchsorted(keys, query)
    out = np.zeros(query.size, dtype=np.int64)
    ok = pos < keys.size
    hit = ok.copy()
    hit[ok] = keys[pos[ok]] == query[ok]
    out[hit] = counts[pos[hit]]
    return out


# ---------------------------------------------------------------------------
# stage 0: CSR well-formedness
# ---------------------------------------------------------------------------
def check_csr(graph: CSRGraph, *, context: str = "graph") -> list[Violation]:
    """The raw array invariants, plus finite weights."""
    v: list[Violation] = []
    try:
        graph.check()
    except GraphFormatError as exc:
        v.append(Violation("csr.structure", f"{context}: {exc}"))
        return v
    if graph.weights is not None and not np.all(np.isfinite(graph.weights)):
        bad = int(np.count_nonzero(~np.isfinite(graph.weights)))
        v.append(
            Violation("csr.weights", f"{context}: {bad} non-finite edge weights")
        )
    return v


# ---------------------------------------------------------------------------
# stage 1: renumbering (§2, Algorithm 2 step 1)
# ---------------------------------------------------------------------------
def check_renumbering(graph: CSRGraph, ren: RenumberResult) -> list[Violation]:
    """Permutation + chunk-aligned level blocks + exact hole accounting."""
    v: list[Violation] = []
    n = graph.num_nodes
    k = ren.chunk_size

    if ren.new_id.size != n:
        v.append(
            Violation(
                "renumber.permutation",
                f"new_id has {ren.new_id.size} entries for {n} nodes",
            )
        )
        return v
    if ren.num_slots < n or ren.num_slots % k != 0:
        v.append(
            Violation(
                "renumber.slots",
                f"num_slots={ren.num_slots} is not a multiple of k={k} >= n={n}",
            )
        )
    if np.unique(ren.new_id).size != n or ren.new_id.min() < 0 or int(
        ren.new_id.max()
    ) >= ren.num_slots:
        v.append(
            Violation(
                "renumber.permutation",
                "new_id is not an injection into the slot space",
            )
        )
        return v

    # rep_of is the exact inverse: occupied slots are precisely the image
    if ren.rep_of.size != ren.num_slots:
        v.append(
            Violation("renumber.inverse", "rep_of length does not match num_slots")
        )
        return v
    if not np.array_equal(ren.rep_of[ren.new_id], np.arange(n)):
        v.append(
            Violation("renumber.inverse", "rep_of[new_id] is not the identity")
        )
    occupied = int(np.count_nonzero(ren.rep_of >= 0))
    if occupied != n:
        v.append(
            Violation(
                "renumber.holes",
                f"{occupied} occupied slots for {n} nodes (holes double-booked?)",
            )
        )
    if ren.num_holes != ren.num_slots - n:
        v.append(
            Violation(
                "renumber.holes",
                f"num_holes={ren.num_holes} != num_slots-n={ren.num_slots - n}",
            )
        )

    # level blocks: monotone starts, interior starts k-aligned, and every
    # node's slot inside its level's block
    starts = ren.level_starts
    if starts[0] != 0 or starts[-1] != ren.num_slots or np.any(np.diff(starts) < 0):
        v.append(
            Violation(
                "renumber.levels",
                "level_starts is not a monotone partition of the slot space",
            )
        )
        return v
    if np.any(starts[1:-1] % k != 0):
        v.append(
            Violation(
                "renumber.alignment",
                f"interior level starts are not multiples of k={k}",
            )
        )
    lev = ren.levels
    if lev.size != n or lev.min() < 0 or int(lev.max()) + 2 != starts.size:
        v.append(
            Violation("renumber.levels", "levels array inconsistent with starts")
        )
        return v
    in_block = (ren.new_id >= starts[lev]) & (ren.new_id < starts[lev + 1])
    if not in_block.all():
        bad = int(np.count_nonzero(~in_block))
        v.append(
            Violation(
                "renumber.levels",
                f"{bad} nodes numbered outside their BFS level block",
            )
        )
    if np.any(np.bincount(lev, minlength=starts.size - 1) == 0):
        v.append(Violation("renumber.levels", "empty BFS level in the forest"))
    return v


# ---------------------------------------------------------------------------
# stage 2: replication / coalescing (§2, Algorithm 2 step 2)
# ---------------------------------------------------------------------------
def check_coalescing(
    original: CSRGraph, gg: GraffixGraph, knobs: CoalescingKnobs | None = None
) -> list[Violation]:
    """Replica-map consistency, confluence-mergeability, edge projection."""
    v: list[Violation] = []
    n = original.num_nodes
    out = gg.graph

    if gg.num_original != n:
        v.append(
            Violation(
                "coalesce.slots",
                f"num_original={gg.num_original} but input has {n} nodes",
            )
        )
        return v
    # slot accounting: every slot is a primary, a replica, or a hole
    if n + gg.num_replicas + gg.num_holes != gg.num_slots:
        v.append(
            Violation(
                "coalesce.slots",
                f"n={n} + replicas={gg.num_replicas} + holes={gg.num_holes}"
                f" != num_slots={gg.num_slots}",
            )
        )
    if gg.rep_of.size != gg.num_slots or (
        gg.rep_of.size and int(gg.rep_of.max()) >= n
    ):
        v.append(Violation("coalesce.rep_of", "rep_of out of range"))
        return v
    if gg.primary_slot.size != n or not np.array_equal(
        gg.rep_of[gg.primary_slot], np.arange(n)
    ):
        v.append(
            Violation(
                "coalesce.primary",
                "primary_slot is not a section of rep_of (some node lost its"
                " principal copy)",
            )
        )

    # replica table consistency + per-node cap
    reps = gg.replication.replicas
    if reps.size:
        slot, orig = reps[:, 0], reps[:, 1]
        if not np.array_equal(gg.rep_of[slot], orig):
            v.append(
                Violation("coalesce.replicas", "replica rows disagree with rep_of")
            )
        if np.any(gg.primary_slot[orig] == slot):
            v.append(
                Violation(
                    "coalesce.replicas", "a replica occupies its primary slot"
                )
            )
        per_node = np.bincount(orig, minlength=n)
        if knobs is not None and int(per_node.max()) > knobs.max_replicas_per_node:
            v.append(
                Violation(
                    "coalesce.replicas",
                    f"a node has {int(per_node.max())} replicas"
                    f" (cap {knobs.max_replicas_per_node})",
                )
            )

    # holes must stay inert: degree 0 both ways (they only waste lanes)
    holes = gg.rep_of < 0
    if np.any(out.out_degrees()[holes] > 0) or np.any(
        np.bincount(out.indices, minlength=gg.num_slots)[holes] > 0
    ):
        v.append(Violation("coalesce.holes", "a hole slot has incident edges"))

    # confluence-mergeable: groups cover exactly the multi-copy originals
    slots, gids, sizes = gg.replica_groups()
    copies = np.bincount(gg.rep_of[gg.rep_of >= 0], minlength=n)
    multi = np.nonzero(copies >= 2)[0]
    if sizes.size != multi.size or int(sizes.sum()) != slots.size:
        v.append(
            Violation(
                "coalesce.confluence",
                f"{sizes.size} groups for {multi.size} multi-copy originals",
            )
        )
    elif slots.size:
        owners = gg.rep_of[slots]
        if np.any(owners < 0) or np.unique(owners).size != sizes.size:
            v.append(
                Violation(
                    "coalesce.confluence",
                    "a confluence group mixes copies of different originals",
                )
            )
        group_sizes = np.bincount(gids, minlength=sizes.size)
        if not np.array_equal(group_sizes, sizes) or not np.array_equal(
            np.sort(np.unique(owners)), multi
        ):
            v.append(
                Violation(
                    "coalesce.confluence",
                    "group sizes or membership disagree with the replica map",
                )
            )

    # edge accounting + projection back to original node space
    if out.num_edges != original.num_edges + gg.edges_added:
        v.append(
            Violation(
                "coalesce.edge_accounting",
                f"out.num_edges={out.num_edges} != in={original.num_edges}"
                f" + edges_added={gg.edges_added}",
            )
        )
    e_src = gg.rep_of[out.edge_sources()]
    e_dst = gg.rep_of[out.indices]
    if np.any(e_src < 0) or np.any(e_dst < 0):
        v.append(
            Violation("coalesce.projection", "an edge is incident to a hole")
        )
    else:
        proj_keys, proj_counts = np.unique(
            e_src.astype(np.int64) * n + e_dst.astype(np.int64),
            return_counts=True,
        )
        in_keys, in_counts = _edge_counts(original)
        have = _count_of(proj_keys, proj_counts, in_keys)
        if np.any(have < in_counts):
            missing = int(np.sum(np.maximum(in_counts - have, 0)))
            v.append(
                Violation(
                    "coalesce.projection",
                    f"{missing} original edges missing from the slot graph's"
                    " projection",
                )
            )
        excess = int(proj_counts.sum()) - int(in_counts.sum())
        if excess != gg.edges_added:
            v.append(
                Violation(
                    "coalesce.projection",
                    f"projection has {excess} extra edges but edges_added"
                    f"={gg.edges_added}",
                )
            )
    return v


# ---------------------------------------------------------------------------
# stage 3: shared-memory planning (§3)
# ---------------------------------------------------------------------------
def check_shmem(
    original: CSRGraph,
    plan: SharedMemoryPlan,
    knobs: SharedMemoryKnobs | None = None,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Global edge budget, sibling 2-hop rule, cluster/residency consistency."""
    knobs = knobs or SharedMemoryKnobs()
    v: list[Violation] = []
    n = original.num_nodes
    out = plan.graph

    if out.num_nodes != n:
        v.append(Violation("shmem.nodes", "node count changed"))
        return v
    if out.num_edges != original.num_edges + plan.edges_added:
        v.append(
            Violation(
                "shmem.edge_accounting",
                f"out.num_edges={out.num_edges} != in={original.num_edges}"
                f" + edges_added={plan.edges_added}",
            )
        )
    # the global budget; the emit loop checks before adding an arc *pair*,
    # so it may overshoot by at most one arc
    budget = int(knobs.edge_budget_fraction * original.num_edges)
    if plan.edges_added > budget + 1:
        v.append(
            Violation(
                "shmem.budget",
                f"edges_added={plan.edges_added} exceeds the global budget"
                f" {budget} (+1 pair slack)",
            )
        )

    # dedup may merge parallel edges but must never lose a distinct pair
    in_keys, _ = _edge_counts(original)
    out_keys, _ = _edge_counts(out)
    pos = np.searchsorted(out_keys, in_keys)
    ok = pos < out_keys.size
    present = ok.copy()
    present[ok] = out_keys[pos[ok]] == in_keys[ok]
    if not present.all():
        v.append(
            Violation(
                "shmem.no_drop",
                f"{int(np.count_nonzero(~present))} original (src, dst) pairs"
                " vanished",
            )
        )

    # sibling 2-hop rule: every new arc pairs with its reverse, and the two
    # endpoints share a common neighbour in the thickened graph
    new_keys = np.setdiff1d(out_keys, in_keys, assume_unique=True)
    if new_keys.size:
        a = new_keys // n
        b = new_keys % n
        rev = b * n + a
        rev_present = np.isin(rev, out_keys, assume_unique=False)
        if not rev_present.all():
            v.append(
                Violation(
                    "shmem.symmetry",
                    "an added arc has no reverse arc in the output",
                )
            )
        und = out.to_undirected()
        seen: set[tuple[int, int]] = set()
        for ai, bi in zip(a.tolist(), b.tolist()):
            pair = (min(ai, bi), max(ai, bi))
            if pair in seen or ai == bi:
                continue
            seen.add(pair)
            common = np.intersect1d(und.neighbors(ai), und.neighbors(bi))
            common = common[(common != ai) & (common != bi)]
            if common.size == 0:
                v.append(
                    Violation(
                        "shmem.two_hop",
                        f"added edge ({ai}, {bi}) joins nodes with no common"
                        " neighbour",
                    )
                )

    # residency: clusters tile exactly the resident set, within capacity
    if plan.resident_mask.size != n:
        v.append(Violation("shmem.residency", "resident_mask length mismatch"))
        return v
    covered = np.zeros(n, dtype=bool)
    for members in plan.clusters:
        if members.size > device.shared_mem_words:
            v.append(
                Violation(
                    "shmem.capacity",
                    f"a cluster of {members.size} nodes exceeds shared memory"
                    f" capacity {device.shared_mem_words}",
                )
            )
        covered[members] = True
    if not np.array_equal(covered, plan.resident_mask):
        v.append(
            Violation(
                "shmem.residency",
                "cluster membership does not tile the resident mask",
            )
        )

    # cluster graph == intra-resident edge subset of the output graph
    mask = out.subgraph_edge_mask(plan.resident_mask)
    want_src = out.edge_sources()[mask].astype(np.int64)
    want_dst = out.indices[mask].astype(np.int64)
    want = np.sort(want_src * n + want_dst)
    got_src = plan.cluster_graph.edge_sources().astype(np.int64)
    got = np.sort(got_src * n + plan.cluster_graph.indices.astype(np.int64))
    if plan.cluster_graph.num_nodes != n or not np.array_equal(want, got):
        v.append(
            Violation(
                "shmem.cluster_graph",
                "cluster graph is not the intra-resident edge subset",
            )
        )
    if plan.local_iterations < 1:
        v.append(
            Violation("shmem.iterations", "local_iterations must be >= 1")
        )
    return v


# ---------------------------------------------------------------------------
# stage 4: divergence normalization (§4)
# ---------------------------------------------------------------------------
def check_divergence(
    original: CSRGraph,
    plan: DivergencePlan,
    knobs: DivergenceKnobs | None = None,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Degree-target bound, strict multiset preservation, padding accounting."""
    knobs = knobs or DivergenceKnobs()
    v: list[Violation] = []
    n = original.num_nodes
    out = plan.graph

    if out.num_nodes != n:
        v.append(Violation("divergence.nodes", "node count changed"))
        return v
    if plan.order.size != n or not np.array_equal(
        np.sort(plan.order), np.arange(n)
    ):
        v.append(
            Violation("divergence.order", "order is not a permutation of nodes")
        )
        return v
    if out.num_edges != original.num_edges + plan.edges_added:
        v.append(
            Violation(
                "divergence.edge_accounting",
                f"out.num_edges={out.num_edges} != in={original.num_edges}"
                f" + edges_added={plan.edges_added}",
            )
        )

    # strict multiset preservation: padding only ever *adds*, and every
    # added (src, dst) is new, unique, non-self, and sourced at a padded node
    in_keys, in_counts = _edge_counts(original)
    out_keys, out_counts = _edge_counts(out)
    have = _count_of(out_keys, out_counts, in_keys)
    if np.any(have < in_counts):
        dropped = int(np.sum(np.maximum(in_counts - have, 0)))
        v.append(
            Violation(
                "divergence.no_drop",
                f"{dropped} pre-existing (parallel) edges were dropped",
            )
        )
    prior = _count_of(in_keys, in_counts, out_keys)
    delta = out_counts - prior
    extra = np.nonzero(delta > 0)[0]
    padded = set(plan.padded_nodes.tolist())
    for i in extra.tolist():
        key = int(out_keys[i])
        src, dst = key // n, key % n
        if prior[i] != 0:
            v.append(
                Violation(
                    "divergence.duplicates",
                    f"padding duplicated the existing edge ({src}, {dst})",
                )
            )
        elif delta[i] != 1:
            v.append(
                Violation(
                    "divergence.duplicates",
                    f"padding added edge ({src}, {dst}) {int(delta[i])} times",
                )
            )
        if src == dst:
            v.append(
                Violation(
                    "divergence.self_loop", f"padding added self loop at {src}"
                )
            )
        if src not in padded:
            v.append(
                Violation(
                    "divergence.padded_nodes",
                    f"edge added at node {src}, which is not in padded_nodes",
                )
            )

    # degree target: padded nodes end at most at ceil(f * warpMaxDeg) and
    # strictly above their old degree; everyone else keeps their degree
    degs_in = original.out_degrees().astype(np.int64)
    degs_out = out.out_degrees().astype(np.int64)
    order = plan.order
    starts = np.arange(0, n, device.warp_size)
    warp_max = np.maximum.reduceat(degs_in[order].astype(np.float64), starts)
    per_pos_max = np.repeat(warp_max, np.diff(np.append(starts, n)))
    pos_of = np.empty(n, dtype=np.int64)
    pos_of[order] = np.arange(n)
    for node in plan.padded_nodes.tolist():
        target = int(np.ceil(knobs.target_fraction * per_pos_max[pos_of[node]]))
        if degs_out[node] > target:
            v.append(
                Violation(
                    "divergence.degree_target",
                    f"node {node} padded to degree {int(degs_out[node])} above"
                    f" the target {target}",
                )
            )
        if degs_out[node] <= degs_in[node]:
            v.append(
                Violation(
                    "divergence.degree_target",
                    f"node {node} listed as padded but gained no edges",
                )
            )
    untouched = np.ones(n, dtype=bool)
    if plan.padded_nodes.size:
        untouched[plan.padded_nodes] = False
    if not np.array_equal(degs_in[untouched], degs_out[untouched]):
        v.append(
            Violation(
                "divergence.padded_nodes",
                "an unpadded node's out-degree changed",
            )
        )
    if original.is_weighted != out.is_weighted:
        v.append(
            Violation("divergence.weights", "weightedness changed under padding")
        )
    return v


# ---------------------------------------------------------------------------
# plan-level dispatcher
# ---------------------------------------------------------------------------
def _genuine_renumbering(base: CSRGraph, gg: GraffixGraph) -> bool:
    """Plans reloaded from the disk cache carry degenerate renumbering
    placeholders (see :mod:`repro.core.serialize`); a genuine pre-replication
    ``rep_of`` has exactly one occupied slot per original node."""
    return (
        int(np.count_nonzero(gg.renumbering.rep_of >= 0)) == base.num_nodes
        and gg.renumbering.num_slots == gg.num_slots
    )


def check_plan(
    original: CSRGraph,
    plan: ExecutionPlan,
    *,
    coalescing: CoalescingKnobs | None = None,
    shmem: SharedMemoryKnobs | None = None,
    divergence: DivergenceKnobs | None = None,
    device: DeviceConfig = K40C,
) -> list[Violation]:
    """Run every applicable stage oracle against a built execution plan.

    Stage-level checks need the transform intermediates the pipeline
    stashes on the plan (``graffix``, ``_shmem``, ``_divergence``); plans
    reloaded from the artifact cache carry only execution state, so those
    checks degrade gracefully to the universal plan-level invariants.
    """
    v: list[Violation] = []
    if plan.technique not in TECHNIQUES:
        return [Violation("plan.technique", f"unknown technique {plan.technique!r}")]
    v += check_csr(plan.graph, context=f"{plan.technique} plan graph")
    if plan.num_original != original.num_nodes:
        v.append(
            Violation(
                "plan.num_original",
                f"plan says {plan.num_original} original nodes, graph has"
                f" {original.num_nodes}",
            )
        )
    if plan.graph.num_edges != original.num_edges + plan.edges_added:
        v.append(
            Violation(
                "plan.edge_accounting",
                f"plan.graph.num_edges={plan.graph.num_edges} !="
                f" in={original.num_edges} + edges_added={plan.edges_added}",
            )
        )

    if plan.technique == "exact":
        if plan.edges_added != 0 or plan.graffix is not None:
            v.append(
                Violation("plan.exact", "exact plan carries transform state")
            )
        if plan.graph != original:
            v.append(
                Violation("plan.exact", "exact plan's graph differs from input")
            )
        return v

    if plan.technique == "divergence" and plan._divergence is not None:
        v += check_divergence(original, plan._divergence, divergence, device)
    if plan.technique == "shmem" and plan._shmem is not None:
        v += check_shmem(original, plan._shmem, shmem, device)
    if plan.technique == "coalescing" and plan.graffix is not None:
        v += check_coalescing(original, plan.graffix, coalescing)
        if _genuine_renumbering(original, plan.graffix):
            v += check_renumbering(original, plan.graffix.renumbering)
    if plan.technique == "combined":
        div, shm, gg = plan._divergence, plan._shmem, plan.graffix
        if div is not None:
            v += check_divergence(original, div, divergence, device)
            if shm is not None:
                v += check_shmem(div.graph, shm, shmem, device)
                if gg is not None:
                    v += check_coalescing(shm.graph, gg, coalescing)
                    if _genuine_renumbering(shm.graph, gg):
                        v += check_renumbering(shm.graph, gg.renumbering)
    return v


def verify_plan(
    original: CSRGraph,
    plan: ExecutionPlan,
    **kwargs,
) -> None:
    """Raise :class:`~repro.errors.VerificationError` on any violation."""
    violations = check_plan(original, plan, **kwargs)
    if violations:
        lines = "\n".join(f"  - {x}" for x in violations)
        raise VerificationError(
            f"{len(violations)} invariant violation(s) on"
            f" technique={plan.technique!r}:\n{lines}",
            violations,
        )
