"""Metamorphic relations run through the full simulation harness.

A metamorphic relation links the outputs of *two* runs whose inputs are
related by a known transformation, so correctness can be checked without
an external ground truth:

* **Node-relabel invariance** — permuting node ids of an *exact* plan
  permutes SSSP distances exactly and PageRank/BC values up to
  accumulation-order noise.  (Transform plans are intentionally
  id-ordering-sensitive — chunking and bucketing read the labels — so
  this relation only holds for ``technique="exact"``.)
* **Weight-scaling equivariance** — scaling all weights by a power of
  two scales SSSP distances and the MST forest weight *exactly* (binary
  floating point is exact under power-of-two scaling).
* **Monotone knob → monotone edit distance** — a looser divergence
  similarity threshold or a larger shmem edge budget can only grow
  ``edges_added``.
* **Exact plan ≡ identity transform** — building an exact plan changes
  neither the graph nor any simulated charge.

Each check returns a list of :class:`~repro.verify.invariants.Violation`.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.bc import betweenness_centrality, pick_sources
from ..algorithms.mst import mst
from ..algorithms.pagerank import pagerank
from ..algorithms.sssp import sssp
from ..core.divergence import normalize_degrees
from ..core.knobs import DivergenceKnobs, SharedMemoryKnobs
from ..core.pipeline import build_plan
from ..core.shmem import plan_shared_memory
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig, K40C
from .invariants import Violation

__all__ = [
    "relabel_graph",
    "check_relabel_invariance",
    "check_weight_scaling",
    "check_knob_monotonicity",
    "check_exact_identity",
]


def relabel_graph(graph: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Return the same graph with node ``v`` renamed to ``perm[v]``."""
    src = perm[graph.edge_sources()]
    dst = perm[graph.indices]
    w = None if graph.weights is None else graph.weights.copy()
    return CSRGraph.from_edges(graph.num_nodes, src, dst, w, dedup=False)


def _pick_source(graph: CSRGraph) -> int:
    return int(np.argmax(graph.out_degrees()))


def check_relabel_invariance(
    graph: CSRGraph, *, seed: int = 0, device: DeviceConfig = K40C
) -> list[Violation]:
    """Exact plans must not care what the nodes are called."""
    v: list[Violation] = []
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    relabelled = relabel_graph(graph, perm)
    source = _pick_source(graph)

    # SSSP: min over per-path left-to-right sums — bit-identical
    d1 = sssp(graph, source, device=device).values
    d2 = sssp(relabelled, int(perm[source]), device=device).values
    if not np.array_equal(d1, d2[perm]):
        v.append(
            Violation(
                "metamorphic.relabel.sssp",
                "SSSP distances changed under node relabelling",
            )
        )

    # PageRank: accumulation order follows labels, so tolerate eps noise
    p1 = pagerank(graph, device=device).values
    p2 = pagerank(relabelled, device=device).values
    if not np.allclose(p1, p2[perm], rtol=1e-6, atol=1e-9):
        v.append(
            Violation(
                "metamorphic.relabel.pagerank",
                f"PageRank diverged beyond tolerance"
                f" (max abs diff {np.abs(p1 - p2[perm]).max():.3e})",
            )
        )

    # BC: same sampled sources, mapped through the permutation
    sources = pick_sources(n, min(3, n), seed)
    b1 = betweenness_centrality(graph, sources=sources, device=device).values
    b2 = betweenness_centrality(
        relabelled, sources=perm[sources], device=device
    ).values
    if not np.allclose(b1, b2[perm], rtol=1e-6, atol=1e-9):
        v.append(
            Violation(
                "metamorphic.relabel.bc",
                "betweenness centrality changed under node relabelling",
            )
        )
    return v


def check_weight_scaling(
    graph: CSRGraph, *, factor: float = 2.0, device: DeviceConfig = K40C
) -> list[Violation]:
    """Power-of-two weight scaling must scale SSSP/MST outputs exactly."""
    if factor <= 0 or (factor != 2.0 ** round(np.log2(factor))):
        raise ValueError("factor must be a positive power of two for exactness")
    v: list[Violation] = []
    base = graph.with_weights(graph.effective_weights())
    scaled = base.with_weights(base.weights * factor)
    source = _pick_source(base)

    d1 = sssp(base, source, device=device).values
    d2 = sssp(scaled, source, device=device).values
    if not np.array_equal(d1 * factor, d2):
        v.append(
            Violation(
                "metamorphic.scaling.sssp",
                f"SSSP distances are not equivariant under x{factor} weights",
            )
        )

    m1 = mst(base, device=device)
    m2 = mst(scaled, device=device)
    w1 = float(m1.aux["weight"])
    w2 = float(m2.aux["weight"])
    if w1 * factor != w2:
        v.append(
            Violation(
                "metamorphic.scaling.mst",
                f"forest weight {w1} x{factor} != {w2}",
            )
        )
    if not np.array_equal(m1.values, m2.values):
        v.append(
            Violation(
                "metamorphic.scaling.mst",
                "forest component labels changed under weight scaling",
            )
        )
    return v


def check_knob_monotonicity(
    graph: CSRGraph,
    *,
    device: DeviceConfig = K40C,
    divergence_thresholds: tuple[float, ...] = (0.05, 0.3, 0.9),
    shmem_budgets: tuple[float, ...] = (0.0, 0.02, 0.2),
) -> list[Violation]:
    """Looser knobs can only *add* edit distance, never remove it."""
    v: list[Violation] = []

    added = [
        normalize_degrees(
            graph, DivergenceKnobs(degree_sim_threshold=t), device
        ).edges_added
        for t in divergence_thresholds
    ]
    if any(a > b for a, b in zip(added, added[1:])):
        v.append(
            Violation(
                "metamorphic.monotone.divergence",
                f"edges_added {added} not monotone in degree_sim_threshold"
                f" {list(divergence_thresholds)}",
            )
        )

    # shmem's raw edges_added can go *negative* on multigraphs (its output
    # is deduplicated), so the monotone edit distance is the number of new
    # distinct (src, dst) pairs, not the edge-count delta
    def _new_pairs(budget: float) -> int:
        out = plan_shared_memory(
            graph, SharedMemoryKnobs(edge_budget_fraction=budget), device
        ).graph
        key_in = graph.edge_sources().astype(np.int64) * graph.num_nodes
        key_in = np.unique(key_in + graph.indices)
        key_out = out.edge_sources().astype(np.int64) * graph.num_nodes
        key_out = np.unique(key_out + out.indices)
        return int(np.setdiff1d(key_out, key_in, assume_unique=True).size)

    added = [_new_pairs(b) for b in shmem_budgets]
    if any(a > b for a, b in zip(added, added[1:])):
        v.append(
            Violation(
                "metamorphic.monotone.shmem",
                f"new distinct pairs {added} not monotone in edge_budget_fraction"
                f" {list(shmem_budgets)}",
            )
        )
    return v


def check_exact_identity(
    graph: CSRGraph, *, device: DeviceConfig = K40C
) -> list[Violation]:
    """``build_plan(g, "exact")`` must be a no-op in values *and* charges."""
    v: list[Violation] = []
    plan = build_plan(graph, "exact", device=device)
    if plan.edges_added != 0 or plan.graffix is not None or plan.order is not None:
        v.append(
            Violation("metamorphic.identity", "exact plan carries transform state")
        )
    if plan.graph != graph:
        v.append(
            Violation("metamorphic.identity", "exact plan altered the graph")
        )
        return v

    source = _pick_source(graph)
    direct = sssp(graph, source, device=device)
    planned = sssp(plan, source, device=device)
    if not np.array_equal(direct.values, planned.values):
        v.append(
            Violation(
                "metamorphic.identity",
                "SSSP through the exact plan differs from the raw graph",
            )
        )
    if direct.iterations != planned.iterations or (
        direct.metrics.summary() != planned.metrics.summary()
    ):
        v.append(
            Violation(
                "metamorphic.identity",
                "simulated charges differ between raw graph and exact plan",
            )
        )
    return v
