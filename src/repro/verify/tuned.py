"""Oracles for the adaptive controller (:mod:`repro.tune`).

Three families of checks:

* **identity** — an :class:`~repro.tune.controller.AdaptiveController`
  with the default *infinite* budget must be byte-identical to the
  static runner: same values, same iteration count, same charged
  cycles.  This is the controller's safety anchor: disabled means
  *gone*, not "mostly the same".
* **budget monotonicity** — on plans without replica renumbering
  (divergence / exact), SSSP values start at ``inf`` and only descend
  through real-path relaxations, so error is monotone in work;
  tightening the budget (more work before stopping) must never
  increase the golden-band inaccuracy.  The hypothesis fuzz in
  ``tests/test_tune_controller.py`` explores the same property over
  generated graphs; this check pins it on the corpus.
* **adaptive golden** — every adaptive run on the seed corpus must
  stay inside the PR-5 paper bands for *accuracy*
  (:class:`~repro.verify.golden.ToleranceBand` inaccuracy ceiling);
  the speedup ceiling is raised because budget-certified early
  termination is a legitimate speedup source beyond the plan
  transforms the static band was calibrated on.  Verdicts are
  machine-readable per cell (``report["tuned_golden"]`` under
  ``verify --report``).
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import ExecutionPlan, build_plan
from ..eval.accuracy import attribute_inaccuracy
from ..graphs.csr import CSRGraph
from ..gpusim.device import DeviceConfig
from ..tune import ErrorBudget, adaptive_runner_factory
from .differential import _results_identical
from .golden import ToleranceBand
from .invariants import Violation

__all__ = [
    "TUNED_BAND",
    "check_tuned_identity",
    "check_budget_monotonicity",
    "run_adaptive_golden",
    "adaptive_violations",
]

#: default budget the adaptive golden pass runs at (the tuner's default)
TUNED_BUDGET_PERCENT = 20.0

#: accuracy bands identical to the static golden pass; the speedup
#: ceiling is raised because early termination legitimately exceeds the
#: plan-transform-only envelope (PageRank under a loosened tolerance)
TUNED_BAND = ToleranceBand(max_speedup=64.0)

#: techniques the adaptive golden pass sweeps per corpus graph
TUNED_TECHNIQUES = ("coalescing", "shmem", "divergence")


def _plan(
    graph: CSRGraph, technique: str, knobs: dict, device: DeviceConfig
) -> ExecutionPlan:
    return build_plan(
        graph,
        technique,
        device=device,
        coalescing=knobs["coalescing"],
        shmem=knobs["shmem"],
        divergence=knobs["divergence"],
    )


def _hub(graph: CSRGraph) -> int:
    return int(np.argmax(graph.out_degrees()))


def check_tuned_identity(
    graph: CSRGraph,
    technique: str,
    *,
    knobs: dict,
    device: DeviceConfig,
) -> list[Violation]:
    """Infinite-budget adaptive runs must be bit-identical to static."""
    from ..algorithms.pagerank import pagerank
    from ..algorithms.sssp import sssp

    plan = _plan(graph, technique, knobs, device)
    src = _hub(graph)
    factory = adaptive_runner_factory()  # default budget: infinite
    v: list[Violation] = []
    static = sssp(plan, src, device=device)
    adaptive = sssp(plan, src, device=device, runner_factory=factory)
    v += _results_identical(
        adaptive, static, f"tuned.identity.sssp.{technique}"
    )
    static = pagerank(plan, device=device)
    adaptive = pagerank(plan, device=device, runner_factory=factory)
    v += _results_identical(
        adaptive, static, f"tuned.identity.pagerank.{technique}"
    )
    return v


def check_budget_monotonicity(
    graph: CSRGraph,
    *,
    knobs: dict,
    device: DeviceConfig,
    tight_percent: float = 5.0,
    loose_percent: float = 40.0,
) -> list[Violation]:
    """Tightening the budget must not increase SSSP inaccuracy.

    Restricted to the divergence plan: without replica groups the solve
    is monotone (values only descend toward the exact distances), so
    more work — which is all a tighter budget can demand — can only
    keep or reduce error.  Mean-confluence plans trade error
    non-monotonically and are exercised by the golden bands instead.
    """
    from ..algorithms.sssp import sssp

    plan = _plan(graph, "divergence", knobs, device)
    src = _hub(graph)
    exact = sssp(graph, src, device=device)

    def inaccuracy(percent: float) -> float:
        factory = adaptive_runner_factory(
            ErrorBudget(target_percent=percent), exact_graph=graph
        )
        res = sssp(plan, src, device=device, runner_factory=factory)
        return attribute_inaccuracy(exact.values, res.values)

    tight = inaccuracy(tight_percent)
    loose = inaccuracy(loose_percent)
    if tight > loose + 1e-9:
        return [
            Violation(
                "tuned.monotone",
                f"tighter budget increased inaccuracy: "
                f"{tight:.4f}% @ {tight_percent}% budget vs "
                f"{loose:.4f}% @ {loose_percent}% budget",
            )
        ]
    return []


def run_adaptive_golden(
    corpus: dict[str, CSRGraph],
    *,
    knobs: dict,
    device: DeviceConfig,
    budget_percent: float = TUNED_BUDGET_PERCENT,
    band: ToleranceBand | None = None,
) -> dict:
    """Adaptive SSSP + PageRank on every corpus graph × technique.

    Returns machine-readable per-cell verdicts in the golden style:
    each cell's speedup is charged-cycles of the exact run over the
    adaptive run, its inaccuracy the paper metric against the exact
    answer.
    """
    from ..algorithms.pagerank import pagerank
    from ..algorithms.sssp import sssp

    band = band or TUNED_BAND
    cells: list[dict] = []
    for gname, graph in corpus.items():
        src = _hub(graph)
        exact = {
            "sssp": sssp(graph, src, device=device),
            "pagerank": pagerank(graph, device=device),
        }
        for technique in TUNED_TECHNIQUES:
            plan = _plan(graph, technique, knobs, device)
            factory = adaptive_runner_factory(
                ErrorBudget(target_percent=budget_percent), exact_graph=graph
            )
            runs = {
                "sssp": sssp(plan, src, device=device, runner_factory=factory),
                "pagerank": pagerank(
                    plan, device=device, runner_factory=factory
                ),
            }
            for algo, res in runs.items():
                ref = exact[algo]
                speedup = ref.metrics.cycles / max(res.metrics.cycles, 1)
                inacc = attribute_inaccuracy(ref.values, res.values)
                reasons: list[str] = []
                if not band.min_speedup <= speedup <= band.max_speedup:
                    reasons.append(
                        f"speedup {speedup:.3f} outside"
                        f" [{band.min_speedup}, {band.max_speedup}]"
                    )
                if inacc > band.max_inaccuracy_percent:
                    reasons.append(
                        f"inaccuracy {inacc:.2f}% above"
                        f" {band.max_inaccuracy_percent}%"
                    )
                cells.append(
                    {
                        "graph": gname,
                        "technique": technique,
                        "algorithm": algo,
                        "speedup": speedup,
                        "inaccuracy_percent": inacc,
                        "iterations": res.iterations,
                        "passed": not reasons,
                        "reasons": reasons,
                    }
                )
    return {
        "budget_percent": budget_percent,
        "cells": cells,
        "passed": all(c["passed"] for c in cells),
    }


def adaptive_violations(report: dict) -> list[Violation]:
    """Flatten a :func:`run_adaptive_golden` report into violations."""
    v: list[Violation] = []
    for cell in report["cells"]:
        for reason in cell["reasons"]:
            v.append(
                Violation(
                    "tuned.golden",
                    f"{cell['algorithm']}/{cell['graph']}"
                    f"/{cell['technique']}: {reason}",
                )
            )
    return v
